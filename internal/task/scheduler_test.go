package task

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hawq/internal/catalog"
	"hawq/internal/clock"
	"hawq/internal/retry"
	"hawq/internal/tx"
	"hawq/internal/types"
)

// recordingExec records every execution and fails a task the first
// failN times it runs.
type recordingExec struct {
	mu    sync.Mutex
	runs  []string
	seen  map[string]int
	failN map[string]int
}

func newRecordingExec() *recordingExec {
	return &recordingExec{seen: map[string]int{}, failN: map[string]int{}}
}

func (r *recordingExec) ExecuteTask(_ context.Context, d *catalog.TaskDesc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen[d.Name]++
	r.runs = append(r.runs, fmt.Sprintf("%s:%s:%s", d.Kind, d.Name, d.Target))
	if r.seen[d.Name] <= r.failN[d.Name] {
		return errors.New("injected task failure")
	}
	return nil
}

func (r *recordingExec) count(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[name]
}

type env struct {
	cat   *catalog.Catalog
	mgr   *tx.Manager
	sim   *clock.Sim
	exec  *recordingExec
	sched *Scheduler
}

func newEnv(t *testing.T, mut func(*Config)) *env {
	t.Helper()
	e := &env{
		cat:  catalog.New(tx.NewWAL()),
		mgr:  tx.NewManager(),
		sim:  clock.NewSim(time.Unix(0, 0)),
		exec: newRecordingExec(),
	}
	cfg := Config{
		Clock: e.sim,
		Cat:   func() *catalog.Catalog { return e.cat },
		TxMgr: func() *tx.Manager { return e.mgr },
		Exec:  e.exec,
		Owner: "qd-test",
		Lease: 10 * time.Second,
		Retry: retry.Policy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: time.Second, Clock: e.sim},
	}
	if mut != nil {
		mut(&cfg)
	}
	e.sched = New(cfg)
	return e
}

func (e *env) inTx(t *testing.T, f func(tr *tx.Tx) error) {
	t.Helper()
	tr := e.mgr.Begin(tx.ReadCommitted)
	if err := f(tr); err != nil {
		tr.Abort()
		t.Fatal(err)
	}
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
}

func (e *env) task(t *testing.T, name string) *catalog.TaskDesc {
	t.Helper()
	tr := e.mgr.Begin(tx.ReadCommitted)
	defer tr.Abort()
	d, err := e.cat.LookupTask(tr.Snapshot(), name)
	if err != nil {
		t.Fatalf("task %s: %v", name, err)
	}
	return d
}

func TestPeriodicTaskRunsAndReschedules(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	e.inTx(t, func(tr *tx.Tx) error {
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "rollup", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			Interval: 10 * time.Second, NextRun: e.sim.Now().Add(5 * time.Second).UnixNano(),
		})
	})

	// Not due yet.
	e.sched.TickOnce(ctx)
	if got := e.exec.count("rollup"); got != 0 {
		t.Fatalf("ran %d times before due", got)
	}

	// Due: runs once, then requeues one interval out.
	e.sim.Advance(5 * time.Second)
	e.sched.TickOnce(ctx)
	if got := e.exec.count("rollup"); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	d := e.task(t, "rollup")
	if d.State != catalog.TaskQueued || d.Owner != "" || d.LastRun != e.sim.Now().UnixNano() {
		t.Errorf("after run: %+v", d)
	}
	if want := e.sim.Now().Add(10 * time.Second).UnixNano(); d.NextRun != want {
		t.Errorf("NextRun = %d, want %d", d.NextRun, want)
	}

	// Same instant: nothing new due.
	e.sched.TickOnce(ctx)
	if got := e.exec.count("rollup"); got != 1 {
		t.Fatalf("reran before interval: %d", got)
	}

	// One interval later it fires again.
	e.sim.Advance(10 * time.Second)
	e.sched.TickOnce(ctx)
	if got := e.exec.count("rollup"); got != 2 {
		t.Fatalf("runs after interval = %d, want 2", got)
	}
}

func TestFailedTaskRetriesWithPersistedBackoff(t *testing.T) {
	e := newEnv(t, nil)
	e.exec.failN["flaky"] = 2
	ctx := context.Background()
	e.inTx(t, func(tr *tx.Tx) error {
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "flaky", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			Interval: time.Minute, NextRun: e.sim.Now().UnixNano(),
		})
	})

	e.sched.TickOnce(ctx)
	d := e.task(t, "flaky")
	if d.Retries != 1 || d.State != catalog.TaskQueued || d.LastError == "" {
		t.Fatalf("after first failure: %+v", d)
	}
	if d.NextRun <= e.sim.Now().UnixNano() {
		t.Fatalf("no backoff: NextRun %d, now %d", d.NextRun, e.sim.Now().UnixNano())
	}

	// The retry is spaced by the persisted NextRun, not an in-process
	// timer: ticking before it is a no-op.
	e.sched.TickOnce(ctx)
	if got := e.exec.count("flaky"); got != 1 {
		t.Fatalf("retried before backoff: %d", got)
	}
	e.sim.Advance(5 * time.Second)
	e.sched.TickOnce(ctx) // second failure
	e.sim.Advance(5 * time.Second)
	e.sched.TickOnce(ctx) // third attempt succeeds
	if got := e.exec.count("flaky"); got != 3 {
		t.Fatalf("total attempts = %d, want 3", got)
	}
	d = e.task(t, "flaky")
	if d.Retries != 0 || d.LastError != "" || d.State != catalog.TaskQueued {
		t.Errorf("after success: %+v", d)
	}
}

func TestOneShotTaskExhaustsRetriesToDone(t *testing.T) {
	e := newEnv(t, nil)
	e.exec.failN["doomed"] = 99
	ctx := context.Background()
	e.inTx(t, func(tr *tx.Tx) error {
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "doomed", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			NextRun: e.sim.Now().UnixNano(),
		})
	})
	for i := 0; i < 5; i++ {
		e.sched.TickOnce(ctx)
		e.sim.Advance(2 * time.Second)
	}
	if got := e.exec.count("doomed"); got != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts 3", got)
	}
	d := e.task(t, "doomed")
	if d.State != catalog.TaskDone || d.LastError == "" {
		t.Errorf("exhausted one-shot: %+v", d)
	}
}

func TestExpiredLeaseIsReclaimed(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	// A dead owner's claim, mid-lease.
	e.inTx(t, func(tr *tx.Tx) error {
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "orphan", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			State: catalog.TaskClaimed, Owner: "qd-dead",
			LeaseExpiry: e.sim.Now().Add(5 * time.Second).UnixNano(),
			NextRun:     e.sim.Now().UnixNano(),
		})
	})

	// Lease still honoured: the survivor must not steal it.
	e.sched.TickOnce(ctx)
	if got := e.exec.count("orphan"); got != 0 {
		t.Fatalf("ran under a live foreign lease: %d", got)
	}

	// Lease lapsed: reclaimed and run by this owner.
	e.sim.Advance(6 * time.Second)
	e.sched.TickOnce(ctx)
	if got := e.exec.count("orphan"); got != 1 {
		t.Fatalf("reclaimed runs = %d, want 1", got)
	}
	if d := e.task(t, "orphan"); d.State != catalog.TaskDone {
		t.Errorf("after reclaim+run: %+v", d)
	}
}

func TestPausedSchedulerTouchesNothing(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	e.inTx(t, func(tr *tx.Tx) error {
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "waiting", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			NextRun: e.sim.Now().UnixNano(),
		})
	})
	e.sched.Pause()
	e.sched.TickOnce(ctx)
	if got := e.exec.count("waiting"); got != 0 {
		t.Fatalf("paused scheduler ran %d tasks", got)
	}
	e.sched.Resume()
	e.sched.TickOnce(ctx)
	if got := e.exec.count("waiting"); got != 1 {
		t.Fatalf("resumed runs = %d, want 1", got)
	}
}

// sweepTable registers a plain table with one committed segfile layout.
func sweepTable(t *testing.T, e *env, name string, files []catalog.SegFile) int64 {
	t.Helper()
	var oid int64
	e.inTx(t, func(tr *tx.Tx) error {
		var err error
		oid, err = e.cat.CreateTable(tr, &catalog.TableDesc{
			Name:   name,
			Schema: types.NewSchema(types.Column{Name: "k", Kind: types.KindInt64}),
			Dist:   catalog.DistPolicy{Cols: []int{0}},
		})
		if err != nil {
			return err
		}
		for _, f := range files {
			f.TableOID = oid
			e.cat.AddSegFile(tr, f)
		}
		return nil
	})
	return oid
}

func TestSweepEnqueuesAutoAnalyzeOnChurn(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.AnalyzeMinRows = 10 })
	ctx := context.Background()
	quiet := sweepTable(t, e, "quiet", nil)
	churned := sweepTable(t, e, "churned", nil)
	stale := sweepTable(t, e, "stale", nil)

	// quiet: churn below the absolute floor — never analyzed or not.
	e.inTx(t, func(tr *tx.Tx) error {
		e.cat.BumpModCount(tr, quiet, 9)
		// churned: never analyzed, churn past the floor.
		e.cat.BumpModCount(tr, churned, 10)
		// stale: analyzed at 1000 rows; 100 modified is under the 20%
		// ratio, so fresh enough.
		e.cat.SetRelStats(tr, stale, catalog.RelStats{Rows: 1000})
		e.cat.BumpModCount(tr, stale, 100)
		return nil
	})

	e.sched.TickOnce(ctx)
	if got := e.exec.count("auto_analyze_churned"); got != 1 {
		t.Errorf("auto_analyze_churned runs = %d, want 1", got)
	}
	for _, name := range []string{"auto_analyze_quiet", "auto_analyze_stale"} {
		if got := e.exec.count(name); got != 0 {
			t.Errorf("%s ran %d times, want 0", name, got)
		}
	}
	// Successful auto tasks retire themselves.
	tr := e.mgr.Begin(tx.ReadCommitted)
	if left := e.cat.ListTasks(tr.Snapshot()); len(left) != 0 {
		t.Errorf("auto tasks left behind: %+v", left)
	}
	tr.Abort()

	// Push stale's churn over the ratio: next pass enqueues it.
	e.inTx(t, func(tr *tx.Tx) error {
		e.cat.BumpModCount(tr, stale, 150)
		return nil
	})
	e.sched.TickOnce(ctx)
	if got := e.exec.count("auto_analyze_stale"); got != 1 {
		t.Errorf("auto_analyze_stale runs after ratio crossed = %d, want 1", got)
	}
}

func TestSweepEnqueuesCompactionOnFragmentation(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.CompactSmallBytes = 1024; c.CompactMinFiles = 3 })
	ctx := context.Background()
	mk := func(seg, segno int, length int64) catalog.SegFile {
		return catalog.SegFile{SegmentID: seg, SegNo: segno, Path: fmt.Sprintf("/t/%d/%d", seg, segno), LogicalLen: length, Tuples: 1}
	}
	// fragmented: three undersized files on one segment.
	sweepTable(t, e, "fragmented", []catalog.SegFile{mk(0, 1, 100), mk(0, 2, 200), mk(0, 3, 300)})
	// scattered: undersized files spread across segments, none at the
	// per-segment threshold.
	sweepTable(t, e, "scattered", []catalog.SegFile{mk(0, 1, 100), mk(1, 1, 100), mk(2, 1, 100)})
	// chunky: plenty of files, all full-sized.
	sweepTable(t, e, "chunky", []catalog.SegFile{mk(0, 1, 4096), mk(0, 2, 4096), mk(0, 3, 4096)})

	e.sched.TickOnce(ctx)
	if got := e.exec.count("auto_compact_fragmented"); got != 1 {
		t.Errorf("auto_compact_fragmented runs = %d, want 1", got)
	}
	for _, name := range []string{"auto_compact_scattered", "auto_compact_chunky"} {
		if got := e.exec.count(name); got != 0 {
			t.Errorf("%s ran %d times, want 0", name, got)
		}
	}
}

func TestSweepDisabledLeavesUserTasksOnly(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.DisableSweep = true; c.AnalyzeMinRows = 1 })
	ctx := context.Background()
	oid := sweepTable(t, e, "busy", nil)
	e.inTx(t, func(tr *tx.Tx) error {
		e.cat.BumpModCount(tr, oid, 1000)
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "user_job", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			NextRun: e.sim.Now().UnixNano(),
		})
	})
	e.sched.TickOnce(ctx)
	if got := e.exec.count("auto_analyze_busy"); got != 0 {
		t.Errorf("sweep ran with DisableSweep: %d", got)
	}
	if got := e.exec.count("user_job"); got != 1 {
		t.Errorf("user task runs = %d, want 1", got)
	}
}

func TestStartStopDrivesTickerUnderSim(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Tick = time.Second })
	e.inTx(t, func(tr *tx.Tx) error {
		return e.cat.CreateTask(tr, catalog.TaskDesc{
			Name: "ticked", Kind: catalog.TaskKindStatement, Target: "SELECT 1",
			NextRun: e.sim.Now().UnixNano(),
		})
	})
	e.sched.Start()
	defer e.sched.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for e.exec.count("ticked") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never ran the due task")
		}
		e.sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	e.sched.Stop() // idempotent
}

package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
	// Scale is the decimal scale for KindDecimal columns.
	Scale int8
	// NotNull records a NOT NULL constraint.
	NotNull bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s *Schema) IndexOf(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema containing the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Concat returns a schema with o's columns appended to s's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// String renders the schema as "(a INTEGER, b TEXT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of datums positionally matching a schema.
type Row []Datum

// Clone returns a copy of the row safe to retain across iterator calls.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for display, pipe-separated.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "|")
}

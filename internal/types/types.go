// Package types defines the SQL type system used throughout the engine:
// datum values, column schemas, rows, ordering, hashing for data
// distribution, and a compact binary encoding used by the storage formats
// and the interconnect.
package types

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the runtime type of a Datum.
type Kind uint8

// The supported SQL kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt32
	KindInt64
	KindFloat64
	KindDecimal // fixed-point: unscaled int64 plus a decimal scale
	KindString  // CHAR(n), VARCHAR(n) and TEXT all map here
	KindDate    // days since 1970-01-01
	KindBytes
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt32:
		return "INTEGER"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindDecimal:
		return "DECIMAL"
	case KindString:
		return "TEXT"
	case KindDate:
		return "DATE"
	case KindBytes:
		return "BYTEA"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MaxDecimalScale bounds the scale kept after decimal multiplication.
const MaxDecimalScale = 8

// Datum is a single SQL value. The zero value is SQL NULL.
//
// Representation by kind:
//
//	Bool     I (0 or 1)
//	Int32    I
//	Int64    I
//	Float64  F
//	Decimal  I = unscaled value, Scale = number of fractional digits
//	String   S
//	Date     I = days since Unix epoch
//	Bytes    S (byte string)
type Datum struct {
	K     Kind
	Scale int8
	I     int64
	F     float64
	S     string
}

// Null is the SQL NULL datum.
var Null = Datum{K: KindNull}

// NewBool returns a boolean datum.
func NewBool(b bool) Datum {
	if b {
		return Datum{K: KindBool, I: 1}
	}
	return Datum{K: KindBool}
}

// NewInt32 returns an INTEGER datum.
func NewInt32(v int32) Datum { return Datum{K: KindInt32, I: int64(v)} }

// NewInt64 returns a BIGINT datum.
func NewInt64(v int64) Datum { return Datum{K: KindInt64, I: v} }

// NewFloat64 returns a DOUBLE datum.
func NewFloat64(v float64) Datum { return Datum{K: KindFloat64, F: v} }

// NewDecimal returns a DECIMAL datum with the given unscaled value and scale.
// NewDecimal(12345, 2) is the value 123.45.
func NewDecimal(unscaled int64, scale int8) Datum {
	return Datum{K: KindDecimal, I: unscaled, Scale: scale}
}

// NewString returns a TEXT datum.
func NewString(s string) Datum { return Datum{K: KindString, S: s} }

// NewBytes returns a BYTEA datum.
func NewBytes(b []byte) Datum { return Datum{K: KindBytes, S: string(b)} }

// NewDate returns a DATE datum from days since the Unix epoch.
func NewDate(days int32) Datum { return Datum{K: KindDate, I: int64(days)} }

// DateFromTime converts a time.Time (UTC date part) to a DATE datum.
func DateFromTime(t time.Time) Datum {
	return NewDate(int32(t.Unix() / 86400))
}

// MustParseDate parses "YYYY-MM-DD" and panics on malformed input. It is
// intended for literals in tests and generators.
func MustParseDate(s string) Datum {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseDate parses a "YYYY-MM-DD" date string into a DATE datum.
func ParseDate(s string) (Datum, error) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return Null, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.K == KindNull }

// Bool returns the boolean value; the datum must be a BOOLEAN.
func (d Datum) Bool() bool { return d.I != 0 }

// Int returns the integer value of an INTEGER/BIGINT datum.
func (d Datum) Int() int64 { return d.I }

// Float returns the value coerced to float64. Works for every numeric kind.
func (d Datum) Float() float64 {
	switch d.K {
	case KindFloat64:
		return d.F
	case KindDecimal:
		return float64(d.I) / pow10f(d.Scale)
	default:
		return float64(d.I)
	}
}

// Str returns the string value of a TEXT/BYTEA datum.
func (d Datum) Str() string { return d.S }

// Time returns the time.Time corresponding to a DATE datum.
func (d Datum) Time() time.Time {
	return time.Unix(d.I*86400, 0).UTC()
}

// Year returns the calendar year of a DATE datum.
func (d Datum) Year() int { return d.Time().Year() }

var pow10 = [...]int64{1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000, 1000000000}

func pow10f(scale int8) float64 { return float64(pow10[scale]) }

// Rescale returns the decimal's unscaled value at the requested scale,
// truncating extra digits toward zero when scaling down.
func rescale(unscaled int64, from, to int8) int64 {
	for from < to {
		unscaled *= 10
		from++
	}
	for from > to {
		unscaled /= 10
		from--
	}
	return unscaled
}

// DecimalString renders a DECIMAL datum as text, e.g. "123.45".
func (d Datum) DecimalString() string {
	u, sc := d.I, int(d.Scale)
	neg := u < 0
	if neg {
		u = -u
	}
	s := strconv.FormatInt(u, 10)
	if sc > 0 {
		for len(s) <= sc {
			s = "0" + s
		}
		s = s[:len(s)-sc] + "." + s[len(s)-sc:]
	}
	if neg {
		s = "-" + s
	}
	return s
}

// String renders the datum for display.
func (d Datum) String() string {
	switch d.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if d.I != 0 {
			return "t"
		}
		return "f"
	case KindInt32, KindInt64:
		return strconv.FormatInt(d.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindDecimal:
		return d.DecimalString()
	case KindString, KindBytes:
		return d.S
	case KindDate:
		return d.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("<bad datum kind %d>", d.K)
	}
}

// numericKind reports whether k participates in numeric arithmetic.
func numericKind(k Kind) bool {
	switch k {
	case KindInt32, KindInt64, KindFloat64, KindDecimal:
		return true
	}
	return false
}

// Compare orders two datums. NULL sorts before every non-NULL value.
// Numeric kinds compare by value across kinds; other kinds must match.
// It panics on incomparable kinds, which indicates a planner bug.
func Compare(a, b Datum) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.K) && numericKind(b.K) {
		return compareNumeric(a, b)
	}
	switch {
	case a.K == KindDate && b.K == KindDate,
		a.K == KindBool && b.K == KindBool:
		return cmpInt64(a.I, b.I)
	case (a.K == KindString || a.K == KindBytes) && (b.K == KindString || b.K == KindBytes):
		return strings.Compare(a.S, b.S)
	}
	panic(fmt.Sprintf("types: cannot compare %s with %s", a.K, b.K))
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareNumeric(a, b Datum) int {
	if a.K == KindFloat64 || b.K == KindFloat64 {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K == KindDecimal || b.K == KindDecimal {
		as, bs := a.I, b.I
		asc, bsc := a.Scale, b.Scale
		if a.K != KindDecimal {
			asc = 0
		}
		if b.K != KindDecimal {
			bsc = 0
		}
		return cmpDecimal(as, asc, bs, bsc)
	}
	return cmpInt64(a.I, b.I)
}

// cmpDecimal exactly compares aU*10^-aSc with bU*10^-bSc. The fast path
// rescales to the wider scale in int64; the rare overflow path is exact
// via math/big.
func cmpDecimal(aU int64, aSc int8, bU int64, bSc int8) int {
	if aSc == bSc {
		return cmpInt64(aU, bU)
	}
	target := aSc
	if bSc > target {
		target = bSc
	}
	if within(aU, 1e12) && within(bU, 1e12) && target <= MaxDecimalScale {
		return cmpInt64(rescale(aU, aSc, target), rescale(bU, bSc, target))
	}
	x := new(big.Int).Mul(big.NewInt(aU), bigPow10(bSc))
	y := new(big.Int).Mul(big.NewInt(bU), bigPow10(aSc))
	return x.Cmp(y)
}

func bigPow10(sc int8) *big.Int {
	return new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(sc)), nil)
}

func within(v, bound int64) bool { return v > -bound && v < bound }

// Equal reports whether two datums compare equal.
func Equal(a, b Datum) bool {
	if (a.K == KindNull) != (b.K == KindNull) {
		return false
	}
	return Compare(a, b) == 0
}

// Arithmetic on datums. Any NULL operand yields NULL. Results follow SQL
// numeric promotion: int op int -> int64, decimal involvement -> decimal,
// float involvement -> float64.

// Add returns a+b.
func Add(a, b Datum) Datum { return arith(a, b, '+') }

// Sub returns a-b.
func Sub(a, b Datum) Datum { return arith(a, b, '-') }

// Mul returns a*b.
func Mul(a, b Datum) Datum { return arith(a, b, '*') }

// Div returns a/b; division by zero yields NULL.
func Div(a, b Datum) Datum { return arith(a, b, '/') }

func arith(a, b Datum, op byte) Datum {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	// Date +/- integer days.
	if a.K == KindDate && (b.K == KindInt32 || b.K == KindInt64) && (op == '+' || op == '-') {
		if op == '+' {
			return NewDate(int32(a.I + b.I))
		}
		return NewDate(int32(a.I - b.I))
	}
	if a.K == KindDate && b.K == KindDate && op == '-' {
		return NewInt64(a.I - b.I)
	}
	if !numericKind(a.K) || !numericKind(b.K) {
		panic(fmt.Sprintf("types: arithmetic %c on %s and %s", op, a.K, b.K))
	}
	if a.K == KindFloat64 || b.K == KindFloat64 {
		return floatArith(a.Float(), b.Float(), op)
	}
	if a.K == KindDecimal || b.K == KindDecimal {
		return decimalArith(a, b, op)
	}
	// Pure integer arithmetic.
	switch op {
	case '+':
		return NewInt64(a.I + b.I)
	case '-':
		return NewInt64(a.I - b.I)
	case '*':
		return NewInt64(a.I * b.I)
	case '/':
		if b.I == 0 {
			return Null
		}
		return NewInt64(a.I / b.I)
	}
	panic("unreachable")
}

func floatArith(a, b float64, op byte) Datum {
	switch op {
	case '+':
		return NewFloat64(a + b)
	case '-':
		return NewFloat64(a - b)
	case '*':
		return NewFloat64(a * b)
	case '/':
		if b == 0 {
			return Null
		}
		return NewFloat64(a / b)
	}
	panic("unreachable")
}

func decimalArith(a, b Datum, op byte) Datum {
	as, asc := a.I, a.Scale
	if a.K != KindDecimal {
		asc = 0
	}
	bs, bsc := b.I, b.Scale
	if b.K != KindDecimal {
		bsc = 0
	}
	switch op {
	case '+', '-':
		sc := asc
		if bsc > sc {
			sc = bsc
		}
		x, y := rescale(as, asc, sc), rescale(bs, bsc, sc)
		if op == '+' {
			return NewDecimal(x+y, sc)
		}
		return NewDecimal(x-y, sc)
	case '*':
		sc := asc + bsc
		v := as * bs
		// Detect overflow; fall back to float math, which is fine for
		// the analytics aggregates this engine computes.
		if as != 0 && v/as != bs || sc > MaxDecimalScale {
			return NewFloat64(a.Float() * b.Float())
		}
		return NewDecimal(v, sc)
	case '/':
		if bs == 0 {
			return Null
		}
		return NewFloat64(a.Float() / b.Float())
	}
	panic("unreachable")
}

// Neg returns the arithmetic negation of a numeric datum.
func Neg(a Datum) Datum {
	switch a.K {
	case KindNull:
		return Null
	case KindInt32:
		return NewInt32(int32(-a.I))
	case KindInt64:
		return NewInt64(-a.I)
	case KindFloat64:
		return NewFloat64(-a.F)
	case KindDecimal:
		return NewDecimal(-a.I, a.Scale)
	}
	panic(fmt.Sprintf("types: negation of %s", a.K))
}

// Cast converts a datum to the target kind, returning an error for
// unsupported or malformed conversions. NULL casts to NULL.
func Cast(d Datum, to Kind) (Datum, error) {
	if d.IsNull() || d.K == to {
		return withKind(d, to), nil
	}
	switch to {
	case KindInt32, KindInt64:
		switch d.K {
		case KindInt32, KindInt64, KindBool, KindDate:
			return Datum{K: to, I: d.I}, nil
		case KindFloat64:
			return Datum{K: to, I: int64(d.F)}, nil
		case KindDecimal:
			return Datum{K: to, I: rescale(d.I, d.Scale, 0)}, nil
		case KindString:
			v, err := strconv.ParseInt(strings.TrimSpace(d.S), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to %s", d.S, to)
			}
			return Datum{K: to, I: v}, nil
		}
	case KindFloat64:
		if numericKind(d.K) {
			return NewFloat64(d.Float()), nil
		}
		if d.K == KindString {
			v, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Null, fmt.Errorf("cannot cast %q to DOUBLE", d.S)
			}
			return NewFloat64(v), nil
		}
	case KindDecimal:
		switch d.K {
		case KindInt32, KindInt64:
			return NewDecimal(d.I, 0), nil
		case KindFloat64:
			return NewDecimal(int64(d.F*100+copysign(0.5, d.F)), 2), nil
		case KindString:
			return ParseDecimal(strings.TrimSpace(d.S))
		}
	case KindString:
		return NewString(d.String()), nil
	case KindDate:
		if d.K == KindString {
			return ParseDate(strings.TrimSpace(d.S))
		}
		if d.K == KindInt32 || d.K == KindInt64 {
			return NewDate(int32(d.I)), nil
		}
	case KindBool:
		switch d.K {
		case KindInt32, KindInt64:
			return NewBool(d.I != 0), nil
		case KindString:
			switch strings.ToLower(strings.TrimSpace(d.S)) {
			case "t", "true", "yes", "on", "1":
				return NewBool(true), nil
			case "f", "false", "no", "off", "0":
				return NewBool(false), nil
			}
		}
	case KindBytes:
		if d.K == KindString {
			return NewBytes([]byte(d.S)), nil
		}
	}
	return Null, fmt.Errorf("unsupported cast from %s to %s", d.K, to)
}

func withKind(d Datum, to Kind) Datum {
	if d.IsNull() {
		return Null
	}
	return d
}

func copysign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}

// ParseDecimal parses a decimal literal such as "123.45" or "-0.07".
func ParseDecimal(s string) (Datum, error) {
	neg := false
	t := s
	if strings.HasPrefix(t, "-") {
		neg, t = true, t[1:]
	} else if strings.HasPrefix(t, "+") {
		t = t[1:]
	}
	intPart, fracPart, _ := strings.Cut(t, ".")
	if intPart == "" {
		intPart = "0"
	}
	if len(fracPart) > MaxDecimalScale {
		fracPart = fracPart[:MaxDecimalScale]
	}
	v, err := strconv.ParseInt(intPart+fracPart, 10, 64)
	if err != nil {
		return Null, fmt.Errorf("invalid decimal %q", s)
	}
	if neg {
		v = -v
	}
	return NewDecimal(v, int8(len(fracPart))), nil
}

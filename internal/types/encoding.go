package types

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
)

// EncodeDatum appends a self-describing binary encoding of d to buf.
// The encoding is used by the storage formats, the interconnect, and
// serialized plans; DecodeDatum reverses it.
func EncodeDatum(buf []byte, d Datum) []byte {
	buf = append(buf, byte(d.K))
	switch d.K {
	case KindNull:
	case KindBool:
		buf = append(buf, byte(d.I))
	case KindInt32, KindInt64, KindDate:
		buf = binary.AppendVarint(buf, d.I)
	case KindFloat64:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.F))
	case KindDecimal:
		buf = append(buf, byte(d.Scale))
		buf = binary.AppendVarint(buf, d.I)
	case KindString, KindBytes:
		buf = binary.AppendUvarint(buf, uint64(len(d.S)))
		buf = append(buf, d.S...)
	default:
		panic(fmt.Sprintf("types: encode of bad kind %d", d.K))
	}
	return buf
}

// DecodeDatum decodes one datum from buf, returning it and the number of
// bytes consumed.
func DecodeDatum(buf []byte) (Datum, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("types: decode on empty buffer")
	}
	k := Kind(buf[0])
	pos := 1
	switch k {
	case KindNull:
		return Null, pos, nil
	case KindBool:
		if len(buf) < 2 {
			return Null, 0, fmt.Errorf("types: truncated bool")
		}
		return Datum{K: KindBool, I: int64(buf[1])}, 2, nil
	case KindInt32, KindInt64, KindDate:
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("types: truncated varint")
		}
		return Datum{K: k, I: v}, pos + n, nil
	case KindFloat64:
		if len(buf) < pos+8 {
			return Null, 0, fmt.Errorf("types: truncated float")
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(buf[pos:]))
		return Datum{K: KindFloat64, F: f}, pos + 8, nil
	case KindDecimal:
		if len(buf) < pos+1 {
			return Null, 0, fmt.Errorf("types: truncated decimal")
		}
		scale := int8(buf[pos])
		pos++
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("types: truncated decimal value")
		}
		return Datum{K: KindDecimal, I: v, Scale: scale}, pos + n, nil
	case KindString, KindBytes:
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("types: truncated string length")
		}
		pos += n
		if uint64(len(buf)-pos) < l {
			return Null, 0, fmt.Errorf("types: truncated string body")
		}
		return Datum{K: k, S: string(buf[pos : pos+int(l)])}, pos + int(l), nil
	default:
		return Null, 0, fmt.Errorf("types: decode of bad kind %d", k)
	}
}

// EncodeRow appends the encoding of every datum in the row, prefixed with
// the column count.
func EncodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, d := range r {
		buf = EncodeDatum(buf, d)
	}
	return buf
}

// DecodeRow decodes a row produced by EncodeRow, returning the row and the
// number of bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	return DecodeRowInto(buf, nil)
}

// DecodeRowInto decodes a row like DecodeRow but reuses row's backing
// storage when it has capacity, returning the (possibly reallocated)
// row. It never panics on truncated or corrupt input: the column count
// in the header is validated against the bytes actually present before
// any allocation.
func DecodeRowInto(buf []byte, row Row) (Row, int, error) {
	n, consumed := binary.Uvarint(buf)
	if consumed <= 0 {
		return nil, 0, fmt.Errorf("types: truncated row header")
	}
	// Every datum encodes to at least one byte, so a count beyond the
	// remaining bytes is corruption; checking first keeps a hostile
	// header from forcing a huge allocation.
	if n > uint64(len(buf)-consumed) {
		return nil, 0, fmt.Errorf("types: row header claims %d columns, only %d bytes left", n, len(buf)-consumed)
	}
	if row == nil || uint64(cap(row)) < n {
		row = make(Row, n)
	}
	row = row[:n]
	pos := consumed
	for i := range row {
		d, sz, err := DecodeDatum(buf[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("column %d: %w", i, err)
		}
		row[i] = d
		pos += sz
	}
	return row, pos, nil
}

// HashDatum feeds a normalized representation of d into h so that datums
// that compare equal hash equal (e.g. INT32 7 and INT64 7, and decimals
// with different scales).
func HashDatum(h hash.Hash, d Datum) {
	var tmp [10]byte
	switch d.K {
	case KindNull:
		h.Write([]byte{0})
	case KindBool:
		h.Write([]byte{1, byte(d.I)})
	case KindInt32, KindInt64:
		tmp[0] = 2
		binary.BigEndian.PutUint64(tmp[1:9], uint64(d.I))
		h.Write(tmp[:9])
	case KindFloat64:
		tmp[0] = 3
		binary.BigEndian.PutUint64(tmp[1:9], math.Float64bits(d.F))
		h.Write(tmp[:9])
	case KindDecimal:
		// Normalize by stripping trailing zeros of the unscaled value.
		u, sc := d.I, d.Scale
		for sc > 0 && u%10 == 0 {
			u /= 10
			sc--
		}
		if sc == 0 {
			// Integral decimals hash like integers.
			tmp[0] = 2
			binary.BigEndian.PutUint64(tmp[1:9], uint64(u))
			h.Write(tmp[:9])
			return
		}
		tmp[0] = 4
		tmp[1] = byte(sc)
		binary.BigEndian.PutUint64(tmp[2:10], uint64(u))
		h.Write(tmp[:10])
	case KindString, KindBytes:
		h.Write([]byte{5})
		h.Write([]byte(d.S))
	case KindDate:
		tmp[0] = 6
		binary.BigEndian.PutUint64(tmp[1:9], uint64(d.I))
		h.Write(tmp[:9])
	}
}

// HashRowCols returns a stable 64-bit hash of the datums at cols, used by
// hash distribution and the redistribute motion. An empty cols hashes the
// whole row.
func HashRowCols(r Row, cols []int) uint64 {
	h := fnv.New64a()
	if len(cols) == 0 {
		for _, d := range r {
			HashDatum(h, d)
		}
		return h.Sum64()
	}
	for _, c := range cols {
		HashDatum(h, r[c])
	}
	return h.Sum64()
}

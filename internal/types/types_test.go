package types

import (
	"hash/fnv"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDatumConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if d := NewBool(true); !d.Bool() || d.K != KindBool {
		t.Errorf("NewBool(true) = %+v", d)
	}
	if d := NewInt32(-7); d.Int() != -7 || d.K != KindInt32 {
		t.Errorf("NewInt32 = %+v", d)
	}
	if d := NewInt64(1 << 40); d.Int() != 1<<40 {
		t.Errorf("NewInt64 = %+v", d)
	}
	if d := NewFloat64(2.5); d.Float() != 2.5 {
		t.Errorf("NewFloat64 = %+v", d)
	}
	if d := NewDecimal(12345, 2); d.Float() != 123.45 || d.String() != "123.45" {
		t.Errorf("NewDecimal = %v (%s)", d.Float(), d)
	}
	if d := NewString("hi"); d.Str() != "hi" {
		t.Errorf("NewString = %+v", d)
	}
}

func TestDateParsingAndYear(t *testing.T) {
	d, err := ParseDate("1995-03-15")
	if err != nil {
		t.Fatal(err)
	}
	if d.Year() != 1995 {
		t.Errorf("year = %d, want 1995", d.Year())
	}
	if d.String() != "1995-03-15" {
		t.Errorf("round trip = %s", d)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for bad date")
	}
	epoch := MustParseDate("1970-01-01")
	if epoch.I != 0 {
		t.Errorf("epoch days = %d", epoch.I)
	}
}

func TestDecimalStringNegativeAndSmall(t *testing.T) {
	cases := []struct {
		u    int64
		sc   int8
		want string
	}{
		{-7, 2, "-0.07"},
		{0, 2, "0.00"},
		{5, 0, "5"},
		{100, 2, "1.00"},
		{-12345, 4, "-1.2345"},
	}
	for _, c := range cases {
		if got := NewDecimal(c.u, c.sc).String(); got != c.want {
			t.Errorf("decimal(%d,%d) = %q, want %q", c.u, c.sc, got, c.want)
		}
	}
}

func TestParseDecimal(t *testing.T) {
	d, err := ParseDecimal("-123.456")
	if err != nil {
		t.Fatal(err)
	}
	if d.I != -123456 || d.Scale != 3 {
		t.Errorf("ParseDecimal = %+v", d)
	}
	if _, err := ParseDecimal("12x.3"); err == nil {
		t.Error("expected parse error")
	}
	d, _ = ParseDecimal("42")
	if d.I != 42 || d.Scale != 0 {
		t.Errorf("ParseDecimal(42) = %+v", d)
	}
}

func TestCompareCrossNumeric(t *testing.T) {
	if Compare(NewInt32(7), NewInt64(7)) != 0 {
		t.Error("int32 7 != int64 7")
	}
	if Compare(NewDecimal(700, 2), NewInt64(7)) != 0 {
		t.Error("decimal 7.00 != int 7")
	}
	if Compare(NewDecimal(701, 2), NewInt64(7)) <= 0 {
		t.Error("7.01 should exceed 7")
	}
	if Compare(NewFloat64(1.5), NewDecimal(150, 2)) != 0 {
		t.Error("float 1.5 != decimal 1.50")
	}
	if Compare(Null, NewInt64(0)) != -1 || Compare(NewInt64(0), Null) != 1 {
		t.Error("NULL must sort first")
	}
	if Compare(NewString("abc"), NewString("abd")) != -1 {
		t.Error("string compare broken")
	}
	if Compare(MustParseDate("1995-01-01"), MustParseDate("1996-01-01")) != -1 {
		t.Error("date compare broken")
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt64(2), NewInt64(3)); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Mul(NewDecimal(150, 2), NewDecimal(200, 2)); got.K != KindDecimal || got.String() != "3.0000" {
		t.Errorf("1.50*2.00 = %v (%+v)", got, got)
	}
	if got := Sub(NewInt64(1), NewDecimal(4, 2)); got.String() != "0.96" {
		t.Errorf("1-0.04 = %v", got)
	}
	if got := Div(NewInt64(7), NewInt64(2)); got.Int() != 3 {
		t.Errorf("7/2 = %v, want integer division 3", got)
	}
	if got := Div(NewInt64(7), NewInt64(0)); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := Add(Null, NewInt64(1)); !got.IsNull() {
		t.Error("NULL + 1 must be NULL")
	}
	if got := Mul(NewFloat64(2), NewInt64(3)); got.Float() != 6 {
		t.Errorf("2.0*3 = %v", got)
	}
	// Date arithmetic.
	d := MustParseDate("1995-01-01")
	if got := Add(d, NewInt64(31)); got.String() != "1995-02-01" {
		t.Errorf("date+31 = %v", got)
	}
	if got := Sub(MustParseDate("1995-01-02"), d); got.Int() != 1 {
		t.Errorf("date diff = %v", got)
	}
	if got := Neg(NewDecimal(5, 1)); got.String() != "-0.5" {
		t.Errorf("neg = %v", got)
	}
}

func TestDecimalMulOverflowFallsBackToFloat(t *testing.T) {
	big := NewDecimal(math.MaxInt64/2, 2)
	got := Mul(big, NewDecimal(300, 2))
	if got.K != KindFloat64 {
		t.Fatalf("overflowing mul kind = %v, want float fallback", got.K)
	}
	want := big.Float() * 3.0
	if math.Abs(got.Float()-want)/want > 1e-9 {
		t.Errorf("fallback value = %v, want ~%v", got.Float(), want)
	}
}

func TestCast(t *testing.T) {
	ok := func(d Datum, to Kind, want string) {
		t.Helper()
		got, err := Cast(d, to)
		if err != nil {
			t.Fatalf("cast %v -> %v: %v", d, to, err)
		}
		if got.String() != want {
			t.Errorf("cast %v -> %v = %q, want %q", d, to, got, want)
		}
	}
	ok(NewString("42"), KindInt64, "42")
	ok(NewString(" 3.5 "), KindFloat64, "3.5")
	ok(NewInt64(9), KindString, "9")
	ok(NewString("1995-06-17"), KindDate, "1995-06-17")
	ok(NewFloat64(1.005), KindDecimal, "1.00")
	ok(NewString("12.34"), KindDecimal, "12.34")
	ok(NewInt64(1), KindBool, "t")
	ok(NewString("false"), KindBool, "f")
	if _, err := Cast(NewString("zzz"), KindInt64); err == nil {
		t.Error("expected cast error")
	}
	if d, err := Cast(Null, KindInt64); err != nil || !d.IsNull() {
		t.Error("NULL cast must stay NULL")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: KindInt64},
		Column{Name: "B", Kind: KindString},
	)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.IndexOf("b") != 1 || s.IndexOf("A") != 0 || s.IndexOf("missing") != -1 {
		t.Error("IndexOf case-insensitivity broken")
	}
	p := s.Project([]int{1})
	if p.Len() != 1 || p.Columns[0].Name != "B" {
		t.Errorf("project = %v", p)
	}
	c := s.Concat(p)
	if c.Len() != 3 {
		t.Errorf("concat len = %d", c.Len())
	}
	if got := s.String(); got != "(a BIGINT, B TEXT)" {
		t.Errorf("schema string = %q", got)
	}
	if names := s.Names(); !reflect.DeepEqual(names, []string{"a", "B"}) {
		t.Errorf("names = %v", names)
	}
}

func randomDatum(r *rand.Rand) Datum {
	switch r.Intn(8) {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 1)
	case 2:
		return NewInt32(int32(r.Int63()))
	case 3:
		return NewInt64(r.Int63() - r.Int63())
	case 4:
		return NewFloat64(r.NormFloat64() * 1e6)
	case 5:
		return NewDecimal(r.Int63n(1e12)-5e11, int8(r.Intn(5)))
	case 6:
		b := make([]byte, r.Intn(40))
		r.Read(b)
		return NewString(string(b))
	default:
		return NewDate(int32(r.Intn(40000) - 10000))
	}
}

func TestEncodeDecodeDatumRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		d := randomDatum(r)
		buf := EncodeDatum(nil, d)
		got, n, err := DecodeDatum(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", d, err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if got != d {
			t.Fatalf("round trip %+v -> %+v", d, got)
		}
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		row := make(Row, r.Intn(12))
		for j := range row {
			row[j] = randomDatum(r)
		}
		buf := EncodeRow(nil, row)
		// Append noise to verify length discipline.
		buf = append(buf, 0xde, 0xad)
		got, n, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf)-2 {
			t.Fatalf("consumed %d, want %d", n, len(buf)-2)
		}
		if !reflect.DeepEqual(got, row) {
			t.Fatalf("round trip %v -> %v", row, got)
		}
	}
}

func TestDecodeErrorsOnTruncation(t *testing.T) {
	row := Row{NewInt64(5), NewString("hello"), NewFloat64(1.5)}
	buf := EncodeRow(nil, row)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRow(buf[:cut]); err == nil {
			t.Fatalf("no error decoding %d/%d bytes", cut, len(buf))
		}
	}
}

// Property: encode/decode is the identity on datums (testing/quick drives
// the raw field values; we normalize to a valid datum first).
func TestQuickEncodeDecode(t *testing.T) {
	f := func(kindSeed uint8, i int64, fl float64, s string, scale uint8) bool {
		var d Datum
		switch kindSeed % 7 {
		case 0:
			d = Null
		case 1:
			d = NewBool(i%2 == 0)
		case 2:
			d = NewInt64(i)
		case 3:
			d = NewFloat64(fl)
		case 4:
			d = NewDecimal(i, int8(scale%9))
		case 5:
			d = NewString(s)
		case 6:
			d = NewDate(int32(i))
		}
		buf := EncodeDatum(nil, d)
		got, n, err := DecodeDatum(buf)
		return err == nil && n == len(buf) && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: datums that compare equal hash equal.
func TestQuickHashConsistentWithEquality(t *testing.T) {
	f := func(v int64, scale uint8) bool {
		sc := int8(scale % 5)
		a := NewInt64(v)
		u := v
		overflow := false
		for i := int8(0); i < sc; i++ {
			next := u * 10
			if u != 0 && next/10 != u {
				overflow = true
				break
			}
			u = next
		}
		if overflow {
			return true
		}
		b := NewDecimal(u, sc)
		if Compare(a, b) != 0 {
			return false
		}
		ha, hb := fnv.New64a(), fnv.New64a()
		HashDatum(ha, a)
		HashDatum(hb, b)
		return ha.Sum64() == hb.Sum64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashRowCols(t *testing.T) {
	r1 := Row{NewInt64(1), NewString("x"), NewInt64(9)}
	r2 := Row{NewInt64(1), NewString("y"), NewInt64(8)}
	if HashRowCols(r1, []int{0}) != HashRowCols(r2, []int{0}) {
		t.Error("same key column must hash equal")
	}
	if HashRowCols(r1, nil) == HashRowCols(r2, nil) {
		t.Error("full-row hashes of different rows should differ")
	}
	// Cross-kind key equality: int32 vs int64.
	a := Row{NewInt32(77)}
	b := Row{NewInt64(77)}
	if HashRowCols(a, []int{0}) != HashRowCols(b, []int{0}) {
		t.Error("int32/int64 equal values must hash equal")
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt64(1)}
	c := r.Clone()
	c[0] = NewInt64(2)
	if r[0].Int() != 1 {
		t.Error("clone aliases original")
	}
	if r.String() != "1" {
		t.Errorf("row string = %q", r.String())
	}
}

package types

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"hawq/internal/obs"
)

// VecEnc identifies the in-memory representation of a Vector's values.
// The encodings mirror the lightweight page encodings the storage
// formats write, so a scan can hand pages to the executor without
// eagerly decoding them.
type VecEnc uint8

const (
	// VecFlat stores one decoded Datum per row in Values.
	VecFlat VecEnc = iota
	// VecRaw stores the rows as a concatenated EncodeDatum stream in
	// Raw — nothing is decoded until a consumer asks. A v1 flat page
	// payload is a valid VecRaw vector as-is.
	VecRaw
	// VecRLE stores run-length-encoded values: Runs[k] consecutive rows
	// share the value Values[k].
	VecRLE
	// VecDict stores dictionary-encoded values: row i has the value
	// Values[Codes[i]].
	VecDict
)

// Vector is one column of an encoded batch. Kernels that understand an
// encoding operate on Values/Runs/Codes directly (evaluating a
// predicate once per run or per dictionary entry instead of once per
// row); everything else materializes through VecBatch.Materialize.
type Vector struct {
	// Enc selects which of the representation fields below are live.
	Enc VecEnc
	// N is the row count of the vector regardless of encoding.
	N int
	// Raw is the undecoded datum stream (VecRaw).
	Raw []byte
	// Values holds the per-row values (VecFlat), the per-run values
	// (VecRLE), or the dictionary entries (VecDict).
	Values []Datum
	// Runs holds the per-run lengths (VecRLE); they sum to N.
	Runs []int32
	// Codes holds the per-row dictionary indexes (VecDict).
	Codes []int32
}

// reset clears the vector for reuse, retaining slice capacity.
func (v *Vector) reset() {
	v.Enc = VecFlat
	v.N = 0
	v.Raw = nil
	v.Values = v.Values[:0]
	v.Runs = v.Runs[:0]
	v.Codes = v.Codes[:0]
}

// SkipDatum returns the encoded size of the next datum in buf without
// materializing it — the selective-decode primitive that lets a reader
// step over rows a selection vector killed without allocating their
// string payloads.
func SkipDatum(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("types: skip on empty buffer")
	}
	k := Kind(buf[0])
	pos := 1
	switch k {
	case KindNull:
		return pos, nil
	case KindBool:
		if len(buf) < 2 {
			return 0, fmt.Errorf("types: truncated bool")
		}
		return 2, nil
	case KindInt32, KindInt64, KindDate:
		_, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("types: truncated varint")
		}
		return pos + n, nil
	case KindFloat64:
		if len(buf) < pos+8 {
			return 0, fmt.Errorf("types: truncated float")
		}
		return pos + 8, nil
	case KindDecimal:
		pos++ // scale byte
		if len(buf) < pos {
			return 0, fmt.Errorf("types: truncated decimal")
		}
		_, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("types: truncated decimal value")
		}
		return pos + n, nil
	case KindString, KindBytes:
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("types: truncated string length")
		}
		pos += n
		if uint64(len(buf)-pos) < l {
			return 0, fmt.Errorf("types: truncated string body")
		}
		return pos + int(l), nil
	default:
		return 0, fmt.Errorf("types: skip of bad kind %d", k)
	}
}

// Decode appends all N row values of the vector to dst in row order,
// fully decoding whatever the encoding is. It is the generic
// decode-then-fallback path for consumers with no specialized kernel.
func (v *Vector) Decode(dst []Datum) ([]Datum, error) {
	switch v.Enc {
	case VecFlat:
		return append(dst, v.Values[:v.N]...), nil
	case VecRaw:
		pos := 0
		for i := 0; i < v.N; i++ {
			d, n, err := DecodeDatum(v.Raw[pos:])
			if err != nil {
				return dst, fmt.Errorf("types: vector row %d: %w", i, err)
			}
			dst = append(dst, d)
			pos += n
		}
		return dst, nil
	case VecRLE:
		for k, run := range v.Runs {
			for j := int32(0); j < run; j++ {
				dst = append(dst, v.Values[k])
			}
		}
		return dst, nil
	case VecDict:
		for _, c := range v.Codes[:v.N] {
			if int(c) >= len(v.Values) {
				return dst, fmt.Errorf("types: dict code %d out of range (%d entries)", c, len(v.Values))
			}
			dst = append(dst, v.Values[c])
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("types: decode of bad vector encoding %d", v.Enc)
	}
}

// VecBatch is a batch of encoded column vectors plus an optional
// selection: the unit the compressed-execution scan path hands to the
// executor. Like Batch it is pooled (GetVecBatch/PutVecBatch) and
// ownership transfers with the value; the receiver must return it.
type VecBatch struct {
	// Cols holds one vector per projected column; all share the row
	// count n.
	Cols []Vector
	n    int
	// Sel, when non-nil, is the sorted list of surviving row indexes
	// after encoded-domain filtering; nil means every row survives.
	Sel []int32
	// pooled marks a batch currently sitting in the pool; PutVecBatch
	// uses it to panic on a double return.
	pooled bool
}

// Reset clears the batch to ncols empty vectors, retaining capacity.
func (vb *VecBatch) Reset(ncols int) {
	if cap(vb.Cols) < ncols {
		vb.Cols = make([]Vector, ncols)
	}
	vb.Cols = vb.Cols[:ncols]
	for i := range vb.Cols {
		vb.Cols[i].reset()
	}
	vb.n = 0
	vb.Sel = nil
}

// SetLen fixes the batch row count; every column vector must carry
// exactly n rows.
func (vb *VecBatch) SetLen(n int) { vb.n = n }

// Len returns the row count before selection.
func (vb *VecBatch) Len() int { return vb.n }

// SelCount returns the number of rows surviving the selection vector
// (all of them when no selection has been applied).
func (vb *VecBatch) SelCount() int {
	if vb.Sel == nil {
		return vb.n
	}
	return len(vb.Sel)
}

// Materialize decodes the surviving rows of every column into b,
// resetting b first. Killed rows are stepped over without allocation
// (SkipDatum for raw streams, run arithmetic for RLE), which is what
// makes filtering before decode profitable.
func (vb *VecBatch) Materialize(b *Batch) error {
	b.Reset(len(vb.Cols))
	out := vb.SelCount()
	b.Extend(out)
	for j := range vb.Cols {
		if err := materializeCol(&vb.Cols[j], vb.Sel, b, j); err != nil {
			return err
		}
	}
	return nil
}

// materializeCol writes column j's surviving values into b, honoring
// the selection vector sel (nil = all rows).
func materializeCol(v *Vector, sel []int32, b *Batch, j int) error {
	switch v.Enc {
	case VecFlat:
		if sel == nil {
			for i := 0; i < v.N; i++ {
				b.Row(i)[j] = v.Values[i]
			}
			return nil
		}
		for oi, ri := range sel {
			b.Row(oi)[j] = v.Values[ri]
		}
		return nil
	case VecRaw:
		pos, next := 0, 0
		if sel == nil {
			for i := 0; i < v.N; i++ {
				d, n, err := DecodeDatum(v.Raw[pos:])
				if err != nil {
					return fmt.Errorf("types: vector row %d: %w", i, err)
				}
				b.Row(i)[j] = d
				pos += n
			}
			return nil
		}
		for oi, ri := range sel {
			for int32(next) < ri {
				n, err := SkipDatum(v.Raw[pos:])
				if err != nil {
					return fmt.Errorf("types: vector row %d: %w", next, err)
				}
				pos += n
				next++
			}
			d, n, err := DecodeDatum(v.Raw[pos:])
			if err != nil {
				return fmt.Errorf("types: vector row %d: %w", next, err)
			}
			b.Row(oi)[j] = d
			pos += n
			next++
		}
		return nil
	case VecRLE:
		if sel == nil {
			i := 0
			for k, run := range v.Runs {
				for r := int32(0); r < run; r++ {
					b.Row(i)[j] = v.Values[k]
					i++
				}
			}
			return nil
		}
		// sel is sorted ascending, so one forward walk over the runs
		// covers every selected row.
		k, runEnd := 0, int32(0)
		if len(v.Runs) > 0 {
			runEnd = v.Runs[0]
		}
		for oi, ri := range sel {
			for k < len(v.Runs) && ri >= runEnd {
				k++
				if k < len(v.Runs) {
					runEnd += v.Runs[k]
				}
			}
			if k >= len(v.Runs) {
				return fmt.Errorf("types: selection index %d beyond RLE runs (%d rows)", ri, v.N)
			}
			b.Row(oi)[j] = v.Values[k]
		}
		return nil
	case VecDict:
		if sel == nil {
			for i := 0; i < v.N; i++ {
				c := v.Codes[i]
				if int(c) >= len(v.Values) {
					return fmt.Errorf("types: dict code %d out of range (%d entries)", c, len(v.Values))
				}
				b.Row(i)[j] = v.Values[c]
			}
			return nil
		}
		for oi, ri := range sel {
			c := v.Codes[ri]
			if int(c) >= len(v.Values) {
				return fmt.Errorf("types: dict code %d out of range (%d entries)", c, len(v.Values))
			}
			b.Row(oi)[j] = v.Values[c]
		}
		return nil
	default:
		return fmt.Errorf("types: materialize of bad vector encoding %d", v.Enc)
	}
}

// vecBatchPool recycles encoded batches across scan pipeline stages.
var vecBatchPool = sync.Pool{New: func() any { return new(VecBatch) }}

// vecGets and vecPuts count vec-batch pool traffic; their difference is
// the number of encoded batches currently checked out (leaked ones show
// up as a non-zero residue, exactly like types.batch_in_use).
var vecGets, vecPuts atomic.Int64

// VecPoolStats reports cumulative GetVecBatch and PutVecBatch counts.
func VecPoolStats() (gets, puts int64) {
	return vecGets.Load(), vecPuts.Load()
}

// VecPoolInUse returns the number of encoded batches currently checked
// out of the pool (gets − puts).
func VecPoolInUse() int64 {
	return vecGets.Load() - vecPuts.Load()
}

// init publishes the vec-batch pool counters into the process-wide
// metrics registry alongside the row-batch ones.
func init() {
	obs.RegisterGauge("types.vecbatch_gets", func() int64 { return vecGets.Load() })
	obs.RegisterGauge("types.vecbatch_puts", func() int64 { return vecPuts.Load() })
	obs.RegisterGauge("types.vecbatch_in_use", VecPoolInUse)
}

// GetVecBatch returns a pooled encoded batch reset to ncols columns.
func GetVecBatch(ncols int) *VecBatch {
	vecGets.Add(1)
	vb := vecBatchPool.Get().(*VecBatch)
	vb.pooled = false
	vb.Reset(ncols)
	return vb
}

// PutVecBatch returns an encoded batch to the pool. The caller must not
// touch the batch (or any vector in it) afterwards; returning the same
// batch twice panics rather than silently aliasing its vectors to two
// future owners.
func PutVecBatch(vb *VecBatch) {
	if vb == nil {
		return
	}
	if vb.pooled {
		panic("types: PutVecBatch called twice on the same batch")
	}
	vb.pooled = true
	vecPuts.Add(1)
	vecBatchPool.Put(vb)
}

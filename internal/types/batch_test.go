package types

import (
	"reflect"
	"testing"
)

func batchTestRows() []Row {
	return []Row{
		{NewInt64(1), NewString("alpha"), Null},
		{NewInt64(2), NewString(""), NewFloat64(2.5)},
		{NewInt64(3), Null, NewFloat64(-1)},
	}
}

func TestBatchAppendAndViews(t *testing.T) {
	rows := batchTestRows()
	b := GetBatch(0)
	defer PutBatch(b)
	for _, r := range rows {
		b.AppendRow(r)
	}
	if b.Len() != len(rows) || b.Width() != 3 {
		t.Fatalf("len=%d width=%d", b.Len(), b.Width())
	}
	for i, r := range rows {
		if !reflect.DeepEqual(b.Row(i), r) {
			t.Errorf("row %d = %v, want %v", i, b.Row(i), r)
		}
	}
	// MoveRow + Truncate compacts like a filter.
	b.MoveRow(0, 2)
	b.Truncate(1)
	if b.Len() != 1 || !reflect.DeepEqual(b.Row(0), rows[2]) {
		t.Errorf("after compaction: len=%d row=%v", b.Len(), b.Row(0))
	}
	// Reset + AddRow reuses the arena and zeroes stale datums.
	b.Reset(2)
	r := b.AddRow()
	if !r[0].IsNull() || !r[1].IsNull() {
		t.Errorf("reused arena row not NULL-initialized: %v", r)
	}
}

func TestPutBatchTwicePanics(t *testing.T) {
	b := GetBatch(1)
	gets0, puts0 := PoolStats()
	PutBatch(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double PutBatch did not panic")
		}
		// The second Put counted nothing: gets-puts still balances.
		gets1, puts1 := PoolStats()
		if gets1-gets0 != 0 || puts1-puts0 != 1 {
			t.Fatalf("pool stats after double put: gets +%d, puts +%d", gets1-gets0, puts1-puts0)
		}
	}()
	PutBatch(b)
}

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	rows := batchTestRows()
	b := GetBatch(0)
	defer PutBatch(b)
	for _, r := range rows {
		b.AppendRow(r)
	}
	enc := EncodeBatch(nil, b)
	// Wire compatibility: EncodeBatch is exactly the concatenation of
	// EncodeRow frames, so row-oriented senders and batch receivers (and
	// vice versa) interoperate.
	var rowEnc []byte
	for _, r := range rows {
		rowEnc = EncodeRow(rowEnc, r)
	}
	if !reflect.DeepEqual(enc, rowEnc) {
		t.Fatal("EncodeBatch differs from concatenated EncodeRow frames")
	}
	out := GetBatch(0)
	defer PutBatch(out)
	n, err := DecodeBatch(enc, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	if out.Len() != len(rows) {
		t.Fatalf("decoded %d rows", out.Len())
	}
	for i, r := range rows {
		if !reflect.DeepEqual(out.Row(i), r) {
			t.Errorf("row %d = %v, want %v", i, out.Row(i), r)
		}
	}
}

func TestDecodeBatchRejectsCorruptInput(t *testing.T) {
	b := GetBatch(0)
	defer PutBatch(b)
	b.AppendRow(Row{NewInt64(7), NewString("x")})
	b.AppendRow(Row{NewInt64(8), NewString("y")})
	enc := EncodeBatch(nil, b)
	out := GetBatch(0)
	defer PutBatch(out)
	// Any truncation must error, never panic.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeBatch(enc[:cut], out); err == nil {
			// A cut exactly on a frame boundary is a legal shorter batch.
			if _, n, err2 := DecodeRow(enc); err2 == nil && cut%n != 0 {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	}
	// A width change mid-batch is corruption.
	mixed := EncodeRow(nil, Row{NewInt64(1)})
	mixed = EncodeRow(mixed, Row{NewInt64(1), NewInt64(2)})
	if _, err := DecodeBatch(mixed, out); err == nil {
		t.Error("width change mid-batch accepted")
	}
	// A hostile header claiming a huge column count must not allocate.
	if _, err := DecodeBatch([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, out); err == nil {
		t.Error("hostile row header accepted")
	}
}

func TestDecodeRowRejectsHostileHeader(t *testing.T) {
	// Header claims 2^28 columns with no bytes behind it.
	if _, _, err := DecodeRow([]byte{0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("hostile column count accepted")
	}
}

// benchRows builds the row set shared by the encode/decode benchmarks.
func benchRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{NewInt64(int64(i)), NewInt64(int64(i * 7)), NewFloat64(float64(i) * 0.5), NewDate(int32(10000 + i))}
	}
	return rows
}

func BenchmarkEncodeRow(b *testing.B) {
	rows := benchRows(DefaultBatchRows)
	b.Run("row", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			for _, r := range rows {
				buf = EncodeRow(buf, r)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		batch := GetBatch(0)
		defer PutBatch(batch)
		for _, r := range rows {
			batch.AppendRow(r)
		}
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = EncodeBatch(buf[:0], batch)
		}
	})
}

func BenchmarkDecodeRow(b *testing.B) {
	rows := benchRows(DefaultBatchRows)
	var enc []byte
	for _, r := range rows {
		enc = EncodeRow(enc, r)
	}
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pos := 0
			for pos < len(enc) {
				_, n, err := DecodeRow(enc[pos:])
				if err != nil {
					b.Fatal(err)
				}
				pos += n
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		batch := GetBatch(0)
		defer PutBatch(batch)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBatch(enc, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func FuzzDecodeDatum(f *testing.F) {
	for _, d := range []Datum{Null, NewBool(true), NewInt64(-12345), NewFloat64(3.25), NewDecimal(9999, 2), NewString("hello"), NewDate(12000)} {
		f.Add(EncodeDatum(nil, d))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the datum must survive a
		// re-encode/re-decode cycle (byte equality is too strong: the
		// varint decoder tolerates non-canonical encodings).
		d, n, err := DecodeDatum(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := EncodeDatum(nil, d)
		d2, _, err := DecodeDatum(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip changed datum: %v != %v", d, d2)
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	b := GetBatch(0)
	for _, r := range batchTestRows() {
		b.AppendRow(r)
	}
	f.Add(EncodeBatch(nil, b))
	PutBatch(b)
	f.Add(EncodeRow(nil, Row{NewInt64(1)}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		out := GetBatch(0)
		defer PutBatch(out)
		// Must never panic on arbitrary input.
		n, err := DecodeBatch(data, out)
		if err != nil {
			return
		}
		if n != len(data) {
			t.Fatalf("consumed %d of %d bytes without error", n, len(data))
		}
		// Whatever decoded must survive a re-encode/re-decode cycle.
		re := EncodeBatch(nil, out)
		out2 := GetBatch(0)
		defer PutBatch(out2)
		if _, err := DecodeBatch(re, out2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if out2.Len() != out.Len() {
			t.Fatalf("round trip changed row count: %d != %d", out2.Len(), out.Len())
		}
		for i := 0; i < out.Len(); i++ {
			if !reflect.DeepEqual(out.Row(i), out2.Row(i)) {
				t.Fatalf("round trip changed row %d", i)
			}
		}
	})
}

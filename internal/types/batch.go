package types

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"hawq/internal/obs"
)

// DefaultBatchRows is the row count batch producers aim for per batch:
// enough to amortize per-batch overheads (channel operations, interface
// calls, header decoding) without holding more than a few hundred KB of
// datums per pipeline stage.
const DefaultBatchRows = 1024

// Batch is a batch of fixed-width rows backed by one shared Datum arena.
// It is the unit of the executor's vectorized fast path: producers fill a
// batch a block at a time, consumers iterate its rows without allocating,
// and the arena is recycled through a sync.Pool (GetBatch/PutBatch) so
// the steady-state scan→filter→project→motion pipeline performs no
// per-row allocations.
//
// Ownership rules:
//
//   - Rows returned by Row are views into the arena. They are valid only
//     until the batch is next Reset, extended past its capacity, or
//     returned to the pool; retain a row across those events with
//     Row.Clone. Datums copied out of a row (by value) are always safe.
//   - A batch may be handed off (e.g. over a channel); the receiver then
//     owns it and is responsible for PutBatch.
type Batch struct {
	width int
	n     int
	arena []Datum
	// pooled marks a batch currently sitting in the pool; PutBatch uses
	// it to panic on a double return, which would otherwise hand the
	// same arena to two owners and corrupt rows at a distance.
	pooled bool
}

// Reset clears the batch to zero rows of the given width, retaining the
// arena's capacity for reuse.
func (b *Batch) Reset(width int) {
	b.width = width
	b.n = 0
	b.arena = b.arena[:0]
}

// Width returns the number of columns per row.
func (b *Batch) Width() int { return b.width }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Row returns row i as a view into the arena; see the ownership rules on
// Batch for its lifetime.
func (b *Batch) Row(i int) Row {
	if b.width == 0 {
		return Row{}
	}
	return Row(b.arena[i*b.width : (i+1)*b.width])
}

// AddRow appends one row initialized to NULL and returns it for the
// caller to fill. The returned view follows the Row lifetime rules.
func (b *Batch) AddRow() Row {
	b.n++
	if b.width == 0 {
		return Row{}
	}
	old := len(b.arena)
	if old+b.width <= cap(b.arena) {
		b.arena = b.arena[:old+b.width]
		row := b.arena[old:]
		for i := range row {
			row[i] = Datum{}
		}
		return Row(row)
	}
	for i := 0; i < b.width; i++ {
		b.arena = append(b.arena, Datum{})
	}
	return Row(b.arena[old:])
}

// Extend appends n rows initialized to NULL (used by columnar readers
// that fill the batch column by column).
func (b *Batch) Extend(n int) {
	for i := 0; i < n; i++ {
		b.AddRow()
	}
}

// AppendRow appends a copy of r. The first row appended to an empty
// zero-width batch fixes the batch width; afterwards every row must
// match it (a mismatch indicates a planner bug and panics).
func (b *Batch) AppendRow(r Row) {
	if b.n == 0 && b.width == 0 {
		b.width = len(r)
	}
	if len(r) != b.width {
		panic(fmt.Sprintf("types: appending %d-column row to %d-column batch", len(r), b.width))
	}
	copy(b.AddRow(), r)
}

// MoveRow copies row src over row dst (dst <= src), the primitive batch
// filters use to compact surviving rows in place.
func (b *Batch) MoveRow(dst, src int) {
	if b.width == 0 || dst == src {
		return
	}
	copy(b.arena[dst*b.width:(dst+1)*b.width], b.arena[src*b.width:(src+1)*b.width])
}

// Truncate shrinks the batch to its first n rows.
func (b *Batch) Truncate(n int) {
	b.n = n
	b.arena = b.arena[:n*b.width]
}

// batchPool recycles batches (and their arenas) across pipeline stages.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// batchGets and batchPuts count pool traffic; their difference is the
// number of batches currently checked out. The chaos harness asserts it
// returns to its baseline after every query, catching strand leaks on
// cancellation and error paths.
var batchGets, batchPuts atomic.Int64

// PoolStats reports cumulative GetBatch and PutBatch counts. gets-puts
// is the number of batches currently held by callers.
func PoolStats() (gets, puts int64) {
	return batchGets.Load(), batchPuts.Load()
}

// PoolInUse returns the number of batches currently checked out of the
// pool (gets − puts). It is registered as the types.batch_in_use gauge,
// and the chaos harness asserts it returns to its baseline after every
// step — a non-zero residue is a strand leak on a cancel or error path.
func PoolInUse() int64 {
	return batchGets.Load() - batchPuts.Load()
}

// init publishes the pool counters into the process-wide metrics
// registry, so SHOW metrics exposes batch-arena traffic and leaks.
func init() {
	obs.RegisterGauge("types.batch_gets", func() int64 { return batchGets.Load() })
	obs.RegisterGauge("types.batch_puts", func() int64 { return batchPuts.Load() })
	obs.RegisterGauge("types.batch_in_use", PoolInUse)
}

// GetBatch returns a pooled batch reset to the given width.
func GetBatch(width int) *Batch {
	batchGets.Add(1)
	b := batchPool.Get().(*Batch)
	b.pooled = false
	b.Reset(width)
	return b
}

// PutBatch returns a batch to the pool for reuse. The caller must not
// touch the batch (or any row view into it) afterwards; returning the
// same batch twice panics rather than silently aliasing its arena to
// two future owners.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	if b.pooled {
		panic("types: PutBatch called twice on the same batch")
	}
	b.pooled = true
	batchPuts.Add(1)
	batchPool.Put(b)
}

// EncodeBatch appends the wire encoding of every row in b to buf. The
// format is a plain concatenation of EncodeRow frames, so the result is
// indistinguishable from rows encoded one at a time — batch and row
// senders interoperate on the same motion stream.
func EncodeBatch(buf []byte, b *Batch) []byte {
	for i := 0; i < b.n; i++ {
		buf = EncodeRow(buf, b.Row(i))
	}
	return buf
}

// DecodeBatch decodes every row frame in buf into b, resetting b first.
// All frames must share one width (motion streams are homogeneous). It
// returns the number of bytes consumed and never panics on truncated or
// corrupt input.
func DecodeBatch(buf []byte, b *Batch) (int, error) {
	b.Reset(0)
	pos := 0
	for pos < len(buf) {
		n, c := binary.Uvarint(buf[pos:])
		if c <= 0 {
			return 0, fmt.Errorf("types: truncated row header")
		}
		if n > uint64(len(buf)-pos-c) {
			return 0, fmt.Errorf("types: row header claims %d columns, only %d bytes left", n, len(buf)-pos-c)
		}
		if b.n == 0 {
			b.Reset(int(n))
		} else if int(n) != b.width {
			return 0, fmt.Errorf("types: batch width changed from %d to %d", b.width, n)
		}
		pos += c
		row := b.AddRow()
		for j := 0; j < int(n); j++ {
			d, sz, err := DecodeDatum(buf[pos:])
			if err != nil {
				return 0, fmt.Errorf("row %d column %d: %w", b.n-1, j, err)
			}
			row[j] = d
			pos += sz
		}
	}
	return pos, nil
}

package types

import (
	"math/rand"
	"reflect"
	"testing"
)

// randDatum returns a pseudo-random datum spanning every kind the
// storage formats write, including NULLs.
func randDatum(rng *rand.Rand) Datum {
	switch rng.Intn(7) {
	case 0:
		return Null
	case 1:
		return NewInt64(rng.Int63n(1000) - 500)
	case 2:
		return Datum{K: KindInt32, I: int64(int32(rng.Int31n(100)))}
	case 3:
		return Datum{K: KindFloat64, F: rng.NormFloat64()}
	case 4:
		return Datum{K: KindDecimal, Scale: 2, I: rng.Int63n(100000)}
	case 5:
		return Datum{K: KindDate, I: int64(rng.Intn(3650))}
	default:
		return NewString(string(rune('a' + rng.Intn(26))))
	}
}

// vecVariants builds every encoding of the same logical column.
func vecVariants(vals []Datum) []Vector {
	flat := Vector{Enc: VecFlat, N: len(vals), Values: append([]Datum(nil), vals...)}
	var raw []byte
	for _, d := range vals {
		raw = EncodeDatum(raw, d)
	}
	rawVec := Vector{Enc: VecRaw, N: len(vals), Raw: raw}
	var rle Vector
	rle.Enc = VecRLE
	rle.N = len(vals)
	for i := 0; i < len(vals); i++ {
		if len(rle.Values) > 0 && vals[i] == rle.Values[len(rle.Values)-1] {
			rle.Runs[len(rle.Runs)-1]++
			continue
		}
		rle.Values = append(rle.Values, vals[i])
		rle.Runs = append(rle.Runs, 1)
	}
	var dict Vector
	dict.Enc = VecDict
	dict.N = len(vals)
	seen := map[Datum]int32{}
	for _, d := range vals {
		c, ok := seen[d]
		if !ok {
			c = int32(len(dict.Values))
			seen[d] = c
			dict.Values = append(dict.Values, d)
		}
		dict.Codes = append(dict.Codes, c)
	}
	return []Vector{flat, rawVec, rle, dict}
}

// TestVectorDecodeAllEncodings checks Decode yields the original values
// for every encoding of the same column.
func TestVectorDecodeAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]Datum, 257)
	for i := range vals {
		vals[i] = randDatum(rng)
	}
	for _, v := range vecVariants(vals) {
		got, err := v.Decode(nil)
		if err != nil {
			t.Fatalf("enc %d: %v", v.Enc, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("enc %d: decode mismatch", v.Enc)
		}
	}
}

// TestMaterializeHonorsSelection checks Materialize with and without a
// selection vector against a straightforward per-row reference, for
// every encoding.
func TestMaterializeHonorsSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vals := make([]Datum, 100)
	for i := range vals {
		vals[i] = randDatum(rng)
	}
	sels := [][]int32{nil, {}, {0}, {99}, {0, 1, 2, 97, 98, 99}, {13, 14, 15, 16, 50}}
	var everyThird []int32
	for i := int32(0); i < 100; i += 3 {
		everyThird = append(everyThird, i)
	}
	sels = append(sels, everyThird)
	for _, v := range vecVariants(vals) {
		for si, sel := range sels {
			vb := GetVecBatch(1)
			vb.Cols[0] = v
			vb.SetLen(v.N)
			vb.Sel = sel
			b := GetBatch(0)
			if err := vb.Materialize(b); err != nil {
				t.Fatalf("enc %d sel %d: %v", v.Enc, si, err)
			}
			want := len(vals)
			if sel != nil {
				want = len(sel)
			}
			if b.Len() != want {
				t.Fatalf("enc %d sel %d: got %d rows, want %d", v.Enc, si, b.Len(), want)
			}
			for oi := 0; oi < b.Len(); oi++ {
				ri := oi
				if sel != nil {
					ri = int(sel[oi])
				}
				if got := b.Row(oi)[0]; got != vals[ri] {
					t.Errorf("enc %d sel %d row %d: got %v want %v", v.Enc, si, oi, got, vals[ri])
				}
			}
			PutBatch(b)
			PutVecBatch(vb)
		}
	}
}

// TestSkipDatumMatchesDecode checks SkipDatum steps exactly as far as
// DecodeDatum for every kind.
func TestSkipDatumMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var buf []byte
	var sizes []int
	for i := 0; i < 500; i++ {
		before := len(buf)
		buf = EncodeDatum(buf, randDatum(rng))
		sizes = append(sizes, len(buf)-before)
	}
	pos := 0
	for i, want := range sizes {
		n, err := SkipDatum(buf[pos:])
		if err != nil {
			t.Fatalf("datum %d: %v", i, err)
		}
		if n != want {
			t.Fatalf("datum %d: skip %d bytes, decode consumed %d", i, n, want)
		}
		pos += n
	}
	if pos != len(buf) {
		t.Fatalf("skipped %d of %d bytes", pos, len(buf))
	}
}

// TestVecBatchPoolDoublePutPanics pins the double-return guard.
func TestVecBatchPoolDoublePutPanics(t *testing.T) {
	vb := GetVecBatch(1)
	PutVecBatch(vb)
	defer func() {
		if recover() == nil {
			t.Fatal("second PutVecBatch did not panic")
		}
	}()
	PutVecBatch(vb)
}

// TestVecPoolCountersBalance checks the gauge arithmetic.
func TestVecPoolCountersBalance(t *testing.T) {
	base := VecPoolInUse()
	vb := GetVecBatch(2)
	if got := VecPoolInUse(); got != base+1 {
		t.Fatalf("in_use after get = %d, want %d", got, base+1)
	}
	PutVecBatch(vb)
	if got := VecPoolInUse(); got != base {
		t.Fatalf("in_use after put = %d, want %d", got, base)
	}
}

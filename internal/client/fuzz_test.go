package client

import (
	"testing"

	"hawq/internal/types"
)

// The extended-protocol decoders face untrusted peers: arbitrary bytes
// must produce an error or a valid decode, never a panic. Round-trip
// seeds keep the corpus honest about the happy path too.

func FuzzDecodeParse(f *testing.F) {
	f.Add(encodeParse("stmt", "SELECT * FROM t WHERE id = $1"))
	f.Add(encodeParse("", ""))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, sql, err := decodeParse(data)
		if err == nil {
			// Decoded values survive a re-encode/decode cycle (the raw
			// bytes may differ: uvarints have non-canonical encodings).
			n2, s2, err2 := decodeParse(encodeParse(name, sql))
			if err2 != nil || n2 != name || s2 != sql {
				t.Fatalf("round trip mismatch: (%q, %q) -> (%q, %q, %v)", name, sql, n2, s2, err2)
			}
		}
	})
}

func FuzzDecodeBind(f *testing.F) {
	f.Add(encodeBind("", "stmt", []types.Datum{types.NewInt64(7), types.NewString("x")}))
	f.Add(encodeBind("p", "s", nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{5, 'a'})
	f.Add([]byte{0, 0, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		//hawqcheck:ignore errdrop
		decodeBind(data)
	})
}

func FuzzDecodeExecute(f *testing.F) {
	f.Add(encodeExecute(""))
	f.Add(encodeExecute("portal"))
	f.Add([]byte{})
	f.Add([]byte{200, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		portal, err := decodeExecute(data)
		if err == nil {
			p2, err2 := decodeExecute(encodeExecute(portal))
			if err2 != nil || p2 != portal {
				t.Fatalf("round trip mismatch: %q -> (%q, %v)", portal, p2, err2)
			}
		}
	})
}

func FuzzDecodeSchema(f *testing.F) {
	f.Add(encodeSchema(types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt64},
		types.Column{Name: "b", Kind: types.KindString},
	)))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		//hawqcheck:ignore errdrop
		decodeSchema(data)
	})
}

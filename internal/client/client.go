package client

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"hawq/internal/types"
)

// Conn is a client connection to a HAWQ server.
type Conn struct {
	c  net.Conn
	rw *bufio.ReadWriter
}

// Result is one statement's outcome on the client side.
type Result struct {
	Schema *types.Schema
	Rows   []types.Row
	Tag    string
}

// Connect dials the server and waits for ready.
func Connect(addr string) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	conn := &Conn{
		c:  c,
		rw: bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c)),
	}
	typ, _, err := readMsg(conn.rw)
	if err != nil || typ != MsgReady {
		c.Close()
		return nil, fmt.Errorf("client: bad greeting (%v)", err)
	}
	return conn, nil
}

// Query sends SQL (possibly several statements) and collects the
// results, one per statement.
func (c *Conn) Query(sql string) ([]*Result, error) {
	if err := writeMsg(c.rw, MsgQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.rw.Flush(); err != nil {
		return nil, err
	}
	var out []*Result
	cur := &Result{}
	for {
		typ, payload, err := readMsg(c.rw)
		if err != nil {
			return nil, err
		}
		switch typ {
		case MsgRowDesc:
			schema, err := decodeSchema(payload)
			if err != nil {
				return nil, err
			}
			cur.Schema = schema
		case MsgDataRow:
			row, _, err := types.DecodeRow(payload)
			if err != nil {
				return nil, err
			}
			cur.Rows = append(cur.Rows, row)
		case MsgComplete:
			cur.Tag = string(payload)
			out = append(out, cur)
			cur = &Result{}
		case MsgError:
			// Drain to ready, then surface the error.
			for {
				t2, _, err2 := readMsg(c.rw)
				if err2 != nil || t2 == MsgReady {
					break
				}
			}
			return out, fmt.Errorf("server: %s", payload)
		case MsgReady:
			return out, nil
		default:
			return nil, fmt.Errorf("client: unexpected message %q", typ)
		}
	}
}

// QueryOne runs SQL and returns the last statement's result.
func (c *Conn) QueryOne(sql string) (*Result, error) {
	res, err := c.Query(sql)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return &Result{}, nil
	}
	return res[len(res)-1], nil
}

// Close sends a terminate message (best effort) and closes the socket,
// returning the first error encountered.
func (c *Conn) Close() error {
	err := writeMsg(c.rw, MsgTerminate, nil)
	if ferr := c.rw.Flush(); err == nil {
		err = ferr
	}
	if cerr := c.c.Close(); err == nil {
		err = cerr
	}
	return err
}

package client

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"hawq/internal/types"
)

// Conn is a client connection to a HAWQ server.
type Conn struct {
	c    net.Conn
	rw   *bufio.ReadWriter
	addr string
	// key is the server-issued backend key identifying this session in
	// cancel requests.
	key uint64
}

// Result is one statement's outcome on the client side.
type Result struct {
	Schema *types.Schema
	Rows   []types.Row
	Tag    string
}

// Connect dials the server, records the backend key, and waits for
// ready.
func Connect(addr string) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	conn := &Conn{
		c:    c,
		rw:   bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c)),
		addr: addr,
	}
	for {
		typ, payload, err := readMsg(conn.rw)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: bad greeting (%v)", err)
		}
		switch typ {
		case MsgBackendKey:
			if len(payload) == 8 {
				conn.key = binary.BigEndian.Uint64(payload)
			}
		case MsgReady:
			return conn, nil
		default:
			c.Close()
			return nil, fmt.Errorf("client: unexpected greeting message %q", typ)
		}
	}
}

// Cancel asks the server to abort the statement this connection is
// currently executing. As in PostgreSQL, the request travels on a
// fresh connection carrying the backend key — the original connection
// is busy streaming the query — so it is safe to call from another
// goroutine while Query blocks. A no-op if nothing is running.
func (c *Conn) Cancel() error {
	cc, err := net.DialTimeout("tcp", c.addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("client: cancel: %w", err)
	}
	defer cc.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(cc), bufio.NewWriter(cc))
	// Consume the greeting (the cancel connection gets its own key).
	for {
		typ, _, err := readMsg(rw)
		if err != nil {
			return fmt.Errorf("client: cancel: %w", err)
		}
		if typ == MsgReady {
			break
		}
	}
	var keyBuf [8]byte
	binary.BigEndian.PutUint64(keyBuf[:], c.key)
	if err := writeMsg(rw, MsgCancel, keyBuf[:]); err != nil {
		return fmt.Errorf("client: cancel: %w", err)
	}
	return rw.Flush()
}

// Query sends SQL (possibly several statements) and collects the
// results, one per statement.
func (c *Conn) Query(sql string) ([]*Result, error) {
	if err := writeMsg(c.rw, MsgQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.rw.Flush(); err != nil {
		return nil, err
	}
	var out []*Result
	cur := &Result{}
	for {
		typ, payload, err := readMsg(c.rw)
		if err != nil {
			return nil, err
		}
		switch typ {
		case MsgRowDesc:
			schema, err := decodeSchema(payload)
			if err != nil {
				return nil, err
			}
			cur.Schema = schema
		case MsgDataRow:
			row, _, err := types.DecodeRow(payload)
			if err != nil {
				return nil, err
			}
			cur.Rows = append(cur.Rows, row)
		case MsgComplete:
			cur.Tag = string(payload)
			out = append(out, cur)
			cur = &Result{}
		case MsgError:
			// Drain to ready, then surface the error.
			for {
				t2, _, err2 := readMsg(c.rw)
				if err2 != nil || t2 == MsgReady {
					break
				}
			}
			return out, fmt.Errorf("server: %s", payload)
		case MsgReady:
			return out, nil
		default:
			return nil, fmt.Errorf("client: unexpected message %q", typ)
		}
	}
}

// readUnit collects one ready-terminated response unit, returning the
// result (when the unit carried one) or the server's error.
func (c *Conn) readUnit() (*Result, error) {
	cur := &Result{}
	var serverErr error
	for {
		typ, payload, err := readMsg(c.rw)
		if err != nil {
			return nil, err
		}
		switch typ {
		case MsgRowDesc:
			schema, err := decodeSchema(payload)
			if err != nil {
				return nil, err
			}
			cur.Schema = schema
		case MsgDataRow:
			row, _, err := types.DecodeRow(payload)
			if err != nil {
				return nil, err
			}
			cur.Rows = append(cur.Rows, row)
		case MsgComplete:
			cur.Tag = string(payload)
		case MsgParseOK, MsgBindOK:
			// Acknowledgements carry no data.
		case MsgError:
			serverErr = fmt.Errorf("server: %s", payload)
		case MsgReady:
			return cur, serverErr
		default:
			return nil, fmt.Errorf("client: unexpected message %q", typ)
		}
	}
}

// Prepare registers a named prepared statement via the extended
// protocol's Parse message. The SQL may use $1..$n placeholders.
func (c *Conn) Prepare(name, sql string) error {
	if err := writeMsg(c.rw, MsgParse, encodeParse(name, sql)); err != nil {
		return err
	}
	if err := c.rw.Flush(); err != nil {
		return err
	}
	_, err := c.readUnit()
	return err
}

// ExecPrepared runs a prepared statement with the given argument
// values, pipelining Bind and Execute in one round trip.
func (c *Conn) ExecPrepared(name string, args ...types.Datum) (*Result, error) {
	if err := writeMsg(c.rw, MsgBind, encodeBind("", name, args)); err != nil {
		return nil, err
	}
	if err := writeMsg(c.rw, MsgExecute, encodeExecute("")); err != nil {
		return nil, err
	}
	if err := c.rw.Flush(); err != nil {
		return nil, err
	}
	// Two units come back: the bind acknowledgement, then the execution.
	if _, err := c.readUnit(); err != nil {
		// Drain the execute unit before surfacing the bind error.
		//hawqcheck:ignore errdrop
		c.readUnit()
		return nil, err
	}
	return c.readUnit()
}

// Deallocate drops a prepared statement ("" drops all), via simple
// query.
func (c *Conn) Deallocate(name string) error {
	if name == "" {
		_, err := c.QueryOne("DEALLOCATE ALL")
		return err
	}
	_, err := c.QueryOne("DEALLOCATE " + name)
	return err
}

// Set changes a session setting (work_mem, resource_queue,
// statement_timeout, ...). The value travels single-quoted so sizes
// like "64kB" survive the round trip.
func (c *Conn) Set(name, value string) error {
	_, err := c.QueryOne(fmt.Sprintf("SET %s = '%s'", name, value))
	return err
}

// QueryOne runs SQL and returns the last statement's result.
func (c *Conn) QueryOne(sql string) (*Result, error) {
	res, err := c.Query(sql)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return &Result{}, nil
	}
	return res[len(res)-1], nil
}

// Close sends a terminate message (best effort) and closes the socket,
// returning the first error encountered.
func (c *Conn) Close() error {
	err := writeMsg(c.rw, MsgTerminate, nil)
	if ferr := c.rw.Flush(); err == nil {
		err = ferr
	}
	if cerr := c.c.Close(); err == nil {
		err = cerr
	}
	return err
}

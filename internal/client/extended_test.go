package client

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hawq/internal/types"
)

func TestExtendedProtocolPrepareBindExecute(t *testing.T) {
	srv := testServer(t)
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Query("CREATE TABLE kv (k INT8, v TEXT) DISTRIBUTED BY (k); INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Prepare("getv", "SELECT v FROM kv WHERE k = $1"); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[int64]string{1: "one", 2: "two", 3: "three"} {
		res, err := conn.ExecPrepared("getv", types.NewInt64(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != want {
			t.Fatalf("ExecPrepared(%d) = %+v, want %q", k, res.Rows, want)
		}
	}

	// Errors surface without wedging the connection.
	if err := conn.Prepare("getv", "SELECT 1"); err == nil {
		t.Fatal("duplicate Parse accepted")
	}
	if _, err := conn.ExecPrepared("nosuch"); err == nil {
		t.Fatal("unknown statement executed")
	}
	if _, err := conn.ExecPrepared("getv"); err == nil {
		t.Fatal("missing argument accepted")
	}
	res, err := conn.ExecPrepared("getv", types.NewInt64(2))
	if err != nil || res.Rows[0][0].Str() != "two" {
		t.Fatalf("connection unusable after errors: %v %+v", err, res)
	}

	// DEALLOCATE over simple query, then the statement is gone.
	if err := conn.Deallocate("getv"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ExecPrepared("getv", types.NewInt64(1)); err == nil {
		t.Fatal("deallocated statement executed")
	}
}

func TestExtendedProtocolConcurrentSessions(t *testing.T) {
	srv := testServer(t)
	setup, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Query("CREATE TABLE nums (n INT8) DISTRIBUTED BY (n); INSERT INTO nums VALUES (1), (2), (3), (4), (5), (6), (7), (8)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const sessions = 16
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := Connect(srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			if err := conn.Prepare("cnt", "SELECT count(*) FROM nums WHERE n <= $1"); err != nil {
				errCh <- err
				return
			}
			for i := 1; i <= 8; i++ {
				res, err := conn.ExecPrepared("cnt", types.NewInt64(int64(i)))
				if err != nil {
					errCh <- err
					return
				}
				if got := res.Rows[0][0].Int(); got != int64(i) {
					errCh <- fmt.Errorf("session %d: count(n<=%d) = %d", g, i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestMalformedFramesDoNotCrashServer throws hostile payloads at every
// extended-protocol message type over a raw socket: each must produce
// an error (or a disconnect), never a panic or a hang.
func TestMalformedFramesDoNotCrashServer(t *testing.T) {
	srv := testServer(t)
	hostile := [][2]interface{}{
		{byte(MsgParse), []byte{}},
		{byte(MsgParse), []byte{0xff, 0xff, 0xff}},
		{byte(MsgParse), []byte{200, 1, 2}}, // length prefix past the end
		{byte(MsgBind), []byte{}},
		{byte(MsgBind), []byte{0, 0}},             // empty names, no row
		{byte(MsgBind), []byte{5, 'a', 'b'}},      // truncated portal name
		{byte(MsgBind), []byte{0, 0, 0xff, 0xff}}, // garbage row
		{byte(MsgExecute), []byte{}},
		{byte(MsgExecute), []byte{9}},
		{byte(MsgExecute), []byte{1, 'p', 'x'}}, // trailing junk
		{byte(MsgCancel), []byte{1, 2, 3}},      // short key is ignored
		{byte('@'), []byte("junk")},             // unknown type tag
	}
	for i, h := range hostile {
		typ, payload := h[0].(byte), h[1].([]byte)
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		// Consume greeting.
		for {
			mt, _, err := readMsg(c)
			if err != nil {
				t.Fatalf("case %d: greeting: %v", i, err)
			}
			if mt == MsgReady {
				break
			}
		}
		if err := writeMsg(c, typ, payload); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		// The server must answer with an error-or-ack unit or hang up;
		// either way the read terminates.
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		for {
			mt, _, err := readMsg(c)
			if err != nil || mt == MsgReady {
				break
			}
		}
		c.Close()
	}
	// The server survived: a normal query still works.
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.QueryOne("SELECT 40 + 2")
	if err != nil || res.Rows[0][0].Int() != 42 {
		t.Fatalf("server unusable after hostile frames: %v %+v", err, res)
	}
}

// TestGracefulCloseDrainsIdleConnections verifies Close returns
// promptly with idle clients connected (their blocked reads are
// unblocked by the server) — the pre-drain implementation hung forever
// here.
func TestGracefulCloseDrainsIdleConnections(t *testing.T) {
	srv := testServer(t)
	var conns []*Conn
	for i := 0; i < 8; i++ {
		c, err := Connect(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return with idle connections open")
	}
	for _, c := range conns {
		c.Close()
	}
}

// TestGracefulCloseWaitsForInFlightStatement verifies a statement
// running when Close is called completes and delivers its result before
// the connection is torn down.
func TestGracefulCloseWaitsForInFlightStatement(t *testing.T) {
	srv := testServer(t)
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("CREATE TABLE g (n INT8) DISTRIBUTED BY (n); INSERT INTO g VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := conn.QueryOne("SELECT count(*) FROM g")
		resCh <- outcome{res, err}
	}()
	// Close concurrently with the query; the drain must let the
	// statement finish (it is fast) rather than killing it.
	closeCh := make(chan error, 1)
	go func() { closeCh <- srv.Close() }()
	if err := <-closeCh; err != nil {
		t.Fatal(err)
	}
	o := <-resCh
	// Either the query finished before the server noticed it (normal
	// drain) — then the result must be correct — or the connection was
	// already read-blocked and closed as idle before the query started.
	if o.err == nil && o.res.Rows[0][0].Int() != 3 {
		t.Fatalf("drained query returned %+v", o.res)
	}
	// New statements are refused after Close.
	if _, err := conn.QueryOne("SELECT 1"); err == nil {
		t.Fatal("statement accepted after Close")
	}
}

package client

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hawq/internal/engine"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	eng, err := engine.New(engine.Config{Segments: 2, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := NewServer(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestQueryOverWire(t *testing.T) {
	srv := testServer(t)
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := conn.Query("CREATE TABLE t (k INT8, v TEXT) DISTRIBUTED BY (k); INSERT INTO t VALUES (1, 'one'), (2, 'two')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Tag != "CREATE TABLE" || !strings.HasPrefix(res[1].Tag, "INSERT") {
		t.Fatalf("results = %+v", res)
	}
	out, err := conn.QueryOne("SELECT k, v FROM t ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 2 || len(out.Rows) != 2 || out.Rows[1][1].Str() != "two" {
		t.Fatalf("select = %+v", out)
	}
	if out.Tag != "SELECT 2" {
		t.Errorf("tag = %q", out.Tag)
	}
}

func TestErrorsKeepConnectionUsable(t *testing.T) {
	srv := testServer(t)
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("no error for missing table")
	}
	res, err := conn.QueryOne("SELECT 1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("recovery query = %v", res.Rows)
	}
}

func TestTransactionsPerConnection(t *testing.T) {
	srv := testServer(t)
	a, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.Query("CREATE TABLE t (k INT8) DISTRIBUTED BY (k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Query("BEGIN; INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := b.QueryOne("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("uncommitted insert visible across connections")
	}
	if _, err := a.Query("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _ = b.QueryOne("SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("committed insert invisible")
	}
}

// TestSessionSettingsOverWire: Set round-trips workload-manager
// settings, and they stay per-session — another connection keeps the
// defaults.
func TestSessionSettingsOverWire(t *testing.T) {
	srv := testServer(t)
	a, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Query("CREATE RESOURCE QUEUE wire WITH (active_statements = 2, memory_limit = '1MB')"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("work_mem", "64kB"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("resource_queue", "wire"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("resource_queue", "nosuch"); err == nil {
		t.Fatal("Set to unknown queue succeeded")
	}

	res, err := a.QueryOne("SHOW work_mem")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "64kB" {
		t.Fatalf("work_mem = %v", res.Rows[0])
	}
	res, err = a.QueryOne("SHOW resource_queue")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "wire" {
		t.Fatalf("resource_queue = %v", res.Rows[0])
	}
	// The settings are session-local.
	res, err = b.QueryOne("SHOW work_mem")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "0" {
		t.Fatalf("other session work_mem = %v", res.Rows[0])
	}
	res, err = b.QueryOne("SHOW resource_queue")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "none" {
		t.Fatalf("other session resource_queue = %v", res.Rows[0])
	}
}

// TestCancelOverWire exercises the full postgres-style cancel path: a
// second connection delivers the backend key, the server finds the
// session and aborts the in-flight statement, and the original
// connection surfaces the error and stays usable.
func TestCancelOverWire(t *testing.T) {
	srv := testServer(t)
	conn, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var sb strings.Builder
	sb.WriteString("CREATE TABLE big (k INT8, v INT8) DISTRIBUTED BY (k); INSERT INTO big VALUES ")
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i*7%101)
	}
	if _, err := conn.Query(sb.String()); err != nil {
		t.Fatal(err)
	}

	// A ~10^8-pair nested-loop cross join: slow enough that the cancel
	// always wins the race against completion.
	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Query(`SELECT count(*) FROM big a, big b, big c, big d
			WHERE a.v < b.v`)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := conn.Cancel(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "canceling statement") {
			t.Fatalf("err = %v, want canceling statement", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled query did not return")
	}

	// The connection survives the cancel.
	res, err := conn.QueryOne("SELECT count(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("count after cancel = %v", res.Rows)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := testServer(t)
	setup, err := Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if _, err := setup.Query("CREATE TABLE c (k INT8) DISTRIBUTED BY (k)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Connect(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for j := 0; j < 5; j++ {
				if _, err := conn.QueryOne("SELECT count(*) FROM c"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

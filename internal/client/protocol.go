// Package client implements a libpq-style wire protocol for HAWQ (§2.1:
// applications interact with the master through standard protocols;
// libpq is the one PostgreSQL and Greenplum use). The server side wraps
// an engine.Engine; the client side is a small Go driver. Message
// framing follows the PostgreSQL convention: a one-byte type tag and a
// 32-bit big-endian length, then the payload.
//
// Messages:
//
//	client → server:  'Q' simple query (SQL text)
//	                  'X' terminate
//	                  'F' cancel request (8-byte backend key; sent on a
//	                      separate connection, as in PostgreSQL)
//	server → client:  'K' backend key data (8-byte cancellation key),
//	                  'T' row description, 'D' data row,
//	                  'C' command complete (tag), 'E' error, 'Z' ready
package client

import (
	"encoding/binary"
	"fmt"
	"io"

	"hawq/internal/types"
)

// Message type tags.
const (
	MsgQuery      = 'Q'
	MsgTerminate  = 'X'
	MsgCancel     = 'F'
	MsgBackendKey = 'K'
	MsgRowDesc    = 'T'
	MsgDataRow    = 'D'
	MsgComplete   = 'C'
	MsgError      = 'E'
	MsgReady      = 'Z'
)

// maxMessage bounds a single protocol message.
const maxMessage = 64 << 20

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxMessage {
		return 0, nil, fmt.Errorf("client: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeSchema renders a row description payload.
func encodeSchema(s *types.Schema) []byte {
	buf := binary.AppendUvarint(nil, uint64(s.Len()))
	for _, c := range s.Columns {
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Kind), byte(c.Scale))
	}
	return buf
}

// decodeSchema reverses encodeSchema.
func decodeSchema(buf []byte) (*types.Schema, error) {
	n, consumed := binary.Uvarint(buf)
	if consumed <= 0 {
		return nil, fmt.Errorf("client: bad row description")
	}
	pos := consumed
	cols := make([]types.Column, n)
	for i := range cols {
		l, c := binary.Uvarint(buf[pos:])
		if c <= 0 || pos+c+int(l)+2 > len(buf) {
			return nil, fmt.Errorf("client: truncated row description")
		}
		pos += c
		cols[i].Name = string(buf[pos : pos+int(l)])
		pos += int(l)
		cols[i].Kind = types.Kind(buf[pos])
		cols[i].Scale = int8(buf[pos+1])
		pos += 2
	}
	return &types.Schema{Columns: cols}, nil
}

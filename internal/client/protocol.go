// Package client implements a libpq-style wire protocol for HAWQ (§2.1:
// applications interact with the master through standard protocols;
// libpq is the one PostgreSQL and Greenplum use). The server side wraps
// an engine.Engine; the client side is a small Go driver. Message
// framing follows the PostgreSQL convention: a one-byte type tag and a
// 32-bit big-endian length, then the payload.
//
// Messages:
//
//	client → server:  'Q' simple query (SQL text)
//	                  'P' parse (prepare a named statement from SQL)
//	                  'B' bind (create a portal: named statement + args)
//	                  'E' execute (run a portal)
//	                  'X' terminate
//	                  'F' cancel request (8-byte backend key; sent on a
//	                      separate connection, as in PostgreSQL)
//	server → client:  'K' backend key data (8-byte cancellation key),
//	                  'T' row description, 'D' data row,
//	                  'C' command complete (tag), '1' parse complete,
//	                  '2' bind complete, 'E' error, 'Z' ready
//
// ('E' appears in both directions with different meanings, as a type
// tag is only interpreted in the direction it travels.) Every client →
// server message is answered by a unit of responses terminated by
// ready, so the extended-protocol messages may be pipelined.
package client

import (
	"encoding/binary"
	"fmt"
	"io"

	"hawq/internal/types"
)

// Message type tags.
const (
	MsgQuery      = 'Q'
	MsgParse      = 'P'
	MsgBind       = 'B'
	MsgExecute    = 'E'
	MsgTerminate  = 'X'
	MsgCancel     = 'F'
	MsgBackendKey = 'K'
	MsgRowDesc    = 'T'
	MsgDataRow    = 'D'
	MsgComplete   = 'C'
	MsgParseOK    = '1'
	MsgBindOK     = '2'
	MsgError      = 'E'
	MsgReady      = 'Z'
)

// maxMessage bounds a single protocol message.
const maxMessage = 64 << 20

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxMessage {
		return 0, nil, fmt.Errorf("client: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString reads a uvarint-length-prefixed string, returning the
// bytes consumed. It never reads past the buffer: malformed input is an
// error, not a panic (these decoders face untrusted peers).
func readString(buf []byte) (string, int, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || l > uint64(len(buf)-n) {
		return "", 0, fmt.Errorf("client: truncated string field")
	}
	return string(buf[n : n+int(l)]), n + int(l), nil
}

// encodeParse renders a Parse payload: statement name, then SQL text.
func encodeParse(name, sql string) []byte {
	return append(appendString(nil, name), sql...)
}

// decodeParse reverses encodeParse.
func decodeParse(buf []byte) (name, sql string, err error) {
	name, n, err := readString(buf)
	if err != nil {
		return "", "", fmt.Errorf("client: bad parse message: %w", err)
	}
	return name, string(buf[n:]), nil
}

// encodeBind renders a Bind payload: portal name, statement name, then
// the argument values as an encoded row.
func encodeBind(portal, stmt string, args []types.Datum) []byte {
	buf := appendString(nil, portal)
	buf = appendString(buf, stmt)
	return types.EncodeRow(buf, types.Row(args))
}

// decodeBind reverses encodeBind.
func decodeBind(buf []byte) (portal, stmt string, args types.Row, err error) {
	portal, n, err := readString(buf)
	if err != nil {
		return "", "", nil, fmt.Errorf("client: bad bind message: %w", err)
	}
	stmt, m, err := readString(buf[n:])
	if err != nil {
		return "", "", nil, fmt.Errorf("client: bad bind message: %w", err)
	}
	args, _, err = types.DecodeRow(buf[n+m:])
	if err != nil {
		return "", "", nil, fmt.Errorf("client: bad bind message: %w", err)
	}
	return portal, stmt, args, nil
}

// encodeExecute renders an Execute payload: the portal name.
func encodeExecute(portal string) []byte {
	return appendString(nil, portal)
}

// decodeExecute reverses encodeExecute.
func decodeExecute(buf []byte) (string, error) {
	portal, n, err := readString(buf)
	if err != nil || n != len(buf) {
		return "", fmt.Errorf("client: bad execute message")
	}
	return portal, nil
}

// encodeSchema renders a row description payload.
func encodeSchema(s *types.Schema) []byte {
	buf := binary.AppendUvarint(nil, uint64(s.Len()))
	for _, c := range s.Columns {
		buf = binary.AppendUvarint(buf, uint64(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Kind), byte(c.Scale))
	}
	return buf
}

// decodeSchema reverses encodeSchema.
func decodeSchema(buf []byte) (*types.Schema, error) {
	n, consumed := binary.Uvarint(buf)
	if consumed <= 0 {
		return nil, fmt.Errorf("client: bad row description")
	}
	pos := consumed
	cols := make([]types.Column, n)
	for i := range cols {
		l, c := binary.Uvarint(buf[pos:])
		if c <= 0 || pos+c+int(l)+2 > len(buf) {
			return nil, fmt.Errorf("client: truncated row description")
		}
		pos += c
		cols[i].Name = string(buf[pos : pos+int(l)])
		pos += int(l)
		cols[i].Kind = types.Kind(buf[pos])
		cols[i].Scale = int8(buf[pos+1])
		pos += 2
	}
	return &types.Schema{Columns: cols}, nil
}

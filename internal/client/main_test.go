package client

import (
	"testing"

	"hawq/internal/testutil"
)

// TestMain fails the suite if the wire-protocol server leaks accept or
// per-connection goroutines past Close.
func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }

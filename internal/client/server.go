package client

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"hawq/internal/engine"
	"hawq/internal/types"
)

// Server exposes an engine over the wire protocol. Each connection gets
// its own session (and therefore its own transaction state), as with the
// postmaster forking a QD per connection (§2.4).
type Server struct {
	eng *engine.Engine
	ln  net.Listener
	wg  sync.WaitGroup

	// sessions maps backend keys to live sessions so a cancel request
	// arriving on a separate connection (the session's own connection
	// is busy executing the query) can find its target.
	smu      sync.Mutex
	sessions map[uint64]*engine.Session
	nextKey  atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// NewServer starts listening on addr ("127.0.0.1:0" for an ephemeral
// port).
func NewServer(eng *engine.Engine, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	s := &Server{eng: eng, ln: ln, sessions: make(map[uint64]*engine.Session)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve runs one connection: a QD session loop. A failed write means
// the peer is gone, so the connection is torn down. The session is
// announced with a backend key; a cancel request naming that key may
// arrive on any other connection (this one is busy while a query runs)
// and aborts the in-flight statement.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	sess := s.eng.NewSession()
	key := s.nextKey.Add(1)
	s.smu.Lock()
	s.sessions[key] = sess
	s.smu.Unlock()
	defer func() {
		s.smu.Lock()
		delete(s.sessions, key)
		s.smu.Unlock()
	}()
	var keyBuf [8]byte
	binary.BigEndian.PutUint64(keyBuf[:], key)
	if err := writeMsg(conn, MsgBackendKey, keyBuf[:]); err != nil {
		return
	}
	if err := writeMsg(conn, MsgReady, nil); err != nil {
		return
	}
	for {
		typ, payload, err := readMsg(conn)
		if err != nil {
			return
		}
		switch typ {
		case MsgTerminate:
			return
		case MsgQuery:
			if err := s.handleQuery(conn, sess, string(payload)); err != nil {
				return
			}
		case MsgCancel:
			// Cancel connections do their work and hang up.
			if len(payload) == 8 {
				s.cancelSession(binary.BigEndian.Uint64(payload))
			}
			return
		default:
			if err := writeMsg(conn, MsgError, []byte(fmt.Sprintf("unexpected message %q", typ))); err != nil {
				return
			}
			if err := writeMsg(conn, MsgReady, nil); err != nil {
				return
			}
		}
	}
}

// cancelSession aborts the in-flight statement of the session holding
// the given backend key, if any. Unknown keys are ignored (the session
// may have disconnected already).
func (s *Server) cancelSession(key uint64) {
	s.smu.Lock()
	sess := s.sessions[key]
	s.smu.Unlock()
	if sess != nil {
		sess.Cancel()
	}
}

// handleQuery executes one query and streams its results. The returned
// error is non-nil only for wire failures; query errors go to the peer
// as MsgError.
func (s *Server) handleQuery(conn net.Conn, sess *engine.Session, sql string) error {
	results, err := sess.Execute(sql)
	if err != nil {
		if werr := writeMsg(conn, MsgError, []byte(err.Error())); werr != nil {
			return werr
		}
		return writeMsg(conn, MsgReady, nil)
	}
	for _, res := range results {
		if res.Schema != nil {
			if err := writeMsg(conn, MsgRowDesc, encodeSchema(res.Schema)); err != nil {
				return err
			}
			var buf []byte
			for _, row := range res.Rows {
				buf = types.EncodeRow(buf[:0], row)
				if err := writeMsg(conn, MsgDataRow, buf); err != nil {
					return err
				}
			}
		}
		if err := writeMsg(conn, MsgComplete, []byte(res.Tag)); err != nil {
			return err
		}
	}
	return writeMsg(conn, MsgReady, nil)
}

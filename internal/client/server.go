package client

import (
	"fmt"
	"net"
	"sync"

	"hawq/internal/engine"
	"hawq/internal/types"
)

// Server exposes an engine over the wire protocol. Each connection gets
// its own session (and therefore its own transaction state), as with the
// postmaster forking a QD per connection (§2.4).
type Server struct {
	eng *engine.Engine
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewServer starts listening on addr ("127.0.0.1:0" for an ephemeral
// port).
func NewServer(eng *engine.Engine, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	s := &Server{eng: eng, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve runs one connection: a QD session loop.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	sess := s.eng.NewSession()
	writeMsg(conn, MsgReady, nil)
	for {
		typ, payload, err := readMsg(conn)
		if err != nil {
			return
		}
		switch typ {
		case MsgTerminate:
			return
		case MsgQuery:
			s.handleQuery(conn, sess, string(payload))
		default:
			writeMsg(conn, MsgError, []byte(fmt.Sprintf("unexpected message %q", typ)))
			writeMsg(conn, MsgReady, nil)
		}
	}
}

func (s *Server) handleQuery(conn net.Conn, sess *engine.Session, sql string) {
	results, err := sess.Execute(sql)
	if err != nil {
		writeMsg(conn, MsgError, []byte(err.Error()))
		writeMsg(conn, MsgReady, nil)
		return
	}
	for _, res := range results {
		if res.Schema != nil {
			writeMsg(conn, MsgRowDesc, encodeSchema(res.Schema))
			var buf []byte
			for _, row := range res.Rows {
				buf = types.EncodeRow(buf[:0], row)
				writeMsg(conn, MsgDataRow, buf)
			}
		}
		writeMsg(conn, MsgComplete, []byte(res.Tag))
	}
	writeMsg(conn, MsgReady, nil)
}

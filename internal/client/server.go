package client

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hawq/internal/engine"
	"hawq/internal/types"
)

// defaultDrainTimeout bounds how long Close waits for busy connections
// to finish their in-flight statement before canceling them.
const defaultDrainTimeout = 5 * time.Second

// Server exposes an engine over the wire protocol. Each connection gets
// its own session (and therefore its own transaction state), as with the
// postmaster forking a QD per connection (§2.4).
type Server struct {
	eng *engine.Engine
	ln  net.Listener
	wg  sync.WaitGroup

	// conns maps backend keys to live connections, for cancel requests
	// arriving on a separate connection and for shutdown draining.
	smu     sync.Mutex
	conns   map[uint64]*connState
	nextKey atomic.Uint64

	mu     sync.Mutex
	closed bool

	// drain is how long Close waits for in-flight statements.
	drain time.Duration
}

// connState tracks one connection's lifecycle for graceful shutdown:
// busy marks an executing statement unit, stop tells the serve loop to
// exit once the current unit (if any) completes.
type connState struct {
	conn net.Conn
	sess *engine.Session
	mu   sync.Mutex
	busy bool
	stop bool
}

// beginUnit marks the connection busy; false means the server is
// draining and no new statement may start.
func (cs *connState) beginUnit() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.stop {
		return false
	}
	cs.busy = true
	return true
}

func (cs *connState) endUnit() {
	cs.mu.Lock()
	cs.busy = false
	cs.mu.Unlock()
}

func (cs *connState) stopping() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.stop
}

// NewServer starts listening on addr ("127.0.0.1:0" for an ephemeral
// port).
func NewServer(eng *engine.Engine, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	s := &Server{eng: eng, ln: ln, conns: make(map[uint64]*connState), drain: defaultDrainTimeout}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetDrainTimeout adjusts how long Close waits for in-flight statements
// (tests; callers must set it before Close).
func (s *Server) SetDrainTimeout(d time.Duration) { s.drain = d }

// Close stops the server gracefully: no new connections or statements
// are accepted, idle connections close immediately, and busy ones get
// until the drain deadline to finish their in-flight statement — after
// which they are canceled and the sockets force-closed. Close returns
// only when every connection goroutine has exited, so a clean return
// means no leaks.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	// Mark every connection stopping under the lock, but close sockets
	// outside it: a Close can block, and serve goroutines need s.smu to
	// deregister.
	var idle []net.Conn
	s.smu.Lock()
	for _, cs := range s.conns {
		cs.mu.Lock()
		cs.stop = true
		busy := cs.busy
		cs.mu.Unlock()
		if !busy {
			idle = append(idle, cs.conn)
		}
	}
	s.smu.Unlock()
	for _, c := range idle {
		// Idle: unblock the pending read now.
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := s.eng.Cluster().Clock().NewTimer(s.drain)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C():
		// Drain deadline passed: abort whatever is still running.
		var stuck []*connState
		s.smu.Lock()
		for _, cs := range s.conns {
			stuck = append(stuck, cs)
		}
		s.smu.Unlock()
		for _, cs := range stuck {
			cs.sess.Cancel()
			cs.conn.Close()
		}
		<-done
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve runs one connection: a QD session loop. A failed write means
// the peer is gone, so the connection is torn down. The session is
// announced with a backend key; a cancel request naming that key may
// arrive on any other connection (this one is busy while a query runs)
// and aborts the in-flight statement.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	cs := &connState{conn: conn, sess: s.eng.NewSession()}
	key := s.nextKey.Add(1)
	s.smu.Lock()
	s.conns[key] = cs
	s.smu.Unlock()
	defer func() {
		s.smu.Lock()
		delete(s.conns, key)
		s.smu.Unlock()
	}()
	// A connection accepted in the instant the server began closing
	// must drain like the rest.
	s.mu.Lock()
	if s.closed {
		cs.stop = true
	}
	s.mu.Unlock()
	if cs.stopping() {
		return
	}
	var keyBuf [8]byte
	binary.BigEndian.PutUint64(keyBuf[:], key)
	if err := writeMsg(conn, MsgBackendKey, keyBuf[:]); err != nil {
		return
	}
	if err := writeMsg(conn, MsgReady, nil); err != nil {
		return
	}
	// portals are the connection's bound statements (extended protocol);
	// only the serve goroutine touches them.
	portals := map[string]portalState{}
	for {
		typ, payload, err := readMsg(conn)
		if err != nil {
			return
		}
		if !cs.beginUnit() {
			return
		}
		switch typ {
		case MsgTerminate:
			cs.endUnit()
			return
		case MsgQuery:
			err = s.handleQuery(conn, cs.sess, string(payload))
		case MsgParse:
			err = s.handleParse(conn, cs.sess, payload)
		case MsgBind:
			err = s.handleBind(conn, portals, payload)
		case MsgExecute:
			err = s.handleExecute(conn, cs.sess, portals, payload)
		case MsgCancel:
			// Cancel connections do their work and hang up.
			if len(payload) == 8 {
				s.cancelSession(binary.BigEndian.Uint64(payload))
			}
			cs.endUnit()
			return
		default:
			if err = writeMsg(conn, MsgError, []byte(fmt.Sprintf("unexpected message %q", typ))); err == nil {
				err = writeMsg(conn, MsgReady, nil)
			}
		}
		cs.endUnit()
		if err != nil || cs.stopping() {
			return
		}
	}
}

// portalState is one bound portal: a prepared statement name plus the
// argument values to run it with.
type portalState struct {
	stmt string
	args types.Row
}

// cancelSession aborts the in-flight statement of the session holding
// the given backend key, if any. Unknown keys are ignored (the session
// may have disconnected already).
func (s *Server) cancelSession(key uint64) {
	s.smu.Lock()
	cs := s.conns[key]
	s.smu.Unlock()
	if cs != nil {
		cs.sess.Cancel()
	}
}

// respondError sends an error unit (error + ready).
func respondError(conn net.Conn, err error) error {
	if werr := writeMsg(conn, MsgError, []byte(err.Error())); werr != nil {
		return werr
	}
	return writeMsg(conn, MsgReady, nil)
}

// handleQuery executes one query and streams its results. The returned
// error is non-nil only for wire failures; query errors go to the peer
// as MsgError.
func (s *Server) handleQuery(conn net.Conn, sess *engine.Session, sql string) error {
	results, err := sess.Execute(sql)
	if err != nil {
		return respondError(conn, err)
	}
	for _, res := range results {
		if err := writeResult(conn, res); err != nil {
			return err
		}
	}
	return writeMsg(conn, MsgReady, nil)
}

// handleParse registers a prepared statement in the connection's
// session.
func (s *Server) handleParse(conn net.Conn, sess *engine.Session, payload []byte) error {
	name, sql, err := decodeParse(payload)
	if err == nil {
		err = sess.Prepare(name, sql)
	}
	if err != nil {
		return respondError(conn, err)
	}
	if err := writeMsg(conn, MsgParseOK, nil); err != nil {
		return err
	}
	return writeMsg(conn, MsgReady, nil)
}

// handleBind creates (or replaces) a portal binding argument values to
// a prepared statement. Validation of the statement name and argument
// count happens at execute time, where the engine resolves the portal.
func (s *Server) handleBind(conn net.Conn, portals map[string]portalState, payload []byte) error {
	portal, stmt, args, err := decodeBind(payload)
	if err != nil {
		return respondError(conn, err)
	}
	portals[portal] = portalState{stmt: stmt, args: args}
	if err := writeMsg(conn, MsgBindOK, nil); err != nil {
		return err
	}
	return writeMsg(conn, MsgReady, nil)
}

// handleExecute runs a bound portal and streams its result.
func (s *Server) handleExecute(conn net.Conn, sess *engine.Session, portals map[string]portalState, payload []byte) error {
	portal, err := decodeExecute(payload)
	if err != nil {
		return respondError(conn, err)
	}
	ps, ok := portals[portal]
	if !ok {
		return respondError(conn, fmt.Errorf("portal %q does not exist", portal))
	}
	res, err := sess.ExecutePrepared(ps.stmt, ps.args...)
	if err != nil {
		return respondError(conn, err)
	}
	if err := writeResult(conn, res); err != nil {
		return err
	}
	return writeMsg(conn, MsgReady, nil)
}

// writeResult streams one statement result: row description and rows
// when present, then the command tag.
func writeResult(conn net.Conn, res *engine.Result) error {
	if res.Schema != nil {
		if err := writeMsg(conn, MsgRowDesc, encodeSchema(res.Schema)); err != nil {
			return err
		}
		var buf []byte
		for _, row := range res.Rows {
			buf = types.EncodeRow(buf[:0], row)
			if err := writeMsg(conn, MsgDataRow, buf); err != nil {
				return err
			}
		}
	}
	return writeMsg(conn, MsgComplete, []byte(res.Tag))
}

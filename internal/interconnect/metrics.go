package interconnect

import "hawq/internal/obs"

// Process-wide interconnect counters (obs registry, SHOW metrics).
// Resolved once at init so the packet hot paths pay a single atomic add
// per event, never a registry lookup. Sent/dropped are counted at the
// transmit point (a dropped packet is one loss-injection casualty, not
// also a send); received counts only packets that decoded cleanly.
var (
	udpPacketsSent   = obs.GetCounter("interconnect.udp_packets_sent")
	udpBytesSent     = obs.GetCounter("interconnect.udp_bytes_sent")
	udpPacketsRecv   = obs.GetCounter("interconnect.udp_packets_recv")
	udpBytesRecv     = obs.GetCounter("interconnect.udp_bytes_recv")
	udpPacketsDropped = obs.GetCounter("interconnect.udp_packets_dropped")
	udpRetransmits   = obs.GetCounter("interconnect.udp_retransmits")
	tcpMsgsSent      = obs.GetCounter("interconnect.tcp_msgs_sent")
	tcpBytesSent     = obs.GetCounter("interconnect.tcp_bytes_sent")
	tcpMsgsRecv      = obs.GetCounter("interconnect.tcp_msgs_recv")
	tcpBytesRecv     = obs.GetCounter("interconnect.tcp_bytes_recv")
)

package interconnect

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hawq/internal/clock"
)

// UDPConfig tunes the UDP interconnect.
type UDPConfig struct {
	// RecvWindow is the per-sender receive queue capacity in packets.
	RecvWindow int
	// MaxPayload is the largest Send payload in bytes (default 8 KiB:
	// one datagram per payload, comfortably under typical MTU+jumbo
	// limits without IP fragmentation). The executor's motion operators
	// must keep their accumulation target (executor.Context.MotionPayload)
	// at or below this, with headroom for the row that straddles the
	// flush threshold — Send fails outright on oversized payloads.
	MaxPayload int
	// LossRate injects random packet loss in [0,1) for testing the
	// recovery machinery. Applies to every outgoing packet. Chaos runs
	// adjust it at runtime through UDPNode.SetLossRate.
	LossRate float64
	// Seed seeds the loss-injection RNG.
	Seed int64
	// DrainTimeout bounds how long a send stream's Close waits for the
	// EOS acknowledgement before giving up with ErrTimeout. Default
	// 10s. Chaos runs lower it so a stalled peer converts to a clean
	// error within a bounded number of sim-clock ticks.
	DrainTimeout time.Duration
	// Clock paces retransmission timers and timeouts; nil means the
	// wall clock. Simulations inject clock.Sim for deterministic
	// replay.
	Clock clock.Clock
}

func (c *UDPConfig) fill() {
	if c.RecvWindow <= 0 {
		c.RecvWindow = 64
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 8 * 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	c.Clock = clock.Default(c.Clock)
}

// AddrBook maps node IDs to their interconnect addresses.
type AddrBook struct {
	mu  sync.RWMutex
	udp map[SegID]*net.UDPAddr
	tcp map[SegID]string
}

// NewAddrBook creates an empty address book.
func NewAddrBook() *AddrBook {
	return &AddrBook{udp: map[SegID]*net.UDPAddr{}, tcp: map[SegID]string{}}
}

// SetUDP registers a node's UDP address.
func (b *AddrBook) SetUDP(seg SegID, addr *net.UDPAddr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.udp[seg] = addr
}

// UDP resolves a node's UDP address.
func (b *AddrBook) UDP(seg SegID) (*net.UDPAddr, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.udp[seg]
	return a, ok
}

// SetTCP registers a node's TCP listen address.
func (b *AddrBook) SetTCP(seg SegID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tcp[seg] = addr
}

// TCP resolves a node's TCP address.
func (b *AddrBook) TCP(seg SegID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	a, ok := b.tcp[seg]
	return a, ok
}

// Retransmission timing bounds. Loopback RTTs are microseconds; the
// bounds keep the simulation snappy while still exercising backoff.
const (
	rtoInit = 20 * time.Millisecond
	rtoMin  = 5 * time.Millisecond
	rtoMax  = 500 * time.Millisecond
	// queryAfter is how long a sender waits with an empty unacked queue
	// and no capacity before sending a status query (§4.5).
	queryAfter = 50 * time.Millisecond
)

// UDPNode is one endpoint of the UDP interconnect: a single UDP socket
// multiplexing every stream of this node, a background receive goroutine
// (emptying the kernel buffer quickly, §4.2), and a retransmit timer.
type UDPNode struct {
	seg  SegID
	conn *net.UDPConn
	book *AddrBook
	cfg  UDPConfig
	clk  clock.Clock

	mu       sync.Mutex
	sends    map[StreamID]*udpSend
	recvs    map[motionKey]*udpRecv
	ended    map[motionKey]time.Time // closed receivers; answer stray data with STOP
	canceled map[uint64]time.Time    // recently canceled queries; late-opened streams are born canceled
	rng      *rand.Rand
	lossRate float64
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewUDPNode opens a UDP endpoint on 127.0.0.1 and registers it in the
// address book.
func NewUDPNode(seg SegID, book *AddrBook, cfg UDPConfig) (*UDPNode, error) {
	cfg.fill()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("interconnect: %w", err)
	}
	// Large kernel buffers reduce artificial loss under fan-in.
	conn.SetReadBuffer(4 << 20)
	conn.SetWriteBuffer(4 << 20)
	n := &UDPNode{
		seg:      seg,
		conn:     conn,
		book:     book,
		cfg:      cfg,
		clk:      cfg.Clock,
		sends:    map[StreamID]*udpSend{},
		recvs:    map[motionKey]*udpRecv{},
		ended:    map[motionKey]time.Time{},
		canceled: map[uint64]time.Time{},
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(seg))),
		lossRate: cfg.LossRate,
		done:     make(chan struct{}),
	}
	book.SetUDP(seg, conn.LocalAddr().(*net.UDPAddr))
	n.wg.Add(2)
	go n.recvLoop()
	go n.timerLoop()
	return n, nil
}

// Seg implements Node.
func (n *UDPNode) Seg() SegID { return n.seg }

// Close implements Node.
func (n *UDPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	sends := make([]*udpSend, 0, len(n.sends))
	for _, s := range n.sends {
		sends = append(sends, s)
	}
	recvs := make([]*udpRecv, 0, len(n.recvs))
	for _, r := range n.recvs {
		recvs = append(recvs, r)
	}
	n.mu.Unlock()
	for _, s := range sends {
		s.shutdown()
	}
	for _, r := range recvs {
		r.Close()
	}
	n.conn.Close()
	n.wg.Wait()
	return nil
}

// SetLossRate changes the injected packet-loss probability at runtime.
// The chaos scheduler uses it to model loss bursts and stalled peers
// (rate 1 silences the node entirely) without rebuilding the cluster.
func (n *UDPNode) SetLossRate(rate float64) {
	n.mu.Lock()
	n.lossRate = rate
	n.mu.Unlock()
}

// transmit writes one packet, subject to injected loss.
func (n *UDPNode) transmit(raddr *net.UDPAddr, buf []byte) {
	n.mu.Lock()
	drop := n.lossRate > 0 && n.rng.Float64() < n.lossRate
	n.mu.Unlock()
	if drop {
		udpPacketsDropped.Inc()
		return
	}
	udpPacketsSent.Inc()
	udpBytesSent.Add(int64(len(buf)))
	n.conn.WriteToUDP(buf, raddr)
}

func (n *UDPNode) recvLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, raddr, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		h, payload, err := decodePacket(buf[:sz])
		if err != nil {
			continue
		}
		udpPacketsRecv.Inc()
		udpBytesRecv.Add(int64(sz))
		if len(payload) > 0 {
			// buf is reused by the next read; deliveries must own their
			// bytes.
			payload = append([]byte(nil), payload...)
		}
		n.dispatch(h, payload, raddr)
	}
}

func (n *UDPNode) dispatch(h header, payload []byte, raddr *net.UDPAddr) {
	sid := StreamID{Query: h.Query, Motion: h.Motion, Sender: h.Sender, Receiver: h.Receiver}
	switch h.Type {
	case ptData, ptEOS, ptQuery:
		key := motionKey{Query: h.Query, Motion: h.Motion, Receiver: h.Receiver}
		n.mu.Lock()
		r := n.recvs[key]
		_, endedRecently := n.ended[key]
		n.mu.Unlock()
		if r == nil {
			if endedRecently {
				// Straggling sender for a finished stream: stop it.
				n.transmit(raddr, encodePacket(header{
					Type: ptStop, Query: h.Query, Motion: h.Motion,
					Sender: h.Sender, Receiver: h.Receiver,
				}, nil))
			}
			// Otherwise the receiver has not set up yet; drop and let
			// the sender retransmit.
			return
		}
		r.handlePacket(h, payload, raddr)
	case ptAck, ptDup, ptOOO, ptStop:
		n.mu.Lock()
		s := n.sends[sid]
		n.mu.Unlock()
		if s == nil {
			return
		}
		switch h.Type {
		case ptAck, ptDup:
			s.handleAck(h)
		case ptOOO:
			s.handleOOO(h, payload)
		case ptStop:
			s.handleStop()
		}
	}
}

// timerLoop drives retransmission, sender status queries and waiter
// wakeups. It scans every send stream's unacked queue — the expiration
// ring of §4.2.
func (n *UDPNode) timerLoop() {
	defer n.wg.Done()
	t := n.clk.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C():
		}
		n.mu.Lock()
		sends := make([]*udpSend, 0, len(n.sends))
		for _, s := range n.sends {
			sends = append(sends, s)
		}
		// Expire old tombstones of finished receivers.
		now := n.clk.Now()
		for k, at := range n.ended {
			if now.Sub(at) > time.Minute {
				delete(n.ended, k)
			}
		}
		for q, at := range n.canceled {
			if now.Sub(at) > time.Minute {
				delete(n.canceled, q)
			}
		}
		n.mu.Unlock()
		for _, s := range sends {
			s.tick(now)
		}
	}
}

// OpenSend implements Node.
func (n *UDPNode) OpenSend(sid StreamID) (SendStream, error) {
	raddr, ok := n.book.UDP(sid.Receiver)
	if !ok {
		return nil, fmt.Errorf("interconnect: no address for segment %d", sid.Receiver)
	}
	s := &udpSend{
		n:        n,
		sid:      sid,
		raddr:    raddr,
		nextSeq:  1,
		unacked:  map[uint32]*outPkt{},
		cwnd:     4,
		ssthresh: 64,
		rto:      rtoInit,
	}
	s.cond = sync.NewCond(&s.mu)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.sends[sid]; dup {
		return nil, fmt.Errorf("interconnect: send stream %s already open", sid)
	}
	if _, c := n.canceled[sid.Query]; c {
		// The query was canceled before this stream opened (cancel races
		// QE startup): the send is born canceled so its Close skips the
		// EOS drain instead of waiting out DrainTimeout.
		s.canceled = true
	}
	n.sends[sid] = s
	return s, nil
}

// OpenRecv implements Node.
func (n *UDPNode) OpenRecv(query uint64, motion int16, senders []SegID) (RecvStream, error) {
	key := motionKey{Query: query, Motion: motion, Receiver: n.seg}
	r := &udpRecv{
		n:      n,
		key:    key,
		conns:  map[SegID]*rcvConn{},
		ch:     make(chan recvItem, (n.cfg.RecvWindow+1)*len(senders)+1),
		left:   len(senders),
		cancel: make(chan struct{}),
	}
	for _, s := range senders {
		r.conns[s] = &rcvConn{sender: s, expected: 1, pending: map[uint32][]byte{}}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.recvs[key]; dup {
		return nil, fmt.Errorf("interconnect: recv stream q%d/m%d already open", query, motion)
	}
	if _, c := n.canceled[query]; c {
		// Born canceled: Recv returns ErrCanceled immediately rather than
		// waiting for senders that will never come.
		r.canceled = true
		close(r.cancel)
	}
	n.recvs[key] = r
	return r, nil
}

// outPkt is one sent-but-unacknowledged packet in the expiration queue.
type outPkt struct {
	seq     uint32
	buf     []byte
	sentAt  time.Time
	resends int
}

// udpSend is one virtual connection from this node to one receiver. All
// such connections share the node's socket (§4.2).
type udpSend struct {
	n     *UDPNode
	sid   StreamID
	raddr *net.UDPAddr

	mu       sync.Mutex
	cond     *sync.Cond
	nextSeq  uint32
	unacked  map[uint32]*outPkt
	sc       uint32 // highest consumed seq reported by receiver
	sr       uint32 // highest in-order received seq reported
	cwnd     float64
	ssthresh float64
	srtt     time.Duration
	rttvar   time.Duration
	rto      time.Duration
	stopped  bool
	canceled bool
	closed   bool
	blocked  time.Time // since when Send has been waiting
	lastQry  time.Time
}

// Send implements SendStream.
func (s *udpSend) Send(data []byte) error {
	if len(data) > s.n.cfg.MaxPayload {
		return fmt.Errorf("interconnect: payload %d exceeds max %d", len(data), s.n.cfg.MaxPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//hawqcheck:ignore ctxflow — loop re-checks s.canceled/s.stopped each pass; CancelQuery broadcasts the cond
	for {
		if s.canceled {
			return ErrCanceled
		}
		if s.stopped {
			return ErrStopped
		}
		if s.closed {
			return ErrClosed
		}
		inflight := len(s.unacked)
		unconsumed := int(s.nextSeq - 1 - s.sc)
		if inflight < int(s.cwnd) && unconsumed < s.n.cfg.RecvWindow {
			s.blocked = time.Time{}
			break
		}
		if s.blocked.IsZero() {
			s.blocked = s.n.clk.Now()
		}
		s.cond.Wait()
	}
	//hawqcheck:ignore lockorder — UDP datagram write under s.mu never blocks on a peer
	s.emitLocked(ptData, data)
	return nil
}

// emitLocked assigns a sequence number, stores the packet in the unacked
// queue and transmits it. Callers hold s.mu.
func (s *udpSend) emitLocked(ptype uint8, data []byte) {
	seq := s.nextSeq
	s.nextSeq++
	buf := encodePacket(header{
		Type: ptype, Query: s.sid.Query, Motion: s.sid.Motion,
		Sender: s.sid.Sender, Receiver: s.sid.Receiver, Seq: seq,
	}, data)
	p := &outPkt{seq: seq, buf: buf, sentAt: s.n.clk.Now()}
	s.unacked[seq] = p
	s.n.transmit(s.raddr, buf)
}

// handleAck processes ACK/DUP packets: frees acknowledged packets from
// the expiration queue, updates RTT/RTO, grows the congestion window and
// wakes blocked senders.
func (s *udpSend) handleAck(h header) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.SC > s.sc {
		s.sc = h.SC
	}
	if h.SR > s.sr {
		s.sr = h.SR
	}
	now := s.n.clk.Now()
	acked := 0
	for seq, p := range s.unacked {
		if seq <= h.SR {
			if p.resends == 0 {
				s.observeRTT(now.Sub(p.sentAt))
			}
			delete(s.unacked, seq)
			acked++
		}
	}
	for ; acked > 0; acked-- {
		if s.cwnd < s.ssthresh {
			s.cwnd++ // slow start
		} else {
			s.cwnd += 1 / s.cwnd // congestion avoidance
		}
	}
	s.cond.Broadcast()
}

// observeRTT updates the smoothed RTT estimate (Jacobson/Karels) used to
// compute the retransmission timeout (§4.3).
func (s *udpSend) observeRTT(rtt time.Duration) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < rtoMin {
		s.rto = rtoMin
	}
	if s.rto > rtoMax {
		s.rto = rtoMax
	}
}

// handleOOO resends the sequences the receiver reported missing.
func (s *udpSend) handleOOO(h header, payload []byte) {
	s.mu.Lock()
	var resend [][]byte
	for i := 0; i+4 <= len(payload); i += 4 {
		seq := uint32(payload[i])<<24 | uint32(payload[i+1])<<16 | uint32(payload[i+2])<<8 | uint32(payload[i+3])
		if p, ok := s.unacked[seq]; ok {
			p.resends++
			p.sentAt = s.n.clk.Now()
			resend = append(resend, p.buf)
		}
	}
	raddr := s.raddr
	s.mu.Unlock()
	udpRetransmits.Add(int64(len(resend)))
	for _, buf := range resend {
		s.n.transmit(raddr, buf)
	}
	s.handleAck(h) // OOO carries cumulative SC/SR too
}

// handleStop transitions to the stopped state of Figure 5(a): pending
// packets are dropped and the producer sees ErrStopped.
func (s *udpSend) handleStop() {
	s.mu.Lock()
	s.stopped = true
	s.unacked = map[uint32]*outPkt{}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// tick retransmits expired packets (loss → window collapse + slow
// restart, §4.3) and sends a status query when the stream looks
// deadlocked (§4.5).
func (s *udpSend) tick(now time.Time) {
	s.mu.Lock()
	var resend [][]byte
	expired := false
	for _, p := range s.unacked {
		if now.Sub(p.sentAt) > s.rto {
			p.resends++
			p.sentAt = now
			resend = append(resend, p.buf)
			expired = true
		}
	}
	if expired {
		// Loss signal: collapse the window to the minimum and slow-start
		// back up.
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = 2
		s.rto *= 2
		if s.rto > rtoMax {
			s.rto = rtoMax
		}
	}
	var query []byte
	if !s.blocked.IsZero() && len(s.unacked) == 0 && !s.stopped && !s.closed &&
		now.Sub(s.blocked) > queryAfter && now.Sub(s.lastQry) > queryAfter {
		// Sender is blocked on receiver capacity with nothing in flight:
		// the consumption ack may have been lost. Ask for status.
		s.lastQry = now
		query = encodePacket(header{
			Type: ptQuery, Query: s.sid.Query, Motion: s.sid.Motion,
			Sender: s.sid.Sender, Receiver: s.sid.Receiver,
		}, nil)
	}
	raddr := s.raddr
	s.cond.Broadcast()
	s.mu.Unlock()
	udpRetransmits.Add(int64(len(resend)))
	for _, buf := range resend {
		s.n.transmit(raddr, buf)
	}
	if query != nil {
		s.n.transmit(raddr, query)
	}
}

// Close implements SendStream: emits EOS and drains the unacked queue.
// The wait is bounded by UDPConfig.DrainTimeout and aborted by a query
// cancel, so teardown cannot wall-block on a dead receiver.
func (s *udpSend) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.canceled {
		s.closed = true
		s.mu.Unlock()
		s.unregister()
		return ErrCanceled
	}
	if !s.stopped {
		s.emitLocked(ptEOS, nil)
	}
	deadline := s.n.clk.Now().Add(s.n.cfg.DrainTimeout)
	for len(s.unacked) > 0 && !s.stopped && !s.canceled {
		if s.n.clk.Now().After(deadline) {
			s.closed = true
			s.mu.Unlock()
			s.unregister()
			return fmt.Errorf("%w: EOS unacknowledged on %s", ErrTimeout, s.sid)
		}
		s.cond.Wait()
	}
	canceled := s.canceled
	s.closed = true
	s.mu.Unlock()
	s.unregister()
	if canceled {
		return ErrCanceled
	}
	return nil
}

// cancel aborts the stream: a blocked Send (or a Close draining its
// EOS) wakes up with ErrCanceled and pending packets are dropped.
func (s *udpSend) cancel() {
	s.mu.Lock()
	s.canceled = true
	s.unacked = map[uint32]*outPkt{}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *udpSend) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.unacked = map[uint32]*outPkt{}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *udpSend) unregister() {
	s.n.mu.Lock()
	delete(s.n.sends, s.sid)
	s.n.mu.Unlock()
}

type recvItem struct {
	sender SegID
	data   []byte
	eos    bool
	conn   *rcvConn
}

// rcvConn tracks one sender's stream at the receiver: the in-order
// cursor, the out-of-order ring and the consumption counter feeding SC.
type rcvConn struct {
	sender   SegID
	expected uint32            // next in-order seq
	pending  map[uint32][]byte // buffered out-of-order packets (nil = EOS)
	pendEOS  map[uint32]bool
	consumed uint32 // SC: highest seq handed to the executor
	done     bool
}

// udpRecv is the receiving side of one motion on this node, merging all
// sender streams. A separate channel per stream pair is modeled by the
// per-sender rcvConn (avoiding the §4.2 deadlock), with a single fan-in
// channel sized to hold every window.
type udpRecv struct {
	n        *UDPNode
	key      motionKey
	mu       sync.Mutex
	conns    map[SegID]*rcvConn
	ch       chan recvItem
	left     int // senders that have not delivered EOS
	cancel   chan struct{}
	canceled bool
	stopped  bool
	closed   bool
}

// handlePacket runs on the node's receive goroutine.
func (r *udpRecv) handlePacket(h header, payload []byte, raddr *net.UDPAddr) {
	r.mu.Lock()
	c := r.conns[h.Sender]
	if c == nil || r.closed {
		r.mu.Unlock()
		return
	}
	if r.stopped {
		// The STOP may have been lost; repeat it for every packet the
		// stopped sender still transmits (Figure 5's Stop-sent state is
		// left only when the sender goes quiet).
		r.mu.Unlock()
		r.n.transmit(raddr, encodePacket(header{
			Type: ptStop, Query: r.key.Query, Motion: r.key.Motion,
			Sender: h.Sender, Receiver: r.key.Receiver,
		}, nil))
		return
	}
	if h.Type == ptQuery {
		sc, sr := c.consumed, c.expected-1
		r.mu.Unlock()
		r.sendAck(ptAck, h.Sender, sc, sr, nil, raddr)
		return
	}
	eos := h.Type == ptEOS
	switch {
	case h.Seq < c.expected:
		// Duplicate: answer with a cumulative ack so the sender clears
		// its expiration queue (§4.4).
		sc, sr := c.consumed, c.expected-1
		r.mu.Unlock()
		r.sendAck(ptDup, h.Sender, sc, sr, nil, raddr)
		return
	case h.Seq == c.expected:
		r.deliverLocked(c, payload, eos)
		c.expected++
		// Drain buffered successors.
		//hawqcheck:ignore ctxflow — drains a bounded pending ring; no waits inside
		for {
			data, ok := c.pending[c.expected]
			if !ok {
				break
			}
			delete(c.pending, c.expected)
			e := c.pendEOS[c.expected]
			delete(c.pendEOS, c.expected)
			r.deliverLocked(c, data, e)
			c.expected++
		}
		sc, sr := c.consumed, c.expected-1
		r.mu.Unlock()
		r.sendAck(ptAck, h.Sender, sc, sr, nil, raddr)
		return
	default:
		// Gap: buffer within a bounded ring and report what is missing.
		if int(h.Seq-c.expected) < 4*r.n.cfg.RecvWindow {
			if _, dup := c.pending[h.Seq]; !dup {
				c.pending[h.Seq] = append([]byte(nil), payload...)
				if c.pendEOS == nil {
					c.pendEOS = map[uint32]bool{}
				}
				if eos {
					c.pendEOS[h.Seq] = true
				}
			}
		}
		var missing []byte
		for seq := c.expected; seq < h.Seq && len(missing) < 64*4; seq++ {
			if _, buffered := c.pending[seq]; !buffered {
				missing = append(missing, byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
			}
		}
		sc, sr := c.consumed, c.expected-1
		r.mu.Unlock()
		r.sendAck(ptOOO, h.Sender, sc, sr, missing, raddr)
		return
	}
}

// deliverLocked hands an in-order packet to the executor channel.
// Callers hold r.mu; the channel is sized so this never blocks.
func (r *udpRecv) deliverLocked(c *rcvConn, data []byte, eos bool) {
	if c.done {
		return
	}
	if eos {
		c.done = true
	}
	if r.stopped && !eos {
		// After Stop we discard data but keep consuming so acks flow.
		c.consumed++
		return
	}
	select {
	case r.ch <- recvItem{sender: c.sender, data: data, eos: eos, conn: c}:
	default:
		// The channel is sized to hold every sender's full window, so
		// this indicates a protocol accounting bug, not backpressure.
		panic("interconnect: receive channel overflow")
	}
}

func (r *udpRecv) sendAck(ptype uint8, sender SegID, sc, sr uint32, payload []byte, raddr *net.UDPAddr) {
	buf := encodePacket(header{
		Type: ptype, Query: r.key.Query, Motion: r.key.Motion,
		Sender: sender, Receiver: r.key.Receiver, SC: sc, SR: sr,
	}, payload)
	r.n.transmit(raddr, buf)
}

// Recv implements RecvStream.
func (r *udpRecv) Recv() (RecvItem, bool, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return RecvItem{}, false, ErrClosed
		}
		if r.left == 0 || r.stopped {
			r.mu.Unlock()
			return RecvItem{}, true, nil
		}
		r.mu.Unlock()
		var item recvItem
		var ok bool
		select {
		case item, ok = <-r.ch:
		case <-r.cancel:
			// Both Close (node shutdown, e.g. a killed segment) and
			// CancelQuery land here; report the one that happened.
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return RecvItem{}, false, ErrClosed
			}
			return RecvItem{}, false, ErrCanceled
		}
		if !ok {
			return RecvItem{}, false, ErrClosed
		}
		if item.eos {
			r.mu.Lock()
			r.left--
			done := r.left == 0
			r.mu.Unlock()
			if done {
				return RecvItem{}, true, nil
			}
			continue
		}
		// Advance SC for the sender's flow control.
		r.mu.Lock()
		item.conn.consumed++
		r.mu.Unlock()
		return RecvItem{Sender: item.sender, Data: item.data}, false, nil
	}
}

// Stop implements RecvStream: broadcast STOP to all senders (Figure 5(b)).
func (r *udpRecv) Stop() {
	r.mu.Lock()
	if r.stopped || r.closed {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	senders := make([]SegID, 0, len(r.conns))
	for s := range r.conns {
		senders = append(senders, s)
	}
	r.mu.Unlock()
	for _, s := range senders {
		if raddr, ok := r.n.book.UDP(s); ok {
			buf := encodePacket(header{
				Type: ptStop, Query: r.key.Query, Motion: r.key.Motion,
				Sender: s, Receiver: r.key.Receiver,
			}, nil)
			r.n.transmit(raddr, buf)
		}
	}
}

// doCancel aborts a blocked Recv.
func (r *udpRecv) doCancel() {
	r.mu.Lock()
	if !r.canceled {
		r.canceled = true
		close(r.cancel)
	}
	r.mu.Unlock()
}

// CancelQuery implements Node: it aborts both halves of every stream of
// the query — blocked Recvs return ErrCanceled, and blocked Sends (or
// EOS drains) on this node wake with ErrCanceled too, so a sliced plan
// tears down from either end.
func (n *UDPNode) CancelQuery(query uint64) {
	n.mu.Lock()
	if !n.closed {
		// Remember the cancellation so streams the query opens later (QE
		// startup racing the cancel) are born canceled; timerLoop expires
		// the tombstone.
		n.canceled[query] = n.clk.Now()
	}
	var victims []*udpRecv
	for key, r := range n.recvs {
		if key.Query == query {
			victims = append(victims, r)
		}
	}
	var sends []*udpSend
	for sid, s := range n.sends {
		if sid.Query == query {
			sends = append(sends, s)
		}
	}
	n.mu.Unlock()
	for _, r := range victims {
		r.doCancel()
	}
	for _, s := range sends {
		s.cancel()
	}
}

// Close implements RecvStream. It also wakes any Recv blocked in its
// select — a killed node closes every stream from a different
// goroutine than the one pulling rows, and without the wake that
// reader would sleep forever (no packet, no cancel) even though the
// stream is gone.
func (r *udpRecv) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	if !r.canceled {
		r.canceled = true
		close(r.cancel)
	}
	r.mu.Unlock()
	r.n.mu.Lock()
	delete(r.n.recvs, r.key)
	if !r.n.closed {
		r.n.ended[r.key] = r.n.clk.Now()
	}
	r.n.mu.Unlock()
}

// Package interconnect implements HAWQ's software interconnect (§4): the
// tuple transport between query execution slices. Two implementations are
// provided behind one interface:
//
//   - UDP: the paper's design. All tuple streams of a segment multiplex
//     over a single UDP socket. The protocol layers reliability
//     (acknowledgements + retransmission), ordering (per-stream sequence
//     numbers with an out-of-order buffer), flow control (a loss-driven
//     congestion window with slow start plus receiver-capacity
//     back-pressure via the SC/SR fields of every ack), and the
//     EOS/STOP state machines of Figure 5, including the
//     status-query deadlock elimination of §4.5.
//
//   - TCP: one connection per sender→receiver stream pair, kept for the
//     Figure 12 comparison. Its per-stream connection setup is exactly
//     the scalability limit the UDP design removes.
//
// A "node" is one process endpoint (a segment or the master/QD); streams
// are identified by (query, motion, sender, receiver).
package interconnect

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SegID identifies a node in the interconnect address book. The QD
// (master) conventionally uses QDSeg.
type SegID int16

// QDSeg is the reserved node ID for the query dispatcher on the master.
const QDSeg SegID = -1

// StreamID names one directed tuple stream of a motion.
type StreamID struct {
	Query    uint64
	Motion   int16
	Sender   SegID
	Receiver SegID
}

// String formats the stream id for logs and error messages.
func (s StreamID) String() string {
	return fmt.Sprintf("q%d/m%d %d->%d", s.Query, s.Motion, s.Sender, s.Receiver)
}

// motionKey identifies the receiving end of a motion on one node.
type motionKey struct {
	Query    uint64
	Motion   int16
	Receiver SegID
}

// Errors returned by streams.
var (
	// ErrStopped is returned by Send after the receiver sent STOP
	// (e.g. a LIMIT was satisfied, §4.1).
	ErrStopped = errors.New("interconnect: receiver stopped the stream")
	// ErrClosed is returned for operations on closed nodes or streams.
	ErrClosed = errors.New("interconnect: closed")
	// ErrTimeout is returned when a close/drain deadline passes.
	ErrTimeout = errors.New("interconnect: timed out")
	// ErrCanceled is returned by Recv after CancelQuery.
	ErrCanceled = errors.New("interconnect: query canceled")
)

// SendStream is the sending half of one stream. Safe for use by a single
// goroutine (one QE drives one slice).
type SendStream interface {
	// Send transmits one message (a batch of encoded tuples). It blocks
	// for flow control and returns ErrStopped once the receiver asked
	// senders to stop.
	Send(data []byte) error
	// Close sends EOS and waits until the receiver acknowledged
	// everything (or the stream was stopped).
	Close() error
}

// RecvItem is one delivery from a RecvStream.
type RecvItem struct {
	Sender SegID
	Data   []byte
}

// RecvStream is the receiving half of a motion on one node: it merges the
// streams from all senders.
type RecvStream interface {
	// Recv returns the next message from any sender. After every sender
	// delivered EOS it returns (RecvItem{}, io.EOF-like done=true).
	Recv() (RecvItem, bool, error)
	// Stop tells every sender to stop producing (LIMIT pushdown).
	Stop()
	// Close releases the stream. Data arriving afterwards is answered
	// with STOP so lingering senders terminate.
	Close()
}

// Node is one interconnect endpoint.
type Node interface {
	// Seg returns this node's ID.
	Seg() SegID
	// OpenSend creates the sending half of a stream.
	OpenSend(sid StreamID) (SendStream, error)
	// OpenRecv registers the receiving half of a motion, accepting from
	// the given senders.
	OpenRecv(query uint64, motion int16, senders []SegID) (RecvStream, error)
	// CancelQuery aborts every receive stream of a query on this node:
	// blocked Recv calls return ErrCanceled. The dispatcher uses it to
	// tear a failed query down without leaving QEs waiting (§2.6 —
	// in-flight queries fail and are restarted).
	CancelQuery(query uint64)
	// Close shuts the node down.
	Close() error
}

// Packet types of the UDP protocol.
const (
	ptData  = 1 // sequenced tuple payload
	ptEOS   = 2 // sequenced end-of-stream marker
	ptAck   = 3 // SC/SR acknowledgement
	ptDup   = 4 // duplicate-detected ack (cumulative, §4.4)
	ptOOO   = 5 // out-of-order notice listing missing sequences (§4.4)
	ptStop  = 6 // receiver asks sender to stop (Figure 5)
	ptQuery = 7 // sender status query for deadlock elimination (§4.5)
)

const packetMagic = 0xCB

// header is the wire header present on every packet. Fields are evenly
// aligned and fixed-width for portability (§4.1).
type header struct {
	Type     uint8
	Query    uint64
	Motion   int16
	Sender   SegID
	Receiver SegID
	Seq      uint32 // DATA/EOS: sequence number
	SC       uint32 // ACK/DUP/OOO: highest consumed seq
	SR       uint32 // ACK/DUP/OOO: highest in-order received seq
}

const headerSize = 1 + 1 + 8 + 2 + 2 + 2 + 4 + 4 + 4

func encodePacket(h header, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = packetMagic
	buf[1] = h.Type
	binary.BigEndian.PutUint64(buf[2:], h.Query)
	binary.BigEndian.PutUint16(buf[10:], uint16(h.Motion))
	binary.BigEndian.PutUint16(buf[12:], uint16(h.Sender))
	binary.BigEndian.PutUint16(buf[14:], uint16(h.Receiver))
	binary.BigEndian.PutUint32(buf[16:], h.Seq)
	binary.BigEndian.PutUint32(buf[20:], h.SC)
	binary.BigEndian.PutUint32(buf[24:], h.SR)
	copy(buf[headerSize:], payload)
	return buf
}

func decodePacket(buf []byte) (header, []byte, error) {
	var h header
	if len(buf) < headerSize || buf[0] != packetMagic {
		return h, nil, fmt.Errorf("interconnect: malformed packet (%d bytes)", len(buf))
	}
	h.Type = buf[1]
	h.Query = binary.BigEndian.Uint64(buf[2:])
	h.Motion = int16(binary.BigEndian.Uint16(buf[10:]))
	h.Sender = SegID(binary.BigEndian.Uint16(buf[12:]))
	h.Receiver = SegID(binary.BigEndian.Uint16(buf[14:]))
	h.Seq = binary.BigEndian.Uint32(buf[16:])
	h.SC = binary.BigEndian.Uint32(buf[20:])
	h.SR = binary.BigEndian.Uint32(buf[24:])
	return h, buf[headerSize:], nil
}

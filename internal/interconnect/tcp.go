package interconnect

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hawq/internal/clock"
	"hawq/internal/retry"
)

// TCPConfig tunes the TCP interconnect. Deadlines are enforced through
// clock.Clock timers instead of raw socket deadlines, so a clock.Sim
// chaos run never wall-blocks waiting for a peer: the timeout fires
// only when the driver advances virtual time.
type TCPConfig struct {
	// DialTimeout bounds connection setup for one dial attempt.
	// Default 10s.
	DialTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may take
	// to deliver its 14-byte stream hello. Default 10s.
	HandshakeTimeout time.Duration
	// Retry is the bounded-backoff policy wrapped around dials, so a
	// receiver that is restarting (failover re-registers its address)
	// does not fail the whole query on the first refused connection.
	// Zero fields default to 3 attempts from a 5ms base capped at
	// 100ms, jittered, on Clock.
	Retry retry.Policy
	// Clock drives the dial and handshake timers; nil means the wall
	// clock.
	Clock clock.Clock
}

func (c *TCPConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	c.Clock = clock.Default(c.Clock)
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay == 0 {
		c.Retry.BaseDelay = 5 * time.Millisecond
	}
	if c.Retry.MaxDelay == 0 {
		c.Retry.MaxDelay = 100 * time.Millisecond
	}
	if c.Retry.Clock == nil {
		c.Retry.Clock = c.Clock
	}
}

// TCPNode is the TCP interconnect endpoint: one TCP connection per
// sender→receiver stream pair. Connection setup cost and per-connection
// state are what limit this design at scale (§4): a 5-slice query on
// 1,000 segments needs ~3 million connections. It exists to reproduce the
// Figure 12 comparison.
type TCPNode struct {
	seg  SegID
	ln   net.Listener
	book *AddrBook
	cfg  TCPConfig
	clk  clock.Clock

	mu       sync.Mutex
	recvs    map[motionKey]*tcpRecv
	sends    map[StreamID]*tcpSend
	pending  map[motionKey][]*tcpPendingConn
	canceled map[uint64]time.Time // recently canceled queries; late-opened streams are born canceled
	closed   bool
	wg       sync.WaitGroup
}

type tcpPendingConn struct {
	sender SegID
	conn   net.Conn
}

// Frame types on a TCP stream.
const (
	tcpFrameData = 1
	tcpFrameEOS  = 2
	tcpFrameStop = 3 // receiver -> sender on the same connection
)

// NewTCPNode opens a TCP endpoint on 127.0.0.1 and registers it in the
// address book.
func NewTCPNode(seg SegID, book *AddrBook, cfg TCPConfig) (*TCPNode, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("interconnect: %w", err)
	}
	n := &TCPNode{
		seg:      seg,
		ln:       ln,
		book:     book,
		cfg:      cfg,
		clk:      cfg.Clock,
		recvs:    map[motionKey]*tcpRecv{},
		sends:    map[StreamID]*tcpSend{},
		pending:  map[motionKey][]*tcpPendingConn{},
		canceled: map[uint64]time.Time{},
	}
	book.SetTCP(seg, ln.Addr().String())
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Seg implements Node.
func (n *TCPNode) Seg() SegID { return n.seg }

// Close implements Node.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, conns := range n.pending {
		for _, pc := range conns {
			pc.conn.Close()
		}
	}
	recvs := make([]*tcpRecv, 0, len(n.recvs))
	for _, r := range n.recvs {
		recvs = append(recvs, r)
	}
	sends := make([]*tcpSend, 0, len(n.sends))
	for _, s := range n.sends {
		sends = append(sends, s)
	}
	n.mu.Unlock()
	for _, r := range recvs {
		r.Close()
	}
	for _, s := range sends {
		s.cancel()
	}
	n.ln.Close()
	n.wg.Wait()
	return nil
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleConn(conn)
		}()
	}
}

// handleConn reads the stream hello and hands the connection to its
// receiver (parking it if the receiver has not been set up yet). The
// handshake deadline is a clock.Clock watchdog, not a socket deadline:
// under clock.Sim it fires only when the driver advances virtual time
// (a simulated clock's Now would otherwise make socket deadlines lie in
// the past and reject every handshake).
func (n *TCPNode) handleConn(conn net.Conn) {
	var hello [14]byte
	hsDone := make(chan struct{})
	tm := n.clk.NewTimer(n.cfg.HandshakeTimeout)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer tm.Stop()
		select {
		case <-tm.C():
			// A wall deadline in the past fails the pending read.
			conn.SetReadDeadline(time.Unix(1, 0))
		case <-hsDone:
		}
	}()
	_, err := io.ReadFull(conn, hello[:])
	close(hsDone)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	query := binary.BigEndian.Uint64(hello[0:])
	motion := int16(binary.BigEndian.Uint16(hello[8:]))
	sender := SegID(binary.BigEndian.Uint16(hello[10:]))
	receiver := SegID(binary.BigEndian.Uint16(hello[12:]))
	key := motionKey{Query: query, Motion: motion, Receiver: receiver}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if r := n.recvs[key]; r != nil {
		n.mu.Unlock()
		r.adopt(sender, conn)
		return
	}
	n.pending[key] = append(n.pending[key], &tcpPendingConn{sender: sender, conn: conn})
	n.mu.Unlock()
}

// OpenSend implements Node: dials one connection for this stream.
// Dials run under the configured bounded-retry policy with a
// clock-driven timeout per attempt.
func (n *TCPNode) OpenSend(sid StreamID) (SendStream, error) {
	addr, ok := n.book.TCP(sid.Receiver)
	if !ok {
		return nil, fmt.Errorf("interconnect: no TCP address for segment %d", sid.Receiver)
	}
	var conn net.Conn
	err := n.cfg.Retry.Do(context.Background(), func(int) error {
		ctx, cancel := clock.ContextWithTimeout(context.Background(), n.clk, n.cfg.DialTimeout, ErrTimeout)
		defer cancel()
		c, derr := (&net.Dialer{}).DialContext(ctx, "tcp", addr)
		if derr != nil {
			return derr
		}
		conn = c
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("interconnect: dial %s: %w", sid, err)
	}
	var hello [14]byte
	binary.BigEndian.PutUint64(hello[0:], sid.Query)
	binary.BigEndian.PutUint16(hello[8:], uint16(sid.Motion))
	binary.BigEndian.PutUint16(hello[10:], uint16(sid.Sender))
	binary.BigEndian.PutUint16(hello[12:], uint16(sid.Receiver))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	s := &tcpSend{node: n, sid: sid, conn: conn, stop: make(chan struct{})}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if _, c := n.canceled[sid.Query]; c {
		// The query was canceled before this stream opened (cancel races
		// QE startup): the send is born canceled so Send/Close fail fast
		// instead of writing to a receiver that is tearing down.
		s.canceled.Store(true)
		conn.Close()
	}
	n.sends[sid] = s
	n.mu.Unlock()
	go s.watchStop()
	return s, nil
}

// OpenRecv implements Node.
func (n *TCPNode) OpenRecv(query uint64, motion int16, senders []SegID) (RecvStream, error) {
	key := motionKey{Query: query, Motion: motion, Receiver: n.seg}
	r := &tcpRecv{
		key:  key,
		node: n,
		ch:   make(chan recvItem, 4*len(senders)+1),
		left: len(senders),
		done: make(chan struct{}),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.recvs[key]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("interconnect: recv stream q%d/m%d already open", query, motion)
	}
	if _, c := n.canceled[query]; c {
		// Born closed: Recv returns ErrClosed immediately; the stream is
		// never registered, so its Close is a no-op.
		r.closed = true
		close(r.done)
		n.mu.Unlock()
		return r, nil
	}
	n.recvs[key] = r
	parked := n.pending[key]
	delete(n.pending, key)
	n.mu.Unlock()
	for _, pc := range parked {
		r.adopt(pc.sender, pc.conn)
	}
	return r, nil
}

// CancelQuery implements Node: closing the receive streams unblocks
// Recv (it returns ErrClosed) and drops the connections; send streams
// of the query are canceled so a producer blocked in Write fails with
// ErrCanceled.
func (n *TCPNode) CancelQuery(query uint64) {
	n.mu.Lock()
	if !n.closed {
		// Remember the cancellation so streams opened later (QE startup
		// racing the cancel) are born canceled. Tombstones older than a
		// minute are pruned here — the TCP node has no timer loop.
		now := n.clk.Now()
		for q, at := range n.canceled {
			if now.Sub(at) > time.Minute {
				delete(n.canceled, q)
			}
		}
		n.canceled[query] = now
	}
	var victims []*tcpRecv
	for key, r := range n.recvs {
		if key.Query == query {
			victims = append(victims, r)
		}
	}
	var sends []*tcpSend
	for sid, s := range n.sends {
		if sid.Query == query {
			sends = append(sends, s)
		}
	}
	n.mu.Unlock()
	for _, r := range victims {
		r.Close()
	}
	for _, s := range sends {
		s.cancel()
	}
}

// tcpSend is the sender half over one dedicated connection.
type tcpSend struct {
	node *TCPNode
	sid  StreamID
	conn net.Conn
	// mu serializes writes; stopped/canceled are atomic so the STOP
	// watcher and CancelQuery can flag a sender that is blocked inside
	// Write.
	mu       sync.Mutex
	stopped  atomic.Bool
	canceled atomic.Bool
	closed   bool
	stop     chan struct{}
}

// cancel aborts the stream: the connection is closed so a blocked Write
// fails immediately and Send reports ErrCanceled.
func (s *tcpSend) cancel() {
	if s.canceled.CompareAndSwap(false, true) {
		s.conn.SetWriteDeadline(time.Unix(1, 0))
		s.conn.Close()
	}
}

// unregister drops the stream from the node's cancel index.
func (s *tcpSend) unregister() {
	if s.node == nil {
		return
	}
	s.node.mu.Lock()
	if s.node.sends[s.sid] == s {
		delete(s.node.sends, s.sid)
	}
	s.node.mu.Unlock()
}

// watchStop reads the back-channel for the receiver's STOP frame.
func (s *tcpSend) watchStop() {
	var b [1]byte
	//hawqcheck:ignore ctxflow — terminates when the conn closes; Close/cancel unblocks the Read
	for {
		if _, err := s.conn.Read(b[:]); err != nil {
			return
		}
		if b[0] == tcpFrameStop {
			s.stopped.Store(true)
			// Fail any write blocked on a full send buffer so the
			// producer observes ErrStopped promptly. SetWriteDeadline is
			// safe to call concurrently with a blocked Write.
			s.conn.SetWriteDeadline(time.Unix(1, 0))
			close(s.stop)
			return
		}
	}
}

// Send implements SendStream.
func (s *tcpSend) Send(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.canceled.Load() {
		return ErrCanceled
	}
	if s.stopped.Load() {
		return ErrStopped
	}
	if s.closed {
		return ErrClosed
	}
	frame := make([]byte, 5+len(data))
	frame[0] = tcpFrameData
	binary.BigEndian.PutUint32(frame[1:], uint32(len(data)))
	copy(frame[5:], data)
	//hawqcheck:ignore lockorder — frame write serialized under s.mu by design; stop watchdog breaks a blocked write
	if _, err := s.conn.Write(frame); err != nil {
		if s.canceled.Load() {
			return ErrCanceled
		}
		if s.stopped.Load() {
			return ErrStopped
		}
		return err
	}
	tcpMsgsSent.Inc()
	tcpBytesSent.Add(int64(len(data)))
	return nil
}

// Close implements SendStream.
func (s *tcpSend) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.unregister()
	if s.canceled.Load() {
		return ErrCanceled
	}
	if !s.stopped.Load() {
		frame := []byte{tcpFrameEOS, 0, 0, 0, 0}
		//hawqcheck:ignore lockorder — frame write serialized under s.mu by design; stop watchdog breaks a blocked write
		s.conn.Write(frame)
	}
	// Give the kernel a moment to flush, then close. TCP guarantees
	// delivery of written data on a graceful close.
	if tc, ok := s.conn.(*net.TCPConn); ok {
		//hawqcheck:ignore lockorder — half-close under s.mu is a local socket op, not a peer wait
		tc.CloseWrite()
		return nil
	}
	//hawqcheck:ignore lockorder — close under s.mu is a local socket op, not a peer wait
	return s.conn.Close()
}

// tcpRecv merges per-sender connections.
type tcpRecv struct {
	key     motionKey
	node    *TCPNode
	mu      sync.Mutex
	conns   []net.Conn
	ch      chan recvItem
	left    int
	done    chan struct{}
	stopped bool
	closed  bool
}

// adopt starts a reader goroutine for one sender connection.
func (r *tcpRecv) adopt(sender SegID, conn net.Conn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	r.conns = append(r.conns, conn)
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		// The motion was stopped before this connection finished its
		// handshake; stop the late sender immediately.
		conn.Write([]byte{tcpFrameStop})
	}
	go func() {
		defer conn.Close()
		hdr := make([]byte, 5)
		for {
			if _, err := io.ReadFull(conn, hdr); err != nil {
				// Connection lost without EOS: surface as EOS so the
				// receiver does not hang (query restart handles errors).
				r.push(recvItem{sender: sender, eos: true})
				return
			}
			length := binary.BigEndian.Uint32(hdr[1:])
			data := make([]byte, length)
			if _, err := io.ReadFull(conn, data); err != nil {
				r.push(recvItem{sender: sender, eos: true})
				return
			}
			if hdr[0] == tcpFrameEOS {
				r.push(recvItem{sender: sender, eos: true})
				return
			}
			tcpMsgsRecv.Inc()
			tcpBytesRecv.Add(int64(len(data)))
			r.push(recvItem{sender: sender, data: data})
		}
	}()
}

func (r *tcpRecv) push(item recvItem) {
	select {
	case r.ch <- item:
	case <-r.done:
	}
}

// Recv implements RecvStream.
func (r *tcpRecv) Recv() (RecvItem, bool, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return RecvItem{}, false, ErrClosed
		}
		if r.left == 0 || r.stopped {
			r.mu.Unlock()
			return RecvItem{}, true, nil
		}
		r.mu.Unlock()
		var item recvItem
		select {
		case item = <-r.ch:
		case <-r.done:
			return RecvItem{}, false, ErrClosed
		}
		if item.eos {
			r.mu.Lock()
			r.left--
			done := r.left == 0
			r.mu.Unlock()
			if done {
				return RecvItem{}, true, nil
			}
			continue
		}
		return RecvItem{Sender: item.sender, Data: item.data}, false, nil
	}
}

// Stop implements RecvStream: send the STOP frame on every connection's
// back channel.
func (r *tcpRecv) Stop() {
	r.mu.Lock()
	if r.stopped || r.closed {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	conns := append([]net.Conn(nil), r.conns...)
	r.mu.Unlock()
	for _, c := range conns {
		c.Write([]byte{tcpFrameStop})
	}
	// Drain in-flight frames until Close so reader goroutines can exit.
	go func() {
		for {
			select {
			case <-r.ch:
			case <-r.done:
				return
			}
		}
	}()
}

// Close implements RecvStream.
func (r *tcpRecv) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.done)
	conns := append([]net.Conn(nil), r.conns...)
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	r.node.mu.Lock()
	delete(r.node.recvs, r.key)
	r.node.mu.Unlock()
}

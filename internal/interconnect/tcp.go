package interconnect

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hawq/internal/clock"
)

// TCPNode is the TCP interconnect endpoint: one TCP connection per
// sender→receiver stream pair. Connection setup cost and per-connection
// state are what limit this design at scale (§4): a 5-slice query on
// 1,000 segments needs ~3 million connections. It exists to reproduce the
// Figure 12 comparison.
type TCPNode struct {
	seg  SegID
	ln   net.Listener
	book *AddrBook
	clk  clock.Clock

	mu      sync.Mutex
	recvs   map[motionKey]*tcpRecv
	pending map[motionKey][]*tcpPendingConn
	closed  bool
	wg      sync.WaitGroup
}

type tcpPendingConn struct {
	sender SegID
	conn   net.Conn
}

// Frame types on a TCP stream.
const (
	tcpFrameData = 1
	tcpFrameEOS  = 2
	tcpFrameStop = 3 // receiver -> sender on the same connection
)

// NewTCPNode opens a TCP endpoint on 127.0.0.1 and registers it in the
// address book.
func NewTCPNode(seg SegID, book *AddrBook) (*TCPNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("interconnect: %w", err)
	}
	n := &TCPNode{
		seg:     seg,
		ln:      ln,
		book:    book,
		clk:     clock.Wall{},
		recvs:   map[motionKey]*tcpRecv{},
		pending: map[motionKey][]*tcpPendingConn{},
	}
	book.SetTCP(seg, ln.Addr().String())
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Seg implements Node.
func (n *TCPNode) Seg() SegID { return n.seg }

// Close implements Node.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for _, conns := range n.pending {
		for _, pc := range conns {
			pc.conn.Close()
		}
	}
	recvs := make([]*tcpRecv, 0, len(n.recvs))
	for _, r := range n.recvs {
		recvs = append(recvs, r)
	}
	n.mu.Unlock()
	for _, r := range recvs {
		r.Close()
	}
	n.ln.Close()
	n.wg.Wait()
	return nil
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleConn(conn)
		}()
	}
}

// handleConn reads the stream hello and hands the connection to its
// receiver (parking it if the receiver has not been set up yet).
func (n *TCPNode) handleConn(conn net.Conn) {
	var hello [14]byte
	conn.SetReadDeadline(n.clk.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	query := binary.BigEndian.Uint64(hello[0:])
	motion := int16(binary.BigEndian.Uint16(hello[8:]))
	sender := SegID(binary.BigEndian.Uint16(hello[10:]))
	receiver := SegID(binary.BigEndian.Uint16(hello[12:]))
	key := motionKey{Query: query, Motion: motion, Receiver: receiver}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if r := n.recvs[key]; r != nil {
		n.mu.Unlock()
		r.adopt(sender, conn)
		return
	}
	n.pending[key] = append(n.pending[key], &tcpPendingConn{sender: sender, conn: conn})
	n.mu.Unlock()
}

// OpenSend implements Node: dials one connection for this stream.
func (n *TCPNode) OpenSend(sid StreamID) (SendStream, error) {
	addr, ok := n.book.TCP(sid.Receiver)
	if !ok {
		return nil, fmt.Errorf("interconnect: no TCP address for segment %d", sid.Receiver)
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("interconnect: dial %s: %w", sid, err)
	}
	var hello [14]byte
	binary.BigEndian.PutUint64(hello[0:], sid.Query)
	binary.BigEndian.PutUint16(hello[8:], uint16(sid.Motion))
	binary.BigEndian.PutUint16(hello[10:], uint16(sid.Sender))
	binary.BigEndian.PutUint16(hello[12:], uint16(sid.Receiver))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	s := &tcpSend{conn: conn, stop: make(chan struct{})}
	go s.watchStop()
	return s, nil
}

// OpenRecv implements Node.
func (n *TCPNode) OpenRecv(query uint64, motion int16, senders []SegID) (RecvStream, error) {
	key := motionKey{Query: query, Motion: motion, Receiver: n.seg}
	r := &tcpRecv{
		key:  key,
		node: n,
		ch:   make(chan recvItem, 4*len(senders)+1),
		left: len(senders),
		done: make(chan struct{}),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := n.recvs[key]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("interconnect: recv stream q%d/m%d already open", query, motion)
	}
	n.recvs[key] = r
	parked := n.pending[key]
	delete(n.pending, key)
	n.mu.Unlock()
	for _, pc := range parked {
		r.adopt(pc.sender, pc.conn)
	}
	return r, nil
}

// CancelQuery implements Node: closing the receive streams unblocks
// Recv (it returns ErrClosed) and drops the connections.
func (n *TCPNode) CancelQuery(query uint64) {
	n.mu.Lock()
	var victims []*tcpRecv
	for key, r := range n.recvs {
		if key.Query == query {
			victims = append(victims, r)
		}
	}
	n.mu.Unlock()
	for _, r := range victims {
		r.Close()
	}
}

// tcpSend is the sender half over one dedicated connection.
type tcpSend struct {
	conn net.Conn
	// mu serializes writes; stopped is atomic so the STOP watcher can
	// flag a sender that is blocked inside Write.
	mu      sync.Mutex
	stopped atomic.Bool
	closed  bool
	stop    chan struct{}
}

// watchStop reads the back-channel for the receiver's STOP frame.
func (s *tcpSend) watchStop() {
	var b [1]byte
	for {
		if _, err := s.conn.Read(b[:]); err != nil {
			return
		}
		if b[0] == tcpFrameStop {
			s.stopped.Store(true)
			// Fail any write blocked on a full send buffer so the
			// producer observes ErrStopped promptly. SetWriteDeadline is
			// safe to call concurrently with a blocked Write.
			s.conn.SetWriteDeadline(time.Unix(1, 0))
			close(s.stop)
			return
		}
	}
}

// Send implements SendStream.
func (s *tcpSend) Send(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped.Load() {
		return ErrStopped
	}
	if s.closed {
		return ErrClosed
	}
	frame := make([]byte, 5+len(data))
	frame[0] = tcpFrameData
	binary.BigEndian.PutUint32(frame[1:], uint32(len(data)))
	copy(frame[5:], data)
	if _, err := s.conn.Write(frame); err != nil {
		if s.stopped.Load() {
			return ErrStopped
		}
		return err
	}
	return nil
}

// Close implements SendStream.
func (s *tcpSend) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.stopped.Load() {
		frame := []byte{tcpFrameEOS, 0, 0, 0, 0}
		s.conn.Write(frame)
	}
	// Give the kernel a moment to flush, then close. TCP guarantees
	// delivery of written data on a graceful close.
	if tc, ok := s.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
		return nil
	}
	return s.conn.Close()
}

// tcpRecv merges per-sender connections.
type tcpRecv struct {
	key     motionKey
	node    *TCPNode
	mu      sync.Mutex
	conns   []net.Conn
	ch      chan recvItem
	left    int
	done    chan struct{}
	stopped bool
	closed  bool
}

// adopt starts a reader goroutine for one sender connection.
func (r *tcpRecv) adopt(sender SegID, conn net.Conn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	r.conns = append(r.conns, conn)
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		// The motion was stopped before this connection finished its
		// handshake; stop the late sender immediately.
		conn.Write([]byte{tcpFrameStop})
	}
	go func() {
		defer conn.Close()
		hdr := make([]byte, 5)
		for {
			if _, err := io.ReadFull(conn, hdr); err != nil {
				// Connection lost without EOS: surface as EOS so the
				// receiver does not hang (query restart handles errors).
				r.push(recvItem{sender: sender, eos: true})
				return
			}
			length := binary.BigEndian.Uint32(hdr[1:])
			data := make([]byte, length)
			if _, err := io.ReadFull(conn, data); err != nil {
				r.push(recvItem{sender: sender, eos: true})
				return
			}
			if hdr[0] == tcpFrameEOS {
				r.push(recvItem{sender: sender, eos: true})
				return
			}
			r.push(recvItem{sender: sender, data: data})
		}
	}()
}

func (r *tcpRecv) push(item recvItem) {
	select {
	case r.ch <- item:
	case <-r.done:
	}
}

// Recv implements RecvStream.
func (r *tcpRecv) Recv() (RecvItem, bool, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return RecvItem{}, false, ErrClosed
		}
		if r.left == 0 || r.stopped {
			r.mu.Unlock()
			return RecvItem{}, true, nil
		}
		r.mu.Unlock()
		var item recvItem
		select {
		case item = <-r.ch:
		case <-r.done:
			return RecvItem{}, false, ErrClosed
		}
		if item.eos {
			r.mu.Lock()
			r.left--
			done := r.left == 0
			r.mu.Unlock()
			if done {
				return RecvItem{}, true, nil
			}
			continue
		}
		return RecvItem{Sender: item.sender, Data: item.data}, false, nil
	}
}

// Stop implements RecvStream: send the STOP frame on every connection's
// back channel.
func (r *tcpRecv) Stop() {
	r.mu.Lock()
	if r.stopped || r.closed {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	conns := append([]net.Conn(nil), r.conns...)
	r.mu.Unlock()
	for _, c := range conns {
		c.Write([]byte{tcpFrameStop})
	}
	// Drain in-flight frames until Close so reader goroutines can exit.
	go func() {
		for {
			select {
			case <-r.ch:
			case <-r.done:
				return
			}
		}
	}()
}

// Close implements RecvStream.
func (r *tcpRecv) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.done)
	conns := append([]net.Conn(nil), r.conns...)
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	r.node.mu.Lock()
	delete(r.node.recvs, r.key)
	r.node.mu.Unlock()
}

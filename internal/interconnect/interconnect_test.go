package interconnect

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// buildUDP creates n segment nodes (0..n-1) plus a QD node.
func buildUDP(t testing.TB, n int, cfg UDPConfig) (*AddrBook, map[SegID]Node) {
	t.Helper()
	book := NewAddrBook()
	nodes := map[SegID]Node{}
	ids := []SegID{QDSeg}
	for i := 0; i < n; i++ {
		ids = append(ids, SegID(i))
	}
	for _, id := range ids {
		node, err := NewUDPNode(id, book, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return book, nodes
}

func buildTCP(t testing.TB, n int) (*AddrBook, map[SegID]Node) {
	t.Helper()
	book := NewAddrBook()
	nodes := map[SegID]Node{}
	ids := []SegID{QDSeg}
	for i := 0; i < n; i++ {
		ids = append(ids, SegID(i))
	}
	for _, id := range ids {
		node, err := NewTCPNode(id, book, TCPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return book, nodes
}

// runFanIn sends per-sender numbered messages from every segment to the
// QD and verifies per-sender ordering and completeness.
func runFanIn(t *testing.T, nodes map[SegID]Node, senders, msgs int) {
	t.Helper()
	const query, motion = 42, 1
	senderIDs := make([]SegID, senders)
	for i := range senderIDs {
		senderIDs[i] = SegID(i)
	}
	recv, err := nodes[QDSeg].OpenRecv(query, motion, senderIDs)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for _, sid := range senderIDs {
		wg.Add(1)
		go func(sid SegID) {
			defer wg.Done()
			s, err := nodes[sid].OpenSend(StreamID{Query: query, Motion: motion, Sender: sid, Receiver: QDSeg})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < msgs; i++ {
				if err := s.Send([]byte(fmt.Sprintf("%d:%d", sid, i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- s.Close()
		}(sid)
	}

	next := map[SegID]int{}
	total := 0
	for {
		item, done, err := recv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		want := fmt.Sprintf("%d:%d", item.Sender, next[item.Sender])
		if string(item.Data) != want {
			t.Fatalf("out of order: got %q, want %q", item.Data, want)
		}
		next[item.Sender]++
		total++
	}
	if total != senders*msgs {
		t.Fatalf("received %d messages, want %d", total, senders*msgs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestUDPFanIn(t *testing.T) {
	_, nodes := buildUDP(t, 4, UDPConfig{})
	runFanIn(t, nodes, 4, 500)
}

func TestUDPFanInUnderPacketLoss(t *testing.T) {
	// 10% injected loss on every outgoing packet (data AND acks): the
	// retransmission, ordering and duplicate machinery must hide it.
	_, nodes := buildUDP(t, 3, UDPConfig{LossRate: 0.10, Seed: 99})
	runFanIn(t, nodes, 3, 300)
}

func TestUDPHeavyLossStillDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("slow under heavy loss")
	}
	_, nodes := buildUDP(t, 2, UDPConfig{LossRate: 0.30, Seed: 7})
	runFanIn(t, nodes, 2, 100)
}

func TestTCPFanIn(t *testing.T) {
	_, nodes := buildTCP(t, 4)
	runFanIn(t, nodes, 4, 500)
}

func TestUDPSenderBeforeReceiver(t *testing.T) {
	// The sender starts before the receiver registers; retransmission
	// bridges the gap.
	_, nodes := buildUDP(t, 1, UDPConfig{})
	s, err := nodes[0].OpenSend(StreamID{Query: 7, Motion: 2, Sender: 0, Receiver: QDSeg})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 10; i++ {
			s.Send([]byte{byte(i)})
		}
		s.Close()
	}()
	time.Sleep(30 * time.Millisecond) // sender is already transmitting
	recv, err := nodes[QDSeg].OpenRecv(7, 2, []SegID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	got := 0
	for {
		item, done, err := recv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if item.Data[0] != byte(got) {
			t.Fatalf("message %d has payload %d", got, item.Data[0])
		}
		got++
	}
	if got != 10 {
		t.Fatalf("got %d messages", got)
	}
}

func TestTCPSenderBeforeReceiver(t *testing.T) {
	_, nodes := buildTCP(t, 1)
	s, err := nodes[0].OpenSend(StreamID{Query: 7, Motion: 2, Sender: 0, Receiver: QDSeg})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Send([]byte("hello"))
		s.Close()
	}()
	time.Sleep(30 * time.Millisecond)
	recv, err := nodes[QDSeg].OpenRecv(7, 2, []SegID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	item, done, err := recv.Recv()
	if err != nil || done || string(item.Data) != "hello" {
		t.Fatalf("item=%v done=%v err=%v", item, done, err)
	}
	if _, done, _ := recv.Recv(); !done {
		t.Fatal("missing EOS")
	}
}

// stopTest exercises the STOP state machine (LIMIT queries): the receiver
// stops mid-stream and the senders observe ErrStopped promptly.
func stopTest(t *testing.T, nodes map[SegID]Node) {
	t.Helper()
	const query, motion = 11, 3
	recv, err := nodes[QDSeg].OpenRecv(query, motion, []SegID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	stopSeen := make(chan struct{}, 2)
	for seg := SegID(0); seg < 2; seg++ {
		go func(seg SegID) {
			s, err := nodes[seg].OpenSend(StreamID{Query: query, Motion: motion, Sender: seg, Receiver: QDSeg})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; ; i++ {
				if err := s.Send([]byte("payload")); err == ErrStopped {
					stopSeen <- struct{}{}
					s.Close()
					return
				} else if err != nil {
					t.Error(err)
					return
				}
			}
		}(seg)
	}
	// Take a few messages, then stop.
	for i := 0; i < 5; i++ {
		if _, done, err := recv.Recv(); err != nil || done {
			t.Fatalf("recv %d: done=%v err=%v", i, done, err)
		}
	}
	recv.Stop()
	for i := 0; i < 2; i++ {
		select {
		case <-stopSeen:
		case <-time.After(5 * time.Second):
			t.Fatal("sender did not observe STOP")
		}
	}
	if _, done, err := recv.Recv(); !done || err != nil {
		t.Fatalf("post-stop recv: done=%v err=%v", done, err)
	}
}

func TestUDPStop(t *testing.T) {
	_, nodes := buildUDP(t, 2, UDPConfig{})
	stopTest(t, nodes)
}

func TestUDPStopUnderLoss(t *testing.T) {
	_, nodes := buildUDP(t, 2, UDPConfig{LossRate: 0.15, Seed: 3})
	stopTest(t, nodes)
}

func TestTCPStop(t *testing.T) {
	_, nodes := buildTCP(t, 2)
	stopTest(t, nodes)
}

func TestUDPFlowControlBoundsInflight(t *testing.T) {
	// A slow receiver must throttle the sender via SC capacity: the
	// sender cannot race ahead more than the receive window.
	_, nodes := buildUDP(t, 1, UDPConfig{RecvWindow: 8})
	recv, err := nodes[QDSeg].OpenRecv(1, 1, []SegID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	s, err := nodes[0].OpenSend(StreamID{Query: 1, Motion: 1, Sender: 0, Receiver: QDSeg})
	if err != nil {
		t.Fatal(err)
	}
	sent := make(chan int, 1)
	go func() {
		n := 0
		for n < 100 {
			if err := s.Send([]byte{byte(n)}); err != nil {
				break
			}
			n++
		}
		s.Close()
		sent <- n
	}()
	// Consume nothing for a while; the sender must be blocked well below
	// 100 messages.
	time.Sleep(200 * time.Millisecond)
	select {
	case n := <-sent:
		t.Fatalf("sender finished %d sends against a stalled receiver", n)
	default:
	}
	// Now drain; everything must arrive in order.
	for i := 0; i < 100; i++ {
		item, done, err := recv.Recv()
		if err != nil || done {
			t.Fatalf("recv %d: done=%v err=%v", i, done, err)
		}
		if item.Data[0] != byte(i) {
			t.Fatalf("message %d = %d", i, item.Data[0])
		}
	}
	if _, done, _ := recv.Recv(); !done {
		t.Fatal("missing EOS")
	}
	if n := <-sent; n != 100 {
		t.Fatalf("sender completed %d sends", n)
	}
}

func TestUDPDeadlockEliminationViaStatusQuery(t *testing.T) {
	// Heavy ack loss with a tiny window: the scenario of §4.5 where all
	// consumption acks vanish. The status-query mechanism must keep the
	// stream alive.
	_, nodes := buildUDP(t, 1, UDPConfig{RecvWindow: 2, LossRate: 0.4, Seed: 1234})
	recv, err := nodes[QDSeg].OpenRecv(5, 1, []SegID{0})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	s, err := nodes[0].OpenSend(StreamID{Query: 5, Motion: 1, Sender: 0, Receiver: QDSeg})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 50; i++ {
			s.Send([]byte{byte(i)})
		}
		s.Close()
	}()
	deadline := time.After(30 * time.Second)
	for i := 0; i < 50; i++ {
		type res struct {
			item RecvItem
			done bool
			err  error
		}
		ch := make(chan res, 1)
		go func() {
			it, done, err := recv.Recv()
			ch <- res{it, done, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil || r.done {
				t.Fatalf("recv %d: done=%v err=%v", i, r.done, r.err)
			}
			if r.item.Data[0] != byte(i) {
				t.Fatalf("message %d = %d", i, r.item.Data[0])
			}
		case <-deadline:
			t.Fatal("stream deadlocked despite status-query mechanism")
		}
	}
}

func TestUDPConcurrentQueriesMultiplexOneSocket(t *testing.T) {
	// Multiple queries and motions share each node's single socket.
	_, nodes := buildUDP(t, 2, UDPConfig{})
	var wg sync.WaitGroup
	for q := uint64(1); q <= 4; q++ {
		wg.Add(1)
		go func(q uint64) {
			defer wg.Done()
			recv, err := nodes[QDSeg].OpenRecv(q, 1, []SegID{0, 1})
			if err != nil {
				t.Error(err)
				return
			}
			defer recv.Close()
			for seg := SegID(0); seg < 2; seg++ {
				go func(seg SegID) {
					s, err := nodes[seg].OpenSend(StreamID{Query: q, Motion: 1, Sender: seg, Receiver: QDSeg})
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < 50; i++ {
						s.Send([]byte{byte(q), byte(i)})
					}
					s.Close()
				}(seg)
			}
			n := 0
			for {
				item, done, err := recv.Recv()
				if err != nil {
					t.Error(err)
					return
				}
				if done {
					break
				}
				if item.Data[0] != byte(q) {
					t.Errorf("query %d got payload for query %d", q, item.Data[0])
					return
				}
				n++
			}
			if n != 100 {
				t.Errorf("query %d received %d", q, n)
			}
		}(q)
	}
	wg.Wait()
}

func TestStragglerSenderGetsStopped(t *testing.T) {
	// A sender that keeps transmitting after the receiver closed must be
	// told to stop (the "ended" tombstone path).
	_, nodes := buildUDP(t, 1, UDPConfig{})
	recv, err := nodes[QDSeg].OpenRecv(9, 1, []SegID{0})
	if err != nil {
		t.Fatal(err)
	}
	recv.Close()
	s, err := nodes[0].OpenSend(StreamID{Query: 9, Motion: 1, Sender: 0, Receiver: QDSeg})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := s.Send([]byte("x"))
		if err == ErrStopped {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("straggler was never stopped")
		}
	}
}

func TestPacketEncodeDecode(t *testing.T) {
	h := header{Type: ptData, Query: 123456789, Motion: -3, Sender: 17, Receiver: QDSeg, Seq: 42, SC: 7, SR: 9}
	buf := encodePacket(h, []byte("payload"))
	got, payload, err := decodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || string(payload) != "payload" {
		t.Fatalf("round trip: %+v %q", got, payload)
	}
	if _, _, err := decodePacket(buf[:10]); err == nil {
		t.Error("short packet accepted")
	}
	buf[0] = 0
	if _, _, err := decodePacket(buf); err == nil {
		t.Error("bad magic accepted")
	}
}

func benchInterconnect(b *testing.B, nodes map[SegID]Node, payload int) {
	recv, err := nodes[QDSeg].OpenRecv(1, 1, []SegID{0})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	s, err := nodes[0].OpenSend(StreamID{Query: 1, Motion: 1, Sender: 0, Receiver: QDSeg})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, payload)
	b.SetBytes(int64(payload))
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			s.Send(data)
		}
		s.Close()
	}()
	for {
		_, done, err := recv.Recv()
		if err != nil {
			b.Fatal(err)
		}
		if done {
			break
		}
	}
}

func BenchmarkUDPInterconnectThroughput(b *testing.B) {
	_, nodes := buildUDP(b, 1, UDPConfig{})
	benchInterconnect(b, nodes, 4096)
}

func BenchmarkTCPInterconnectThroughput(b *testing.B) {
	_, nodes := buildTCP(b, 1)
	benchInterconnect(b, nodes, 4096)
}

// Property: the packet header codec is the identity for every field
// combination.
func TestQuickPacketHeaderRoundTrip(t *testing.T) {
	f := func(typ uint8, query uint64, motion int16, sender, receiver int16, seq, sc, sr uint32, payload []byte) bool {
		h := header{
			Type: typ, Query: query, Motion: motion,
			Sender: SegID(sender), Receiver: SegID(receiver),
			Seq: seq, SC: sc, SR: sr,
		}
		buf := encodePacket(h, payload)
		got, p, err := decodePacket(buf)
		return err == nil && got == h && string(p) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

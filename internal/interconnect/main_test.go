package interconnect

import (
	"testing"

	"hawq/internal/testutil"
)

// TestMain fails the suite if interconnect endpoints leak their receive,
// timer, or reader goroutines past Close.
func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }

package expr

import (
	"testing"
	"testing/quick"
	"time"

	"hawq/internal/clock"
	"hawq/internal/types"
)

func col(i int, k types.Kind) *ColRef { return &ColRef{Idx: i, K: k} }

func ci(v int64) *Const  { return NewConst(types.NewInt64(v)) }
func cs(s string) *Const { return NewConst(types.NewString(s)) }

func mustEval(t *testing.T, e Expr, row types.Row) types.Datum {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestArithmeticAndComparison(t *testing.T) {
	row := types.Row{types.NewInt64(10), types.NewInt64(3)}
	a, b := col(0, types.KindInt64), col(1, types.KindInt64)
	if v := mustEval(t, NewBinOp(OpAdd, a, b), row); v.Int() != 13 {
		t.Errorf("10+3 = %v", v)
	}
	if v := mustEval(t, NewBinOp(OpMod, a, b), row); v.Int() != 1 {
		t.Errorf("10%%3 = %v", v)
	}
	if v := mustEval(t, NewBinOp(OpGt, a, b), row); !v.Bool() {
		t.Error("10 > 3 false")
	}
	if v := mustEval(t, NewBinOp(OpEq, a, ci(10)), row); !v.Bool() {
		t.Error("10 = 10 false")
	}
	// NULL propagation.
	nullRow := types.Row{types.Null, types.NewInt64(3)}
	if v := mustEval(t, NewBinOp(OpLt, a, b), nullRow); !v.IsNull() {
		t.Error("NULL < 3 should be NULL")
	}
	if v := mustEval(t, NewBinOp(OpConcat, cs("a"), cs("b")), nil); v.Str() != "ab" {
		t.Errorf("concat = %v", v)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr := NewConst(types.NewBool(true))
	fa := NewConst(types.NewBool(false))
	nu := NewConst(types.Null)
	cases := []struct {
		e    Expr
		want string
	}{
		{NewBinOp(OpAnd, tr, nu), "NULL"},
		{NewBinOp(OpAnd, fa, nu), "f"},
		{NewBinOp(OpAnd, nu, fa), "f"},
		{NewBinOp(OpOr, tr, nu), "t"},
		{NewBinOp(OpOr, nu, tr), "t"},
		{NewBinOp(OpOr, fa, nu), "NULL"},
		{&Not{nu}, "NULL"},
		{&Not{fa}, "t"},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, nil).String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_y%", false},
		{"", "%", true},
		{"", "_", false},
		{"special requests", "%special%requests%", true},
		{"nothing here", "%special%requests%", false},
		{"forest green metallic", "%green%", true},
		{"abc", "abc%def", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		e := &Like{E: cs(c.s), Pattern: c.pat}
		if got := mustEval(t, e, nil).Bool(); got != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	neg := &Like{E: cs("abc"), Pattern: "a%", Negate: true}
	if mustEval(t, neg, nil).Bool() {
		t.Error("NOT LIKE failed")
	}
	if v := mustEval(t, &Like{E: NewConst(types.Null), Pattern: "%"}, nil); !v.IsNull() {
		t.Error("NULL LIKE should be NULL")
	}
}

func TestInListAndBetween(t *testing.T) {
	in := &InList{E: ci(2), Items: []Expr{ci(1), ci(2), ci(3)}}
	if !mustEval(t, in, nil).Bool() {
		t.Error("2 IN (1,2,3) false")
	}
	notIn := &InList{E: ci(9), Items: []Expr{ci(1)}, Negate: true}
	if !mustEval(t, notIn, nil).Bool() {
		t.Error("9 NOT IN (1) false")
	}
	// NULL in list: unknown unless matched.
	withNull := &InList{E: ci(9), Items: []Expr{ci(1), NewConst(types.Null)}}
	if v := mustEval(t, withNull, nil); !v.IsNull() {
		t.Errorf("9 IN (1, NULL) = %v, want NULL", v)
	}
	btw := &Between{E: ci(5), Lo: ci(1), Hi: ci(10)}
	if !mustEval(t, btw, nil).Bool() {
		t.Error("5 BETWEEN 1 AND 10 false")
	}
	btwN := &Between{E: ci(50), Lo: ci(1), Hi: ci(10), Negate: true}
	if !mustEval(t, btwN, nil).Bool() {
		t.Error("50 NOT BETWEEN 1 AND 10 false")
	}
}

func TestCaseExpr(t *testing.T) {
	// CASE WHEN $0 > 10 THEN 'big' WHEN $0 > 5 THEN 'mid' ELSE 'small' END
	e := &Case{
		Whens: []When{
			{NewBinOp(OpGt, col(0, types.KindInt64), ci(10)), cs("big")},
			{NewBinOp(OpGt, col(0, types.KindInt64), ci(5)), cs("mid")},
		},
		Else: cs("small"),
	}
	for _, c := range []struct {
		in   int64
		want string
	}{{20, "big"}, {7, "mid"}, {1, "small"}} {
		if got := mustEval(t, e, types.Row{types.NewInt64(c.in)}).Str(); got != c.want {
			t.Errorf("case(%d) = %q, want %q", c.in, got, c.want)
		}
	}
	noElse := &Case{Whens: []When{{NewConst(types.NewBool(false)), cs("x")}}}
	if v := mustEval(t, noElse, nil); !v.IsNull() {
		t.Error("CASE with no match and no ELSE must be NULL")
	}
	if e.Kind() != types.KindString {
		t.Errorf("case kind = %v", e.Kind())
	}
}

func TestIsNullAndCast(t *testing.T) {
	if !mustEval(t, &IsNull{E: NewConst(types.Null)}, nil).Bool() {
		t.Error("NULL IS NULL false")
	}
	if !mustEval(t, &IsNull{E: ci(1), Negate: true}, nil).Bool() {
		t.Error("1 IS NOT NULL false")
	}
	v := mustEval(t, &Cast{E: cs("42"), To: types.KindInt64}, nil)
	if v.Int() != 42 {
		t.Errorf("cast = %v", v)
	}
	if _, err := (&Cast{E: cs("zz"), To: types.KindInt64}).Eval(nil); err == nil {
		t.Error("bad cast must error")
	}
}

func TestFuncCalls(t *testing.T) {
	d := NewConst(types.MustParseDate("1995-03-17"))
	check := func(name string, args []Expr, want string) {
		t.Helper()
		f, err := NewFuncCall(name, args)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustEval(t, f, nil).String(); got != want {
			t.Errorf("%s = %q, want %q", f, got, want)
		}
	}
	check("extract_year", []Expr{d}, "1995")
	check("extract_month", []Expr{d}, "3")
	check("add_months", []Expr{d, ci(3)}, "1995-06-17")
	check("add_years", []Expr{d, ci(1)}, "1996-03-17")
	check("add_days", []Expr{d, ci(20)}, "1995-04-06")
	check("substring", []Expr{cs("hello world"), ci(7), ci(5)}, "world")
	check("substring", []Expr{cs("abc"), ci(2)}, "bc")
	check("upper", []Expr{cs("abc")}, "ABC")
	check("length", []Expr{cs("four")}, "4")
	check("coalesce", []Expr{NewConst(types.Null), ci(5)}, "5")
	check("abs", []Expr{ci(-9)}, "9")
	check("round", []Expr{NewConst(types.NewFloat64(3.14159)), ci(2)}, "3.14")
	if _, err := NewFuncCall("no_such_fn", nil); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := NewFuncCall("upper", nil); err == nil {
		t.Error("wrong arity accepted")
	}
	if !IsBuiltinFunc("UPPER") || IsBuiltinFunc("sum") {
		t.Error("IsBuiltinFunc misclassifies")
	}
}

// TestCurrentDateUsesBoundClock is the golden test for the clock-driven
// current_date: under clock.Sim the result is the simulated date
// (deterministic and replayable), never the wall date.
func TestCurrentDateUsesBoundClock(t *testing.T) {
	f, err := NewFuncCall("current_date", nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(time.Time{}) // SIGMOD'14 epoch, 2014-06-22 UTC
	BindClock(f, sim)
	got := mustEval(t, f, nil).String()
	if got != "2014-06-22" {
		t.Errorf("current_date under Sim = %q, want %q", got, "2014-06-22")
	}
	sim.Advance(48 * time.Hour)
	if got := mustEval(t, f, nil).String(); got != "2014-06-24" {
		t.Errorf("current_date after Advance = %q, want %q", got, "2014-06-24")
	}

	// An unbound call falls back to the wall clock (the pre-PR behavior).
	unbound, err := NewFuncCall("current_date", nil)
	if err != nil {
		t.Fatal(err)
	}
	//hawqcheck:ignore clockwall asserting the wall-clock fallback itself
	want := types.DateFromTime(time.Now().UTC()).String()
	if got := mustEval(t, unbound, nil).String(); got != want {
		t.Errorf("unbound current_date = %q, want wall date %q", got, want)
	}

	// BindClock reaches FuncCalls nested anywhere in an expression tree.
	nested, err := NewFuncCall("extract_year", []Expr{f})
	if err != nil {
		t.Fatal(err)
	}
	BindClock(nested, sim)
	if got := mustEval(t, nested, nil).String(); got != "2014" {
		t.Errorf("extract_year(current_date) under Sim = %q, want 2014", got)
	}
}

func TestAggregates(t *testing.T) {
	data := []types.Datum{
		types.NewInt64(5), types.NewInt64(1), types.Null, types.NewInt64(5), types.NewInt64(3),
	}
	arg := col(0, types.KindInt64)
	run := func(s AggSpec) types.Datum {
		acc := NewAccumulator(s)
		for _, d := range data {
			acc.Add(d)
		}
		return acc.Result()
	}
	if v := run(AggSpec{Kind: AggCount, Arg: arg}); v.Int() != 4 {
		t.Errorf("count = %v", v)
	}
	if v := run(AggSpec{Kind: AggCountStar}); v.Int() != 5 {
		t.Errorf("count(*) = %v", v)
	}
	if v := run(AggSpec{Kind: AggSum, Arg: arg}); v.Int() != 14 {
		t.Errorf("sum = %v", v)
	}
	if v := run(AggSpec{Kind: AggAvg, Arg: arg}); v.Float() != 3.5 {
		t.Errorf("avg = %v", v)
	}
	if v := run(AggSpec{Kind: AggMin, Arg: arg}); v.Int() != 1 {
		t.Errorf("min = %v", v)
	}
	if v := run(AggSpec{Kind: AggMax, Arg: arg}); v.Int() != 5 {
		t.Errorf("max = %v", v)
	}
	if v := run(AggSpec{Kind: AggCount, Arg: arg, Distinct: true}); v.Int() != 3 {
		t.Errorf("count distinct = %v", v)
	}
	if v := run(AggSpec{Kind: AggSum, Arg: arg, Distinct: true}); v.Int() != 9 {
		t.Errorf("sum distinct = %v", v)
	}
	// Empty inputs.
	if v := NewAccumulator(AggSpec{Kind: AggSum, Arg: arg}).Result(); !v.IsNull() {
		t.Error("sum of empty must be NULL")
	}
	if v := NewAccumulator(AggSpec{Kind: AggCount, Arg: arg}).Result(); v.Int() != 0 {
		t.Error("count of empty must be 0")
	}
	// Decimal sum keeps decimal kind.
	acc := NewAccumulator(AggSpec{Kind: AggSum, Arg: col(0, types.KindDecimal)})
	acc.Add(types.NewDecimal(150, 2))
	acc.Add(types.NewDecimal(25, 2))
	if got := acc.Result().String(); got != "1.75" {
		t.Errorf("decimal sum = %v", got)
	}
}

func TestAggKindByName(t *testing.T) {
	for name, want := range map[string]AggKind{"count": AggCount, "SUM": AggSum, "Avg": AggAvg, "min": AggMin, "max": AggMax} {
		got, ok := AggKindByName(name)
		if !ok || got != want {
			t.Errorf("AggKindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggKindByName("median"); ok {
		t.Error("median should not resolve")
	}
}

func TestEvalBool(t *testing.T) {
	if ok, _ := EvalBool(NewConst(types.Null), nil); ok {
		t.Error("NULL predicate must filter")
	}
	if ok, _ := EvalBool(NewConst(types.NewBool(true)), nil); !ok {
		t.Error("true predicate must pass")
	}
}

// Property: LIKE with a pattern equal to the string (no wildcards) always
// matches, and appending "%" keeps matching.
func TestQuickLikeSelfMatch(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' {
				clean += string(r)
			}
		}
		return likeMatch(clean, clean) && likeMatch(clean, clean+"%") && likeMatch(clean, "%"+clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBinOpKinds(t *testing.T) {
	a := col(0, types.KindInt64)
	d := col(1, types.KindDecimal)
	f := col(2, types.KindFloat64)
	dt := col(3, types.KindDate)
	cases := []struct {
		e    Expr
		want types.Kind
	}{
		{NewBinOp(OpAdd, a, a), types.KindInt64},
		{NewBinOp(OpMul, a, d), types.KindDecimal},
		{NewBinOp(OpAdd, d, f), types.KindFloat64},
		{NewBinOp(OpDiv, d, d), types.KindFloat64},
		{NewBinOp(OpEq, a, a), types.KindBool},
		{NewBinOp(OpConcat, cs("a"), cs("b")), types.KindString},
		{NewBinOp(OpSub, dt, dt), types.KindInt64},
		{NewBinOp(OpAdd, dt, a), types.KindDate},
		{&Not{NewConst(types.NewBool(true))}, types.KindBool},
		{&Cast{E: a, To: types.KindString}, types.KindString},
		{&IsNull{E: a}, types.KindBool},
		{&Between{E: a, Lo: ci(1), Hi: ci(2)}, types.KindBool},
		{&InList{E: a, Items: []Expr{ci(1)}}, types.KindBool},
		{&Like{E: cs("x"), Pattern: "%"}, types.KindBool},
	}
	for _, c := range cases {
		if got := c.e.Kind(); got != c.want {
			t.Errorf("%s kind = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprStringsRender(t *testing.T) {
	// EXPLAIN output relies on every node's String.
	f, _ := NewFuncCall("substring", []Expr{cs("abc"), ci(1), ci(2)})
	exprs := []Expr{
		NewBinOp(OpAnd, NewConst(types.NewBool(true)), NewConst(types.NewBool(false))),
		&Not{NewConst(types.NewBool(true))},
		&Neg{ci(5)},
		&IsNull{E: ci(1), Negate: true},
		&Like{E: cs("x"), Pattern: "a%", Negate: true},
		&InList{E: ci(1), Items: []Expr{ci(2), ci(3)}, Negate: true},
		&Between{E: ci(5), Lo: ci(1), Hi: ci(9)},
		&Case{Whens: []When{{NewConst(types.NewBool(true)), cs("y")}}, Else: cs("n")},
		&Cast{E: ci(1), To: types.KindString},
		f,
		&ColRef{Idx: 3},
	}
	for _, e := range exprs {
		if e.String() == "" {
			t.Errorf("%T renders empty", e)
		}
	}
	if (&ColRef{Idx: 3}).String() != "$3" {
		t.Error("anonymous colref rendering")
	}
}

func TestColRefOutOfRange(t *testing.T) {
	c := col(5, types.KindInt64)
	if _, err := c.Eval(types.Row{types.NewInt64(1)}); err == nil {
		t.Fatal("out-of-range column reference accepted")
	}
}

func TestSimpleCaseOperandForm(t *testing.T) {
	// Simple CASE is lowered by the planner to operand = when; the Case
	// node itself only handles searched form — verify the searched
	// equivalent works for each branch.
	e := &Case{
		Whens: []When{
			{NewBinOp(OpEq, col(0, types.KindString), cs("A")), ci(1)},
			{NewBinOp(OpEq, col(0, types.KindString), cs("B")), ci(2)},
		},
	}
	if v := mustEval(t, e, types.Row{types.NewString("B")}); v.Int() != 2 {
		t.Fatalf("case = %v", v)
	}
	if v := mustEval(t, e, types.Row{types.NewString("Z")}); !v.IsNull() {
		t.Fatalf("no-match case = %v", v)
	}
}

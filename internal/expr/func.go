package expr

import (
	"fmt"
	"strings"

	"hawq/internal/clock"
	"hawq/internal/types"
)

// FuncCall invokes a built-in scalar function by name.
type FuncCall struct {
	Name string
	Args []Expr
	// impl and clk are segment-local bindings, deliberately rebuilt
	// after decode by RebindFuncs/BindClock (§3.1); only Name and Args
	// travel on the wire.
	//hawqcheck:ignore wiresafe impl is rebound by RebindFuncs after decode
	impl *builtin
	//hawqcheck:ignore wiresafe clk is rebound by BindClock at executor Build
	clk clock.Clock
}

type builtin struct {
	minArgs, maxArgs int
	kind             func(args []Expr) types.Kind
	eval             func(args []types.Datum) (types.Datum, error)
	// evalClock is set instead of eval for builtins whose result depends
	// on the current time (current_date); the executor binds the query's
	// clock so results are deterministic under clock.Sim.
	evalClock func(c clock.Clock, args []types.Datum) (types.Datum, error)
}

func fixedKind(k types.Kind) func([]Expr) types.Kind {
	return func([]Expr) types.Kind { return k }
}

var builtins = map[string]*builtin{
	"extract_year": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindInt64), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt64(int64(a[0].Year())), nil
	}},
	"extract_month": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindInt64), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt64(int64(a[0].Time().Month())), nil
	}},
	"extract_day": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindInt64), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt64(int64(a[0].Time().Day())), nil
	}},
	"add_months": {minArgs: 2, maxArgs: 2, kind: fixedKind(types.KindDate), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return types.Null, nil
		}
		t := a[0].Time().AddDate(0, int(a[1].Int()), 0)
		return types.DateFromTime(t), nil
	}},
	"add_years": {minArgs: 2, maxArgs: 2, kind: fixedKind(types.KindDate), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return types.Null, nil
		}
		t := a[0].Time().AddDate(int(a[1].Int()), 0, 0)
		return types.DateFromTime(t), nil
	}},
	"add_days": {minArgs: 2, maxArgs: 2, kind: fixedKind(types.KindDate), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return types.Null, nil
		}
		return types.NewDate(int32(a[0].I + a[1].Int())), nil
	}},
	"date": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindDate), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.Cast(a[0], types.KindDate)
	}},
	"current_date": {minArgs: 0, maxArgs: 0, kind: fixedKind(types.KindDate),
		evalClock: func(c clock.Clock, a []types.Datum) (types.Datum, error) {
			return types.DateFromTime(c.Now().UTC()), nil
		}},
	"substring": {minArgs: 2, maxArgs: 3, kind: fixedKind(types.KindString), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return types.Null, nil
		}
		s := a[0].Str()
		from := int(a[1].Int()) - 1 // SQL is 1-based
		if from < 0 {
			from = 0
		}
		if from > len(s) {
			from = len(s)
		}
		end := len(s)
		if len(a) == 3 && !a[2].IsNull() {
			end = from + int(a[2].Int())
			if end > len(s) {
				end = len(s)
			}
			if end < from {
				end = from
			}
		}
		return types.NewString(s[from:end]), nil
	}},
	"upper": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindString), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToUpper(a[0].Str())), nil
	}},
	"lower": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindString), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToLower(a[0].Str())), nil
	}},
	"length": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindInt64), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt64(int64(len(a[0].Str()))), nil
	}},
	"trim": {minArgs: 1, maxArgs: 1, kind: fixedKind(types.KindString), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.TrimSpace(a[0].Str())), nil
	}},
	"abs": {minArgs: 1, maxArgs: 1, kind: func(args []Expr) types.Kind { return args[0].Kind() }, eval: func(a []types.Datum) (types.Datum, error) {
		d := a[0]
		if d.IsNull() {
			return types.Null, nil
		}
		if types.Compare(d, types.NewInt64(0)) < 0 {
			return types.Neg(d), nil
		}
		return d, nil
	}},
	"round": {minArgs: 1, maxArgs: 2, kind: fixedKind(types.KindFloat64), eval: func(a []types.Datum) (types.Datum, error) {
		if a[0].IsNull() {
			return types.Null, nil
		}
		digits := 0
		if len(a) == 2 && !a[1].IsNull() {
			digits = int(a[1].Int())
		}
		mult := 1.0
		for i := 0; i < digits; i++ {
			mult *= 10
		}
		v := a[0].Float() * mult
		if v >= 0 {
			v = float64(int64(v + 0.5))
		} else {
			v = float64(int64(v - 0.5))
		}
		return types.NewFloat64(v / mult), nil
	}},
	"coalesce": {minArgs: 1, maxArgs: 16, kind: func(args []Expr) types.Kind { return args[0].Kind() }, eval: func(a []types.Datum) (types.Datum, error) {
		for _, d := range a {
			if !d.IsNull() {
				return d, nil
			}
		}
		return types.Null, nil
	}},
}

// NewFuncCall resolves a built-in function by name.
func NewFuncCall(name string, args []Expr) (*FuncCall, error) {
	name = strings.ToLower(name)
	impl, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %s", name)
	}
	if len(args) < impl.minArgs || len(args) > impl.maxArgs {
		return nil, fmt.Errorf("expr: %s takes %d..%d args, got %d", name, impl.minArgs, impl.maxArgs, len(args))
	}
	return &FuncCall{Name: name, Args: args, impl: impl}, nil
}

// IsBuiltinFunc reports whether name resolves to a scalar built-in.
func IsBuiltinFunc(name string) bool {
	_, ok := builtins[strings.ToLower(name)]
	return ok
}

// Eval implements Expr.
func (f *FuncCall) Eval(row types.Row) (types.Datum, error) {
	args := make([]types.Datum, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	if f.impl.evalClock != nil {
		return f.impl.evalClock(clock.Default(f.clk), args)
	}
	return f.impl.eval(args)
}

// Kind implements Expr.
func (f *FuncCall) Kind() types.Kind { return f.impl.kind(f.Args) }

// String renders the call as SQL-like text for EXPLAIN output.
func (f *FuncCall) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

package expr

import (
	"fmt"
	"strings"

	"hawq/internal/types"
)

// AggKind enumerates the aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggCount AggKind = iota // COUNT(expr): non-null inputs
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"count", "count(*)", "sum", "avg", "min", "max"}

// String returns the SQL name of the aggregate.
func (k AggKind) String() string { return aggNames[k] }

// AggKindByName resolves an aggregate function name; ok is false for
// non-aggregates.
func AggKindByName(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	}
	return 0, false
}

// AggSpec describes one aggregate in a query: the function, its argument
// expression (nil for COUNT(*)), and the DISTINCT flag.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr
	Distinct bool
}

// ResultKind is the output kind of the aggregate.
func (s AggSpec) ResultKind() types.Kind {
	switch s.Kind {
	case AggCount, AggCountStar:
		return types.KindInt64
	case AggAvg:
		return types.KindFloat64
	case AggSum:
		switch s.Arg.Kind() {
		case types.KindFloat64:
			return types.KindFloat64
		case types.KindDecimal:
			return types.KindDecimal
		default:
			return types.KindInt64
		}
	default:
		if s.Arg == nil {
			return types.KindNull
		}
		return s.Arg.Kind()
	}
}

// String renders the aggregate for EXPLAIN output.
func (s AggSpec) String() string {
	if s.Kind == AggCountStar {
		return "count(*)"
	}
	d := ""
	if s.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", s.Kind, d, s.Arg)
}

// Accumulator folds datums into an aggregate state. Partial aggregation
// (the first phase of HAWQ's two-phase aggregates) uses the same
// accumulators; the planner arranges for the final phase to re-aggregate
// the partials (SUM of partial SUMs, SUM of partial COUNTs, MIN of
// partial MINs, ...).
type Accumulator interface {
	Add(d types.Datum)
	Result() types.Datum
}

// NewAccumulator builds the accumulator for a spec. DISTINCT is handled
// by wrapping with a dedup set keyed on the datum's binary encoding.
func NewAccumulator(s AggSpec) Accumulator {
	var a Accumulator
	switch s.Kind {
	case AggCount, AggCountStar:
		a = &countAcc{star: s.Kind == AggCountStar}
	case AggSum:
		a = &sumAcc{}
	case AggAvg:
		a = &avgAcc{}
	case AggMin:
		a = &minmaxAcc{want: -1}
	case AggMax:
		a = &minmaxAcc{want: 1}
	default:
		panic(fmt.Sprintf("expr: bad aggregate kind %d", s.Kind))
	}
	if s.Distinct {
		return &distinctAcc{inner: a, seen: make(map[string]struct{})}
	}
	return a
}

type countAcc struct {
	star bool
	n    int64
}

func (c *countAcc) Add(d types.Datum) {
	if c.star || !d.IsNull() {
		c.n++
	}
}

func (c *countAcc) Result() types.Datum { return types.NewInt64(c.n) }

// sumAcc sums numerics, tracking the widest kind seen. SQL SUM over an
// empty input is NULL.
type sumAcc struct {
	seen bool
	cur  types.Datum
}

func (s *sumAcc) Add(d types.Datum) {
	if d.IsNull() {
		return
	}
	if !s.seen {
		s.seen = true
		s.cur = d
		return
	}
	s.cur = types.Add(s.cur, d)
}

func (s *sumAcc) Result() types.Datum {
	if !s.seen {
		return types.Null
	}
	return s.cur
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) Add(d types.Datum) {
	if d.IsNull() {
		return
	}
	a.sum += d.Float()
	a.n++
}

func (a *avgAcc) Result() types.Datum {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat64(a.sum / float64(a.n))
}

type minmaxAcc struct {
	want int // -1 for min, 1 for max
	seen bool
	cur  types.Datum
}

func (m *minmaxAcc) Add(d types.Datum) {
	if d.IsNull() {
		return
	}
	if !m.seen {
		m.seen, m.cur = true, d
		return
	}
	if c := types.Compare(d, m.cur); (m.want < 0 && c < 0) || (m.want > 0 && c > 0) {
		m.cur = d
	}
}

func (m *minmaxAcc) Result() types.Datum {
	if !m.seen {
		return types.Null
	}
	return m.cur
}

type distinctAcc struct {
	inner Accumulator
	seen  map[string]struct{}
}

func (d *distinctAcc) Add(v types.Datum) {
	if v.IsNull() {
		// NULLs never contribute to DISTINCT aggregates.
		return
	}
	key := string(types.EncodeDatum(nil, v))
	if _, dup := d.seen[key]; dup {
		return
	}
	d.seen[key] = struct{}{}
	d.inner.Add(v)
}

func (d *distinctAcc) Result() types.Datum { return d.inner.Result() }

package expr

import (
	"fmt"

	"hawq/internal/types"
)

// Conjuncts appends the AND-conjuncts of e to dst: the predicate
// decomposition the encoded-vector kernels (and zone-map extraction)
// work one conjunct at a time.
func Conjuncts(e Expr, dst []Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		dst = Conjuncts(b.L, dst)
		return Conjuncts(b.R, dst)
	}
	return append(dst, e)
}

// AndAll rebuilds a predicate from conjuncts (nil for none).
func AndAll(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &BinOp{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// vecPred is one compiled kernelizable conjunct: <ColRef> <comparison>
// <non-NULL Const>, the same shape filterKernel vectorizes on decoded
// batches.
type vecPred struct {
	col  int
	op   BinOpKind
	want types.Datum
}

// compileVecPred extracts the kernelizable shape from one conjunct.
func compileVecPred(e Expr) (vecPred, bool) {
	bo, ok := e.(*BinOp)
	if !ok || !bo.Op.IsComparison() {
		return vecPred{}, false
	}
	col, ok := bo.L.(*ColRef)
	if !ok {
		return vecPred{}, false
	}
	cst, ok := bo.R.(*Const)
	if !ok || cst.D.IsNull() {
		return vecPred{}, false
	}
	return vecPred{col: col.Idx, op: bo.Op, want: cst.D}, true
}

// VecFilterable reports whether every conjunct of pred has the
// kernelizable shape over the first width columns — i.e. FilterVec will
// consume the whole predicate and never leave a residual. A nil pred is
// trivially filterable.
func VecFilterable(pred Expr, width int) bool {
	if pred == nil {
		return true
	}
	for _, c := range Conjuncts(pred, nil) {
		p, ok := compileVecPred(c)
		if !ok || p.col >= width {
			return false
		}
	}
	return true
}

// cmpPass evaluates d <op> want with SQL comparison semantics (NULL
// filters out), sharing the int64 fast path with filterKernel.
func cmpPass(d types.Datum, op BinOpKind, want types.Datum) bool {
	if d.IsNull() {
		return false
	}
	var c int
	if d.K == types.KindInt64 && want.K == types.KindInt64 {
		switch {
		case d.I < want.I:
			c = -1
		case d.I > want.I:
			c = 1
		}
	} else {
		c = types.Compare(d, want)
	}
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// FilterVec applies pred's kernelizable conjuncts directly to the
// encoded columns of vb, narrowing vb.Sel in place. Predicates on
// run-length pages evaluate once per run, on dictionary pages once per
// dictionary entry, on flat pages once per row; raw (undecoded) pages
// decode one column value at a time, stepping over rows the selection
// has already killed without allocating. Conjuncts FilterVec cannot
// vectorize are returned as the residual predicate the caller must
// evaluate after materializing.
func FilterVec(pred Expr, vb *types.VecBatch) (Expr, error) {
	if pred == nil {
		return nil, nil
	}
	var residual []Expr
	for _, conj := range Conjuncts(pred, nil) {
		p, ok := compileVecPred(conj)
		if !ok || p.col >= len(vb.Cols) {
			residual = append(residual, conj)
			continue
		}
		if vb.SelCount() == 0 {
			// Already empty: later conjuncts cannot revive rows, but
			// non-kernel conjuncts must still be reported as residual
			// for shape consistency. Kernel ones are trivially done.
			continue
		}
		if err := applyVecPred(&vb.Cols[p.col], p, vb); err != nil {
			return nil, err
		}
	}
	return AndAll(residual), nil
}

// applyVecPred narrows vb.Sel to the rows of v passing p.
func applyVecPred(v *types.Vector, p vecPred, vb *types.VecBatch) error {
	n := vb.Len()
	sel := vb.Sel
	var out []int32
	switch v.Enc {
	case types.VecDict:
		// One comparison per dictionary entry, then a code lookup per
		// row.
		pass := make([]bool, len(v.Values))
		for i, d := range v.Values {
			pass[i] = cmpPass(d, p.op, p.want)
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if pass[v.Codes[i]] {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, ri := range sel {
				if pass[v.Codes[ri]] {
					out = append(out, ri)
				}
			}
		}
	case types.VecRLE:
		// One comparison per run, then run arithmetic over the
		// (sorted) selection.
		if sel == nil {
			i := int32(0)
			for k, run := range v.Runs {
				if cmpPass(v.Values[k], p.op, p.want) {
					for r := int32(0); r < run; r++ {
						out = append(out, i+r)
					}
				}
				i += run
			}
		} else {
			if len(v.Runs) == 0 {
				return fmt.Errorf("expr: non-empty selection over empty RLE vector")
			}
			k, runEnd := 0, v.Runs[0]
			// Evaluate each run's verdict lazily as the walk reaches it.
			verdict := cmpPass(v.Values[0], p.op, p.want)
			for _, ri := range sel {
				for k < len(v.Runs) && ri >= runEnd {
					k++
					if k < len(v.Runs) {
						runEnd += v.Runs[k]
						verdict = cmpPass(v.Values[k], p.op, p.want)
					}
				}
				if k >= len(v.Runs) {
					return fmt.Errorf("expr: selection index %d beyond RLE runs (%d rows)", ri, v.N)
				}
				if verdict {
					out = append(out, ri)
				}
			}
		}
	case types.VecFlat:
		if sel == nil {
			for i := 0; i < n; i++ {
				if cmpPass(v.Values[i], p.op, p.want) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, ri := range sel {
				if cmpPass(v.Values[ri], p.op, p.want) {
					out = append(out, ri)
				}
			}
		}
	case types.VecRaw:
		// Walk the undecoded stream once, skipping rows the selection
		// already killed without materializing them.
		pos, next := 0, 0
		decodeAt := func(ri int32) (types.Datum, error) {
			for int32(next) < ri {
				sz, err := types.SkipDatum(v.Raw[pos:])
				if err != nil {
					return types.Null, err
				}
				pos += sz
				next++
			}
			d, sz, err := types.DecodeDatum(v.Raw[pos:])
			if err != nil {
				return types.Null, err
			}
			pos += sz
			next++
			return d, nil
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				d, err := decodeAt(int32(i))
				if err != nil {
					return err
				}
				if cmpPass(d, p.op, p.want) {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, ri := range sel {
				d, err := decodeAt(ri)
				if err != nil {
					return err
				}
				if cmpPass(d, p.op, p.want) {
					out = append(out, ri)
				}
			}
		}
	default:
		return fmt.Errorf("expr: filter over bad vector encoding %d", v.Enc)
	}
	if out == nil {
		out = []int32{}
	}
	vb.Sel = out
	return nil
}

package expr

import (
	"reflect"
	"testing"

	"hawq/internal/types"
)

// kernelTestRows mixes kinds and NULLs to exercise both the vectorized
// kernels and their generic fallbacks.
func kernelTestRows() []types.Row {
	return []types.Row{
		{types.NewInt64(1), types.NewInt64(10), types.NewString("a")},
		{types.NewInt64(2), types.Null, types.NewString("b")},
		{types.NewInt32(3), types.NewInt64(30), types.Null},
		{types.Null, types.NewInt64(40), types.NewString("d")},
		{types.NewInt64(5), types.NewInt32(50), types.NewString("e")},
	}
}

func fillBatch(rows []types.Row) *types.Batch {
	b := types.GetBatch(0)
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}

// filterRowPath is the reference semantics FilterBatch must match.
func filterRowPath(t *testing.T, pred Expr, rows []types.Row) []types.Row {
	t.Helper()
	var out []types.Row
	for _, r := range rows {
		pass, err := EvalBool(pred, r)
		if err != nil {
			t.Fatal(err)
		}
		if pass {
			out = append(out, r)
		}
	}
	return out
}

func TestFilterBatchMatchesEvalBool(t *testing.T) {
	rows := kernelTestRows()
	col0 := &ColRef{Idx: 0, K: types.KindInt64}
	col1 := &ColRef{Idx: 1, K: types.KindInt64}
	preds := map[string]Expr{
		"kernel-gt":    NewBinOp(OpGt, col0, NewConst(types.NewInt64(2))),
		"kernel-le":    NewBinOp(OpLe, col0, NewConst(types.NewInt64(3))),
		"kernel-eq":    NewBinOp(OpEq, col1, NewConst(types.NewInt64(30))),
		"kernel-ne":    NewBinOp(OpNe, col0, NewConst(types.NewInt64(1))),
		"generic-cols": NewBinOp(OpLt, col0, col1),
		"generic-and": NewBinOp(OpAnd,
			NewBinOp(OpGt, col0, NewConst(types.NewInt64(0))),
			NewBinOp(OpLt, col1, NewConst(types.NewInt64(45)))),
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			want := filterRowPath(t, pred, rows)
			b := fillBatch(rows)
			defer types.PutBatch(b)
			if err := FilterBatch(pred, b); err != nil {
				t.Fatal(err)
			}
			if b.Len() != len(want) {
				t.Fatalf("kept %d rows, want %d", b.Len(), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(b.Row(i), want[i]) {
					t.Errorf("row %d = %v, want %v", i, b.Row(i), want[i])
				}
			}
		})
	}
}

func TestProjectBatchMatchesEval(t *testing.T) {
	rows := kernelTestRows()
	col0 := &ColRef{Idx: 0, K: types.KindInt64}
	col1 := &ColRef{Idx: 1, K: types.KindInt64}
	col2 := &ColRef{Idx: 2, K: types.KindString}
	exprSets := map[string][]Expr{
		"kernel-copy-const": {col0, NewConst(types.NewInt64(7)), col2},
		"kernel-arith":      {NewBinOp(OpAdd, col0, col1), NewBinOp(OpMul, col1, NewConst(types.NewInt64(2))), NewBinOp(OpSub, NewConst(types.NewInt64(100)), col0)},
		"kernel-div":        {NewBinOp(OpDiv, col1, col0), NewBinOp(OpDiv, col1, NewConst(types.NewInt64(0)))},
		"generic-concat":    {NewBinOp(OpConcat, col2, NewConst(types.NewString("!")))},
	}
	for name, exprs := range exprSets {
		t.Run(name, func(t *testing.T) {
			in := fillBatch(rows)
			out := types.GetBatch(0)
			defer types.PutBatch(in)
			defer types.PutBatch(out)
			if err := ProjectBatch(exprs, in, out); err != nil {
				t.Fatal(err)
			}
			if out.Len() != len(rows) {
				t.Fatalf("projected %d rows", out.Len())
			}
			for i, r := range rows {
				for j, e := range exprs {
					want, err := e.Eval(r)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(out.Row(i)[j], want) {
						t.Errorf("row %d col %d = %v, want %v", i, j, out.Row(i)[j], want)
					}
				}
			}
		})
	}
}

func TestBatchKernelsOutOfRangeColumn(t *testing.T) {
	rows := []types.Row{{types.NewInt64(1)}}
	bad := &ColRef{Idx: 5, K: types.KindInt64}
	b := fillBatch(rows)
	defer types.PutBatch(b)
	// Both paths must report the error, not panic or silently pass.
	if err := FilterBatch(NewBinOp(OpGt, bad, NewConst(types.NewInt64(0))), b); err == nil {
		t.Error("filter on out-of-range column accepted")
	}
	in := fillBatch(rows)
	out := types.GetBatch(0)
	defer types.PutBatch(in)
	defer types.PutBatch(out)
	if err := ProjectBatch([]Expr{bad}, in, out); err == nil {
		t.Error("projection of out-of-range column accepted")
	}
	if err := ProjectBatch([]Expr{NewBinOp(OpAdd, bad, NewConst(types.NewInt64(1)))}, in, out); err == nil {
		t.Error("arithmetic on out-of-range column accepted")
	}
}

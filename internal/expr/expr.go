// Package expr implements bound, executable expression trees: the form
// the planner emits after resolving parsed SQL expressions against a
// schema. Expressions evaluate over a types.Row with SQL three-valued
// logic, and the package also provides the aggregate accumulators used by
// the executor's hash-aggregation operators.
package expr

import (
	"fmt"
	"strings"

	"hawq/internal/types"
)

// Expr is a bound expression evaluable against a row.
type Expr interface {
	// Eval computes the expression over the row.
	Eval(row types.Row) (types.Datum, error)
	// Kind is the statically determined result kind.
	Kind() types.Kind
	// String renders the expression for EXPLAIN output.
	String() string
}

// ColRef references a column of the input row by position.
type ColRef struct {
	Idx  int
	K    types.Kind
	Name string
}

// Eval implements Expr.
func (c *ColRef) Eval(row types.Row) (types.Datum, error) {
	if c.Idx >= len(row) {
		return types.Null, fmt.Errorf("expr: column %d out of range (row width %d)", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

// Kind implements Expr.
func (c *ColRef) Kind() types.Kind { return c.K }

// String renders the expression as SQL-like text for EXPLAIN output.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal.
type Const struct {
	D types.Datum
}

// NewConst wraps a datum as a constant expression.
func NewConst(d types.Datum) *Const { return &Const{D: d} }

// Eval implements Expr.
func (c *Const) Eval(types.Row) (types.Datum, error) { return c.D, nil }

// Kind implements Expr.
func (c *Const) Kind() types.Kind { return c.D.K }

// String renders the expression as SQL-like text for EXPLAIN output.
func (c *Const) String() string {
	if c.D.K == types.KindString {
		return "'" + c.D.S + "'"
	}
	return c.D.String()
}

// BinOpKind enumerates binary operators.
type BinOpKind uint8

// Binary operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "||"}

// String returns the SQL spelling of the operator.
func (o BinOpKind) String() string { return binOpNames[o] }

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (o BinOpKind) IsComparison() bool { return o >= OpEq && o <= OpGe }

// BinOp applies a binary operator.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

// NewBinOp builds a binary operation node.
func NewBinOp(op BinOpKind, l, r Expr) *BinOp { return &BinOp{Op: op, L: l, R: r} }

// Kind implements Expr.
func (b *BinOp) Kind() types.Kind {
	switch {
	case b.Op.IsComparison(), b.Op == OpAnd, b.Op == OpOr:
		return types.KindBool
	case b.Op == OpConcat:
		return types.KindString
	default:
		lk, rk := b.L.Kind(), b.R.Kind()
		if lk == types.KindDate || rk == types.KindDate {
			if lk == rk {
				return types.KindInt64
			}
			return types.KindDate
		}
		if lk == types.KindFloat64 || rk == types.KindFloat64 || b.Op == OpDiv && (lk == types.KindDecimal || rk == types.KindDecimal) {
			return types.KindFloat64
		}
		if lk == types.KindDecimal || rk == types.KindDecimal {
			return types.KindDecimal
		}
		return types.KindInt64
	}
}

// String renders the expression as SQL-like text for EXPLAIN output.
func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Eval implements Expr with SQL three-valued logic for AND/OR and
// NULL-propagation elsewhere.
func (b *BinOp) Eval(row types.Row) (types.Datum, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		return b.evalLogical(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if b.Op.IsComparison() {
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		c := types.Compare(l, r)
		switch b.Op {
		case OpEq:
			return types.NewBool(c == 0), nil
		case OpNe:
			return types.NewBool(c != 0), nil
		case OpLt:
			return types.NewBool(c < 0), nil
		case OpLe:
			return types.NewBool(c <= 0), nil
		case OpGt:
			return types.NewBool(c > 0), nil
		case OpGe:
			return types.NewBool(c >= 0), nil
		}
	}
	switch b.Op {
	case OpAdd:
		return types.Add(l, r), nil
	case OpSub:
		return types.Sub(l, r), nil
	case OpMul:
		return types.Mul(l, r), nil
	case OpDiv:
		return types.Div(l, r), nil
	case OpMod:
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		if r.Int() == 0 {
			return types.Null, nil
		}
		return types.NewInt64(l.Int() % r.Int()), nil
	case OpConcat:
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		return types.NewString(l.String() + r.String()), nil
	}
	return types.Null, fmt.Errorf("expr: bad binary op %d", b.Op)
}

func (b *BinOp) evalLogical(row types.Row) (types.Datum, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	// Short-circuit where 3VL permits.
	if b.Op == OpAnd && !l.IsNull() && !l.Bool() {
		return types.NewBool(false), nil
	}
	if b.Op == OpOr && !l.IsNull() && l.Bool() {
		return types.NewBool(true), nil
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if b.Op == OpAnd {
		switch {
		case !r.IsNull() && !r.Bool():
			return types.NewBool(false), nil
		case l.IsNull() || r.IsNull():
			return types.Null, nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case !r.IsNull() && r.Bool():
		return types.NewBool(true), nil
	case l.IsNull() || r.IsNull():
		return types.Null, nil
	default:
		return types.NewBool(false), nil
	}
}

// Not negates a boolean expression (NULL stays NULL).
type Not struct {
	E Expr
}

// Eval implements Expr.
func (n *Not) Eval(row types.Row) (types.Datum, error) {
	v, err := n.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	return types.NewBool(!v.Bool()), nil
}

// Kind implements Expr.
func (n *Not) Kind() types.Kind { return types.KindBool }

// String renders the expression as SQL-like text for EXPLAIN output.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Neg arithmetically negates a numeric expression.
type Neg struct {
	E Expr
}

// Eval implements Expr.
func (n *Neg) Eval(row types.Row) (types.Datum, error) {
	v, err := n.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	return types.Neg(v), nil
}

// Kind implements Expr.
func (n *Neg) Kind() types.Kind { return n.E.Kind() }

// String renders the expression as SQL-like text for EXPLAIN output.
func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.E) }

// IsNull tests for SQL NULL; with Negate it is IS NOT NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval implements Expr.
func (i *IsNull) Eval(row types.Row) (types.Datum, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != i.Negate), nil
}

// Kind implements Expr.
func (i *IsNull) Kind() types.Kind { return types.KindBool }

// String renders the expression as SQL-like text for EXPLAIN output.
func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// Like implements the SQL LIKE predicate with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// Eval implements Expr.
func (l *Like) Eval(row types.Row) (types.Datum, error) {
	v, err := l.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	m := likeMatch(v.Str(), l.Pattern)
	return types.NewBool(m != l.Negate), nil
}

// Kind implements Expr.
func (l *Like) Kind() types.Kind { return types.KindBool }

// String renders the expression as SQL-like text for EXPLAIN output.
func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", l.E, op, l.Pattern)
}

// likeMatch matches s against a SQL LIKE pattern using a two-pointer scan
// with backtracking on '%' (the classic wildcard algorithm).
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, mark = pi, si
			pi++
		case star >= 0:
			mark++
			si = mark
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// InList implements "e IN (c1, c2, ...)" over constant or computed items.
type InList struct {
	E      Expr
	Items  []Expr
	Negate bool
}

// Eval implements Expr.
func (in *InList) Eval(row types.Row) (types.Datum, error) {
	v, err := in.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	sawNull := false
	for _, item := range in.Items {
		iv, err := item.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if types.Compare(v, iv) == 0 {
			return types.NewBool(!in.Negate), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(in.Negate), nil
}

// Kind implements Expr.
func (in *InList) Kind() types.Kind { return types.KindBool }

// String renders the expression as SQL-like text for EXPLAIN output.
func (in *InList) String() string {
	items := make([]string, len(in.Items))
	for i, it := range in.Items {
		items[i] = it.String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", in.E, op, strings.Join(items, ", "))
}

// Between implements "e BETWEEN lo AND hi".
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// Eval implements Expr.
func (b *Between) Eval(row types.Row) (types.Datum, error) {
	v, err := b.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	lo, err := b.Lo.Eval(row)
	if err != nil || lo.IsNull() {
		return types.Null, err
	}
	hi, err := b.Hi.Eval(row)
	if err != nil || hi.IsNull() {
		return types.Null, err
	}
	in := types.Compare(v, lo) >= 0 && types.Compare(v, hi) <= 0
	return types.NewBool(in != b.Negate), nil
}

// Kind implements Expr.
func (b *Between) Kind() types.Kind { return types.KindBool }

// String renders the expression as SQL-like text for EXPLAIN output.
func (b *Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.E, b.Lo, b.Hi)
}

// When is one arm of a CASE expression.
type When struct {
	Cond   Expr
	Result Expr
}

// Case implements searched CASE WHEN ... THEN ... ELSE ... END.
type Case struct {
	Whens []When
	Else  Expr // nil means ELSE NULL
}

// Eval implements Expr.
func (c *Case) Eval(row types.Row) (types.Datum, error) {
	for _, w := range c.Whens {
		v, err := w.Cond.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if !v.IsNull() && v.Bool() {
			return w.Result.Eval(row)
		}
	}
	if c.Else == nil {
		return types.Null, nil
	}
	return c.Else.Eval(row)
}

// Kind implements Expr.
func (c *Case) Kind() types.Kind {
	if len(c.Whens) > 0 {
		return c.Whens[0].Result.Kind()
	}
	if c.Else != nil {
		return c.Else.Kind()
	}
	return types.KindNull
}

// String renders the expression as SQL-like text for EXPLAIN output.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// Cast converts its operand to a target kind at runtime.
type Cast struct {
	E  Expr
	To types.Kind
}

// Eval implements Expr.
func (c *Cast) Eval(row types.Row) (types.Datum, error) {
	v, err := c.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.Cast(v, c.To)
}

// Kind implements Expr.
func (c *Cast) Kind() types.Kind { return c.To }

// String renders the expression as SQL-like text for EXPLAIN output.
func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }

// EvalBool evaluates a predicate, mapping NULL to false (SQL WHERE
// semantics).
func EvalBool(e Expr, row types.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}

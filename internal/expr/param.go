package expr

import (
	"fmt"

	"hawq/internal/types"
)

// Param is a $n placeholder in a generic (parameterized) plan. The
// planner emits Param nodes when planning a prepared statement without
// argument values so the plan can be cached and reused; BindParams fills
// V on a freshly decoded copy before dispatch. Fields are exported so the
// node survives the gob plan codec.
type Param struct {
	Idx   int        // 0-based parameter index
	K     types.Kind // inferred result kind; types.KindNull when unknown
	V     types.Datum
	Bound bool
}

// Eval implements Expr. Evaluating an unbound parameter is a protocol
// error (EXECUTE must bind every placeholder first).
func (p *Param) Eval(types.Row) (types.Datum, error) {
	if !p.Bound {
		return types.Null, fmt.Errorf("expr: parameter $%d has no value", p.Idx+1)
	}
	return p.V, nil
}

// Kind implements Expr.
func (p *Param) Kind() types.Kind { return p.K }

// String renders the expression as SQL-like text for EXPLAIN output.
func (p *Param) String() string { return fmt.Sprintf("$%d", p.Idx+1) }

// BindParams binds every Param under e to its positional value. Values
// must already be cast to the parameter's inferred kind.
func BindParams(e Expr, vals []types.Datum) error {
	var err error
	Walk(e, func(x Expr) {
		p, ok := x.(*Param)
		if !ok {
			return
		}
		if p.Idx < 0 || p.Idx >= len(vals) {
			if err == nil {
				err = fmt.Errorf("expr: parameter $%d out of range (%d values)", p.Idx+1, len(vals))
			}
			return
		}
		p.V = vals[p.Idx]
		p.Bound = true
	})
	return err
}

package expr

import (
	"hawq/internal/types"
)

// FilterBatch evaluates pred over every row of b and compacts b in place
// to the rows where the predicate is true (NULL counts as false, as in
// SQL WHERE). Surviving rows keep their relative order. The common
// pattern <col> <cmp> <literal> runs through a vectorized kernel that
// skips per-row expression dispatch.
func FilterBatch(pred Expr, b *types.Batch) error {
	if k := filterKernel(pred); k != nil && k(b) {
		return nil
	}
	k := 0
	for i := 0; i < b.Len(); i++ {
		pass, err := EvalBool(pred, b.Row(i))
		if err != nil {
			return err
		}
		if pass {
			b.MoveRow(k, i)
			k++
		}
	}
	b.Truncate(k)
	return nil
}

// filterKernel compiles the pattern <ColRef> <comparison> <non-null
// Const> into an in-place compaction loop. The returned kernel reports
// whether it handled the batch (false sends the caller to the generic
// path, e.g. on a column index beyond the batch width). nil means the
// predicate doesn't match the pattern.
func filterKernel(pred Expr) func(*types.Batch) bool {
	bo, ok := pred.(*BinOp)
	if !ok || !bo.Op.IsComparison() {
		return nil
	}
	col, ok := bo.L.(*ColRef)
	if !ok {
		return nil
	}
	cst, ok := bo.R.(*Const)
	if !ok || cst.D.IsNull() {
		return nil
	}
	op, want := bo.Op, cst.D
	return func(b *types.Batch) bool {
		if col.Idx >= b.Width() {
			return false
		}
		k := 0
		n := b.Len()
		for i := 0; i < n; i++ {
			d := b.Row(i)[col.Idx]
			if d.IsNull() {
				// NULL comparison is NULL, which filters out.
				continue
			}
			var c int
			if d.K == types.KindInt64 && want.K == types.KindInt64 {
				switch {
				case d.I < want.I:
					c = -1
				case d.I > want.I:
					c = 1
				}
			} else {
				c = types.Compare(d, want)
			}
			var pass bool
			switch op {
			case OpEq:
				pass = c == 0
			case OpNe:
				pass = c != 0
			case OpLt:
				pass = c < 0
			case OpLe:
				pass = c <= 0
			case OpGt:
				pass = c > 0
			case OpGe:
				pass = c >= 0
			}
			if pass {
				b.MoveRow(k, i)
				k++
			}
		}
		b.Truncate(k)
		return true
	}
}

// ProjectBatch evaluates exprs over every row of in, writing the results
// into out (which is reset to width len(exprs) first). in and out must
// be distinct batches. Column copies, literals, and simple arithmetic
// over columns and literals run through vectorized kernels, one output
// column at a time; anything else falls back to per-row Eval.
func ProjectBatch(exprs []Expr, in, out *types.Batch) error {
	out.Reset(len(exprs))
	out.Extend(in.Len())
	for j, e := range exprs {
		if k := projectKernel(e); k != nil && k(in, out, j) {
			continue
		}
		for i := 0; i < in.Len(); i++ {
			v, err := e.Eval(in.Row(i))
			if err != nil {
				return err
			}
			out.Row(i)[j] = v
		}
	}
	return nil
}

// batchOperand is a compiled ColRef or Const operand of an arithmetic
// kernel: either a column index or an inline literal.
type batchOperand struct {
	col int // -1 when the operand is the literal d
	d   types.Datum
}

func compileOperand(e Expr) (batchOperand, bool) {
	switch v := e.(type) {
	case *ColRef:
		return batchOperand{col: v.Idx}, true
	case *Const:
		return batchOperand{col: -1, d: v.D}, true
	}
	return batchOperand{}, false
}

// projectKernel compiles one projection expression into a column-wise
// loop over the batch, or nil when the expression shape isn't covered.
// A kernel returning false (column out of range) sends the caller to
// the generic per-row path for its error reporting.
func projectKernel(e Expr) func(in, out *types.Batch, j int) bool {
	switch v := e.(type) {
	case *ColRef:
		idx := v.Idx
		return func(in, out *types.Batch, j int) bool {
			if idx >= in.Width() {
				return false
			}
			for i, n := 0, in.Len(); i < n; i++ {
				out.Row(i)[j] = in.Row(i)[idx]
			}
			return true
		}
	case *Const:
		d := v.D
		return func(in, out *types.Batch, j int) bool {
			for i, n := 0, in.Len(); i < n; i++ {
				out.Row(i)[j] = d
			}
			return true
		}
	case *BinOp:
		var f func(a, b types.Datum) types.Datum
		switch v.Op {
		case OpAdd:
			f = types.Add
		case OpSub:
			f = types.Sub
		case OpMul:
			f = types.Mul
		case OpDiv:
			f = types.Div
		default:
			return nil
		}
		op := v.Op
		l, lok := compileOperand(v.L)
		r, rok := compileOperand(v.R)
		if !lok || !rok {
			return nil
		}
		return func(in, out *types.Batch, j int) bool {
			if l.col >= in.Width() || r.col >= in.Width() {
				return false
			}
			for i, n := 0, in.Len(); i < n; i++ {
				row := in.Row(i)
				ld, rd := l.d, r.d
				if l.col >= 0 {
					ld = row[l.col]
				}
				if r.col >= 0 {
					rd = row[r.col]
				}
				if ld.K == types.KindInt64 && rd.K == types.KindInt64 && op != OpDiv {
					// Matches types.arith's pure-integer branch without
					// the kind dispatch.
					var x int64
					switch op {
					case OpAdd:
						x = ld.I + rd.I
					case OpSub:
						x = ld.I - rd.I
					case OpMul:
						x = ld.I * rd.I
					}
					out.Row(i)[j] = types.NewInt64(x)
				} else {
					out.Row(i)[j] = f(ld, rd)
				}
			}
			return true
		}
	}
	return nil
}

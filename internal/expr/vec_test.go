package expr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hawq/internal/types"
)

// buildVecBatch encodes the column-major values into one VecBatch,
// choosing the per-column encoding by colEnc[j].
func buildVecBatch(cols [][]types.Datum, colEnc []types.VecEnc) *types.VecBatch {
	n := len(cols[0])
	vb := types.GetVecBatch(len(cols))
	vb.SetLen(n)
	for j, vals := range cols {
		v := &vb.Cols[j]
		v.N = n
		switch colEnc[j] {
		case types.VecFlat:
			v.Enc = types.VecFlat
			v.Values = append(v.Values, vals...)
		case types.VecRaw:
			v.Enc = types.VecRaw
			var raw []byte
			for _, d := range vals {
				raw = types.EncodeDatum(raw, d)
			}
			v.Raw = raw
		case types.VecRLE:
			v.Enc = types.VecRLE
			for i := 0; i < n; i++ {
				if len(v.Values) > 0 && vals[i] == v.Values[len(v.Values)-1] {
					v.Runs[len(v.Runs)-1]++
					continue
				}
				v.Values = append(v.Values, vals[i])
				v.Runs = append(v.Runs, 1)
			}
		case types.VecDict:
			v.Enc = types.VecDict
			index := map[types.Datum]int32{}
			for _, d := range vals {
				c, ok := index[d]
				if !ok {
					c = int32(len(v.Values))
					index[d] = c
					v.Values = append(v.Values, d)
				}
				v.Codes = append(v.Codes, c)
			}
		}
	}
	return vb
}

// lowCardDatum draws from a small domain so predicates hit runs and
// dictionary entries, including NULLs.
func lowCardDatum(rng *rand.Rand) types.Datum {
	switch rng.Intn(5) {
	case 0:
		return types.Null
	case 1:
		return types.NewInt64(rng.Int63n(5))
	case 2:
		return types.NewString(fmt.Sprintf("s%d", rng.Intn(4)))
	case 3:
		return types.NewDate(int32(rng.Intn(4)))
	default:
		return types.NewInt64(rng.Int63n(3) + 100)
	}
}

// TestFilterVecMatchesFilterBatch is the property test: for random
// batches, random per-column encodings, and random conjunctions of
// kernelizable predicates, filtering in the encoded domain then
// materializing must be byte-identical to materializing then running
// the decoded-path FilterBatch.
func TestFilterVecMatchesFilterBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	encs := []types.VecEnc{types.VecFlat, types.VecRaw, types.VecRLE, types.VecDict}
	for trial := 0; trial < 300; trial++ {
		ncols := 1 + rng.Intn(3)
		n := 1 + rng.Intn(200)
		cols := make([][]types.Datum, ncols)
		colKind := make([]int, ncols)
		for j := range cols {
			colKind[j] = rng.Intn(2)
			cols[j] = make([]types.Datum, n)
			for i := range cols[j] {
				if colKind[j] == 0 {
					// Sorted-ish low-cardinality ints: long runs.
					cols[j][i] = types.NewInt64(int64(i / (1 + rng.Intn(20))))
				} else {
					cols[j][i] = lowCardDatum(rng)
				}
			}
		}
		colEnc := make([]types.VecEnc, ncols)
		for j := range colEnc {
			colEnc[j] = encs[rng.Intn(len(encs))]
			if colEnc[j] == types.VecRLE {
				// RLE requires comparable adjacent values; any column
				// works, runs may just be length 1.
				continue
			}
		}
		// Build a conjunction of up to 3 kernelizable predicates over
		// class-homogeneous columns (types.Compare panics across
		// classes, and the planner never emits such comparisons).
		nPreds := 1 + rng.Intn(3)
		var pred Expr
		for p := 0; p < nPreds; p++ {
			col := rng.Intn(ncols)
			op := []BinOpKind{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)]
			var want types.Datum
			if colKind[col] == 0 {
				want = types.NewInt64(rng.Int63n(10))
			} else {
				// Pick a constant in the class of the column's first
				// non-NULL value; skip columns mixing classes.
				want = types.NewInt64(rng.Int63n(5))
				for _, d := range cols[col] {
					if !d.IsNull() {
						switch d.K {
						case types.KindString:
							want = types.NewString(fmt.Sprintf("s%d", rng.Intn(4)))
						case types.KindDate:
							want = types.NewDate(int32(rng.Intn(4)))
						}
						break
					}
				}
				ok := true
				for _, d := range cols[col] {
					if !d.IsNull() && !sameCompareClass(d.K, want.K) {
						ok = false
						break
					}
				}
				if !ok {
					continue // fewer conjuncts this trial
				}
			}
			c := &BinOp{Op: op, L: &ColRef{Idx: col}, R: &Const{D: want}}
			if pred == nil {
				pred = c
			} else {
				pred = &BinOp{Op: OpAnd, L: pred, R: c}
			}
		}
		if pred == nil {
			continue
		}

		// Reference: materialize everything, then FilterBatch.
		vbRef := buildVecBatch(cols, colEnc)
		ref := types.GetBatch(0)
		if err := vbRef.Materialize(ref); err != nil {
			t.Fatal(err)
		}
		types.PutVecBatch(vbRef)
		if err := FilterBatch(pred, ref); err != nil {
			t.Fatal(err)
		}

		// Encoded path: FilterVec then materialize survivors.
		vb := buildVecBatch(cols, colEnc)
		residual, err := FilterVec(pred, vb)
		if err != nil {
			t.Fatal(err)
		}
		if residual != nil {
			t.Fatalf("trial %d: kernelizable predicate left residual %v", trial, residual)
		}
		got := types.GetBatch(0)
		if err := vb.Materialize(got); err != nil {
			t.Fatal(err)
		}
		types.PutVecBatch(vb)

		if got.Len() != ref.Len() {
			t.Fatalf("trial %d (enc %v): vec path kept %d rows, decoded path %d", trial, colEnc, got.Len(), ref.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if !reflect.DeepEqual(got.Row(i), ref.Row(i)) {
				t.Fatalf("trial %d row %d: %v != %v", trial, i, got.Row(i), ref.Row(i))
			}
		}
		types.PutBatch(ref)
		types.PutBatch(got)
	}
}

// sameCompareClass mirrors types.Compare's comparability classes.
func sameCompareClass(a, b types.Kind) bool {
	num := func(k types.Kind) bool {
		return k == types.KindInt32 || k == types.KindInt64 || k == types.KindFloat64 || k == types.KindDecimal
	}
	str := func(k types.Kind) bool { return k == types.KindString || k == types.KindBytes }
	switch {
	case num(a) && num(b), str(a) && str(b):
		return true
	default:
		return a == b
	}
}

// TestFilterVecResidual checks non-kernelizable conjuncts come back as
// the residual while kernelizable ones are consumed.
func TestFilterVecResidual(t *testing.T) {
	cols := [][]types.Datum{{types.NewInt64(1), types.NewInt64(2), types.NewInt64(3)}}
	vb := buildVecBatch(cols, []types.VecEnc{types.VecFlat})
	defer types.PutVecBatch(vb)
	kernel := &BinOp{Op: OpGt, L: &ColRef{Idx: 0}, R: &Const{D: types.NewInt64(1)}}
	// col+0 > 1 has a non-Const/non-ColRef shape on the left: residual.
	hard := &BinOp{Op: OpGt, L: &BinOp{Op: OpAdd, L: &ColRef{Idx: 0}, R: &Const{D: types.NewInt64(0)}}, R: &Const{D: types.NewInt64(1)}}
	residual, err := FilterVec(&BinOp{Op: OpAnd, L: kernel, R: hard}, vb)
	if err != nil {
		t.Fatal(err)
	}
	if residual == nil {
		t.Fatal("non-kernelizable conjunct was not returned as residual")
	}
	if got := vb.SelCount(); got != 2 {
		t.Fatalf("kernel conjunct kept %d rows, want 2", got)
	}
	if VecFilterable(kernel, 1) == false {
		t.Error("kernel shape reported unfilterable")
	}
	if VecFilterable(hard, 1) {
		t.Error("hard shape reported filterable")
	}
	if !VecFilterable(nil, 0) {
		t.Error("nil predicate should be filterable")
	}
}

// TestConjunctsAndAll round-trips predicate decomposition.
func TestConjunctsAndAll(t *testing.T) {
	a := &BinOp{Op: OpEq, L: &ColRef{Idx: 0}, R: &Const{D: types.NewInt64(1)}}
	b := &BinOp{Op: OpLt, L: &ColRef{Idx: 1}, R: &Const{D: types.NewInt64(2)}}
	c := &BinOp{Op: OpGt, L: &ColRef{Idx: 2}, R: &Const{D: types.NewInt64(3)}}
	all := Conjuncts(&BinOp{Op: OpAnd, L: &BinOp{Op: OpAnd, L: a, R: b}, R: c}, nil)
	if len(all) != 3 || all[0] != Expr(a) || all[1] != Expr(b) || all[2] != Expr(c) {
		t.Fatalf("Conjuncts returned %v", all)
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if AndAll([]Expr{a}) != Expr(a) {
		t.Error("single conjunct should come back unchanged")
	}
}

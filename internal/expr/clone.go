package expr

// Clone returns a deep copy of e: no node is shared with the original,
// so binding parameters or a clock into the copy cannot be observed
// through the source tree. Plan caching depends on this — the cached
// plan's expressions stay pristine while every execution mutates its
// own clone. The second result is false when e contains a node type
// Clone does not know (the copy is unusable and the caller must fall
// back to building a fresh expression).
func Clone(e Expr) (Expr, bool) {
	if e == nil {
		return nil, true
	}
	switch v := e.(type) {
	case *ColRef:
		c := *v
		return &c, true
	case *Const:
		c := *v
		return &c, true
	case *Param:
		c := *v
		return &c, true
	case *BinOp:
		l, ok1 := Clone(v.L)
		r, ok2 := Clone(v.R)
		return &BinOp{Op: v.Op, L: l, R: r}, ok1 && ok2
	case *Not:
		in, ok := Clone(v.E)
		return &Not{E: in}, ok
	case *Neg:
		in, ok := Clone(v.E)
		return &Neg{E: in}, ok
	case *IsNull:
		in, ok := Clone(v.E)
		return &IsNull{E: in, Negate: v.Negate}, ok
	case *Like:
		in, ok := Clone(v.E)
		return &Like{E: in, Pattern: v.Pattern, Negate: v.Negate}, ok
	case *InList:
		in, ok := Clone(v.E)
		items := make([]Expr, len(v.Items))
		for i, it := range v.Items {
			var ok2 bool
			items[i], ok2 = Clone(it)
			ok = ok && ok2
		}
		return &InList{E: in, Items: items, Negate: v.Negate}, ok
	case *Between:
		ee, ok1 := Clone(v.E)
		lo, ok2 := Clone(v.Lo)
		hi, ok3 := Clone(v.Hi)
		return &Between{E: ee, Lo: lo, Hi: hi, Negate: v.Negate}, ok1 && ok2 && ok3
	case *Case:
		ok := true
		whens := make([]When, len(v.Whens))
		for i, w := range v.Whens {
			var ok2, ok3 bool
			whens[i].Cond, ok2 = Clone(w.Cond)
			whens[i].Result, ok3 = Clone(w.Result)
			ok = ok && ok2 && ok3
		}
		els, ok4 := Clone(v.Else)
		return &Case{Whens: whens, Else: els}, ok && ok4
	case *Cast:
		in, ok := Clone(v.E)
		return &Cast{E: in, To: v.To}, ok
	case *FuncCall:
		ok := true
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			var ok2 bool
			args[i], ok2 = Clone(a)
			ok = ok && ok2
		}
		// impl is the stateless builtin table entry — sharing it skips
		// RebindFuncs on the clone; clk is rebound per execution anyway.
		return &FuncCall{Name: v.Name, Args: args, impl: v.impl, clk: v.clk}, ok
	default:
		return nil, false
	}
}

// CloneAggSpec deep-copies one aggregate spec (its argument expression
// is the only tree-valued field).
func CloneAggSpec(s AggSpec) (AggSpec, bool) {
	arg, ok := Clone(s.Arg)
	return AggSpec{Kind: s.Kind, Arg: arg, Distinct: s.Distinct}, ok
}

package expr

import (
	"fmt"

	"hawq/internal/clock"
)

// Walk visits e and every sub-expression in evaluation order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *ColRef, *Const, *Param:
	case *BinOp:
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *Not:
		Walk(v.E, fn)
	case *Neg:
		Walk(v.E, fn)
	case *IsNull:
		Walk(v.E, fn)
	case *Like:
		Walk(v.E, fn)
	case *InList:
		Walk(v.E, fn)
		for _, item := range v.Items {
			Walk(item, fn)
		}
	case *Between:
		Walk(v.E, fn)
		Walk(v.Lo, fn)
		Walk(v.Hi, fn)
	case *Case:
		for _, w := range v.Whens {
			Walk(w.Cond, fn)
			Walk(w.Result, fn)
		}
		Walk(v.Else, fn)
	case *Cast:
		Walk(v.E, fn)
	case *FuncCall:
		for _, a := range v.Args {
			Walk(a, fn)
		}
	}
}

// Rebind restores the function implementation pointer after the
// expression crossed a serialization boundary (self-described plans ship
// only the function name; implementations live in each segment's
// read-only bootstrap store of native metadata, §3.1).
func (f *FuncCall) Rebind() error {
	impl, ok := builtins[f.Name]
	if !ok {
		return fmt.Errorf("expr: unknown function %s after decode", f.Name)
	}
	f.impl = impl
	return nil
}

// RebindFuncs walks an expression and rebinds every FuncCall.
func RebindFuncs(e Expr) error {
	var err error
	Walk(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok && f.impl == nil {
			if e2 := f.Rebind(); e2 != nil && err == nil {
				err = e2
			}
		}
	})
	return err
}

// BindClock injects the query's clock into every FuncCall under e, so
// time-dependent builtins (current_date) read executor time instead of
// the wall. A nil clock leaves evaluation on clock.Wall.
func BindClock(e Expr, c clock.Clock) {
	Walk(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok {
			f.clk = c
		}
	})
}

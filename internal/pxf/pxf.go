// Package pxf implements the Pivotal Extension Framework (§6): SQL
// access to external data stores through pluggable connectors. The
// plugin API mirrors §6.4 — Fragmenter, Accessor, Resolver, and the
// optional Analyzer — and the engine binding assigns fragments to
// segments with locality awareness and forwards pushed-down filters
// (§6.3).
//
// Built-in connectors: delimited text and JSON files on HDFS, a
// sequence-file-like binary record format, and an HBase-style in-memory
// store with region fragments and row-key filter pushdown.
package pxf

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"

	"hawq/internal/catalog"
	"hawq/internal/hdfs"
	"hawq/internal/plan"
	"hawq/internal/types"
)

// Location is a parsed pxf:// URI:
//
//	pxf://<service>/<path>?profile=<name>&k=v...
type Location struct {
	Service string
	Path    string
	Profile string
	Options map[string]string
	Raw     string
}

// ParseLocation parses a pxf:// external table location (§6.1).
func ParseLocation(raw string) (*Location, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("pxf: bad location %q: %w", raw, err)
	}
	if u.Scheme != "pxf" {
		return nil, fmt.Errorf("pxf: location %q must use the pxf:// scheme", raw)
	}
	loc := &Location{
		Service: u.Host,
		Path:    "/" + strings.TrimPrefix(u.Path, "/"),
		Options: map[string]string{},
		Raw:     raw,
	}
	for k, vs := range u.Query() {
		if len(vs) > 0 {
			loc.Options[strings.ToLower(k)] = vs[0]
		}
	}
	loc.Profile = loc.Options["profile"]
	if loc.Profile == "" {
		return nil, fmt.Errorf("pxf: location %q has no profile", raw)
	}
	return loc, nil
}

// Fragment is one parallel unit of work: an HDFS block, an HBase region,
// or whatever the connector splits its source into (§6.3).
type Fragment struct {
	// Index is the fragment's position in the source.
	Index int
	// Source names the piece (a file path, a region name).
	Source string
	// Offset/Length bound the fragment within Source when applicable.
	Offset, Length int64
	// Hosts are locality hints (DataNode names holding the data).
	Hosts []string
}

// Request carries the scan context to a connector: location, the target
// schema, and the pushed-down filter rendered as text (§6.3; connectors
// are free to ignore it — the executor re-applies the filter).
type Request struct {
	Loc    *Location
	Schema *types.Schema
	// Filter is the scan predicate pushed down by the planner ("" when
	// none).
	Filter string
}

// Fragmenter lists a source's fragments (§6.4).
type Fragmenter interface {
	Fragments(req *Request) ([]Fragment, error)
}

// Accessor reads all records of one fragment (§6.4). Records are opaque
// bytes interpreted by the Resolver.
type Accessor interface {
	ReadFragment(req *Request, f Fragment, emit func(record []byte) error) error
}

// Resolver deserializes one record into a row matching the request
// schema (§6.4).
type Resolver interface {
	Resolve(req *Request, record []byte) (types.Row, error)
}

// Analyzer is the optional statistics plugin (§6.4).
type Analyzer interface {
	Estimate(req *Request) (rows, bytes int64, err error)
}

// Connector bundles the three mandatory plugins.
type Connector interface {
	Fragmenter
	Accessor
	Resolver
}

// Engine is the PXF runtime bound into the executor: it resolves
// profiles, assigns fragments to segments with locality awareness, and
// drives the plugin pipeline.
type Engine struct {
	FS *hdfs.FileSystem

	mu       sync.RWMutex
	profiles map[string]Connector
}

// NewEngine creates a PXF engine with the built-in connectors
// registered: "text", "csv", "json", "sequence" (HDFS formats) and
// "hbase" when an HBase store is supplied via RegisterHBase.
func NewEngine(fs *hdfs.FileSystem) *Engine {
	e := &Engine{FS: fs, profiles: map[string]Connector{}}
	e.Register("text", &TextConnector{FS: fs, Delimiter: "|"})
	e.Register("csv", &TextConnector{FS: fs, Delimiter: ","})
	e.Register("json", &JSONConnector{FS: fs})
	e.Register("sequence", &SeqConnector{FS: fs})
	return e
}

// Register adds a connector under a profile name (§6.4: user-built
// connectors plug in the same way).
func (e *Engine) Register(profile string, c Connector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.profiles[strings.ToLower(profile)] = c
}

// connector resolves a profile.
func (e *Engine) connector(profile string) (Connector, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.profiles[strings.ToLower(profile)]
	if !ok {
		return nil, fmt.Errorf("pxf: no connector for profile %q", profile)
	}
	return c, nil
}

// assignFragments maps fragments to segments: fragments whose locality
// hints name a segment's collocated DataNode go to that segment, the
// rest round-robin (§6.3 data locality awareness).
func assignFragments(frags []Fragment, numSegments int) map[int][]Fragment {
	out := make(map[int][]Fragment, numSegments)
	rr := 0
	for _, f := range frags {
		target := -1
		for _, h := range f.Hosts {
			// DataNode names are "dn<i>"; segment i is collocated with
			// dn(i % numDataNodes). Prefer the exact match.
			var dn int
			if _, err := fmt.Sscanf(h, "dn%d", &dn); err == nil && dn < numSegments {
				target = dn
				break
			}
		}
		if target < 0 {
			target = rr % numSegments
			rr++
		}
		out[target] = append(out[target], f)
	}
	return out
}

// ScanExternal implements the executor binding: reads the fragments
// assigned to one segment and emits rows projected to scan.Proj order.
func (e *Engine) ScanExternal(scan *plan.ExternalScan, segment int, fn func(types.Row) error) error {
	loc, err := ParseLocation(scan.Table.Location)
	if err != nil {
		return err
	}
	c, err := e.connector(loc.Profile)
	if err != nil {
		return err
	}
	req := &Request{Loc: loc, Schema: scan.Table.Schema, Filter: scan.PushedFilter}
	frags, err := c.Fragments(req)
	if err != nil {
		return err
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].Index < frags[j].Index })
	mine := assignFragments(frags, scan.NumSegments)[segment]
	for _, f := range mine {
		err := c.ReadFragment(req, f, func(record []byte) error {
			row, err := c.Resolve(req, record)
			if err != nil {
				return err
			}
			out := make(types.Row, len(scan.Proj))
			for i, idx := range scan.Proj {
				out[i] = row[idx]
			}
			return fn(out)
		})
		if err != nil {
			return fmt.Errorf("pxf: fragment %s[%d]: %w", f.Source, f.Index, err)
		}
	}
	return nil
}

// AnalyzeExternal implements the engine's optional statistics hook: it
// consults the connector's Analyzer when present (§6.3, ANALYZE on PXF
// tables), falling back to a full count through the Accessor.
func (e *Engine) AnalyzeExternal(desc *catalog.TableDesc) (int64, int64, error) {
	loc, err := ParseLocation(desc.Location)
	if err != nil {
		return 0, 0, err
	}
	c, err := e.connector(loc.Profile)
	if err != nil {
		return 0, 0, err
	}
	req := &Request{Loc: loc, Schema: desc.Schema}
	if an, ok := c.(Analyzer); ok {
		return an.Estimate(req)
	}
	frags, err := c.Fragments(req)
	if err != nil {
		return 0, 0, err
	}
	var rows, bytes int64
	for _, f := range frags {
		err := c.ReadFragment(req, f, func(record []byte) error {
			rows++
			bytes += int64(len(record))
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
	}
	return rows, bytes, nil
}

package pxf

import (
	"encoding/binary"
	"fmt"

	"hawq/internal/hdfs"
	"hawq/internal/types"
)

// SeqConnector reads a SequenceFile-like binary record format: a stream
// of length-prefixed records, each holding one encoded row (§6 lists
// Sequence files among the built-in profiles). WriteSeqFile produces the
// format, mirroring the open Input/OutputFormats of §2.1 that let
// MapReduce jobs exchange data with HAWQ without SQL.
type SeqConnector struct {
	FS *hdfs.FileSystem
}

const seqMagic = 0x53454131 // "SEA1"

// Fragments implements Fragmenter (file granularity with locality).
func (c *SeqConnector) Fragments(req *Request) ([]Fragment, error) {
	files, err := listFiles(c.FS, req.Loc.Path)
	if err != nil {
		return nil, fmt.Errorf("pxf sequence: %w", err)
	}
	var out []Fragment
	for i, f := range files {
		frag := Fragment{Index: i, Source: f.Path, Length: f.Length}
		if locs, err := c.FS.BlockLocations(f.Path); err == nil && len(locs) > 0 {
			frag.Hosts = locs[0].Hosts
		}
		out = append(out, frag)
	}
	return out, nil
}

// ReadFragment implements Accessor.
func (c *SeqConnector) ReadFragment(req *Request, f Fragment, emit func([]byte) error) error {
	data, err := c.FS.ReadFile(f.Source)
	if err != nil {
		return err
	}
	if len(data) < 4 || binary.BigEndian.Uint32(data) != seqMagic {
		return fmt.Errorf("pxf sequence: %s is not a sequence file", f.Source)
	}
	pos := 4
	for pos < len(data) {
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return fmt.Errorf("pxf sequence: truncated record length at %d", pos)
		}
		pos += n
		if pos+int(l) > len(data) {
			return fmt.Errorf("pxf sequence: truncated record at %d", pos)
		}
		if err := emit(data[pos : pos+int(l)]); err != nil {
			return err
		}
		pos += int(l)
	}
	return nil
}

// Resolve implements Resolver.
func (c *SeqConnector) Resolve(req *Request, record []byte) (types.Row, error) {
	row, _, err := types.DecodeRow(record)
	if err != nil {
		return nil, fmt.Errorf("pxf sequence: %w", err)
	}
	if len(row) != req.Schema.Len() {
		return nil, fmt.Errorf("pxf sequence: record width %d, schema needs %d", len(row), req.Schema.Len())
	}
	return row, nil
}

// WriteSeqFile writes rows in the sequence format.
func WriteSeqFile(fs *hdfs.FileSystem, path string, rows []types.Row) error {
	buf := binary.BigEndian.AppendUint32(nil, seqMagic)
	var rec []byte
	for _, r := range rows {
		rec = types.EncodeRow(rec[:0], r)
		buf = binary.AppendUvarint(buf, uint64(len(rec)))
		buf = append(buf, rec...)
	}
	return fs.WriteFile(path, buf, hdfs.CreateOptions{})
}

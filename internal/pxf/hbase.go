package pxf

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"hawq/internal/types"
)

// HBase is an in-memory stand-in for the HBase store the paper's PXF
// connects to (§6.1's sales example): tables of rows sorted by row key,
// values addressed by "family:qualifier", split into contiguous-range
// regions that become scan fragments. The real store is external
// infrastructure; this reproduction exercises the same connector code
// paths — region fragments, locality-free assignment, and row-key filter
// pushdown.
type HBase struct {
	mu     sync.RWMutex
	tables map[string]*HTable
}

// HTable is one HBase table.
type HTable struct {
	mu      sync.RWMutex
	name    string
	regions int
	rows    map[string]map[string]string // rowkey -> column -> value
}

// NewHBase creates an empty store.
func NewHBase() *HBase {
	return &HBase{tables: map[string]*HTable{}}
}

// CreateTable creates a table pre-split into the given number of regions.
func (h *HBase) CreateTable(name string, regions int) *HTable {
	if regions < 1 {
		regions = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	t := &HTable{name: name, regions: regions, rows: map[string]map[string]string{}}
	h.tables[name] = t
	return t
}

// Table resolves a table by name.
func (h *HBase) Table(name string) (*HTable, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	t, ok := h.tables[name]
	return t, ok
}

// Put stores one cell.
func (t *HTable) Put(rowkey, column, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rows[rowkey]
	if r == nil {
		r = map[string]string{}
		t.rows[rowkey] = r
	}
	r[column] = value
}

// sortedKeys returns the row keys in order.
func (t *HTable) sortedKeys() []string {
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HBaseConnector scans HBase tables through PXF. The location path names
// the table: pxf://svc/<table>?profile=hbase. The schema's first column
// is the row key ("recordkey"); the remaining columns name
// "family:qualifier" cells.
type HBaseConnector struct {
	Store *HBase
	// pushdownHits counts rows skipped by row-key filter pushdown, for
	// observability and tests (§6.3).
	mu           sync.Mutex
	pushdownHits int64
}

// PushdownHits reports how many rows the connector skipped at the store
// thanks to filter pushdown.
func (c *HBaseConnector) PushdownHits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pushdownHits
}

func (c *HBaseConnector) table(req *Request) (*HTable, error) {
	name := strings.TrimPrefix(req.Loc.Path, "/")
	t, ok := c.Store.Table(name)
	if !ok {
		return nil, fmt.Errorf("pxf hbase: no table %q", name)
	}
	return t, nil
}

// Fragments implements Fragmenter: one fragment per region (a contiguous
// row-key range).
func (c *HBaseConnector) Fragments(req *Request) ([]Fragment, error) {
	t, err := c.table(req)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Fragment, t.regions)
	for i := range out {
		out[i] = Fragment{Index: i, Source: t.name}
	}
	return out, nil
}

// keyBound is a parsed row-key constraint from the pushed-down filter.
type keyBound struct {
	op  string
	val string
}

// parseKeyFilter extracts row-key comparisons from the rendered filter
// expression (the filter-pushdown API of §6.3 hands the connector the
// scan qualifiers; comparisons on other columns are ignored and applied
// by the executor).
func parseKeyFilter(filter, keyCol string) []keyBound {
	if filter == "" {
		return nil
	}
	re := regexp.MustCompile(`\(` + regexp.QuoteMeta(keyCol) + ` (=|<=|>=|<|>) '([^']*)'\)`)
	var out []keyBound
	for _, m := range re.FindAllStringSubmatch(filter, -1) {
		out = append(out, keyBound{op: m[1], val: m[2]})
	}
	return out
}

func (b keyBound) admits(key string) bool {
	switch b.op {
	case "=":
		return key == b.val
	case "<":
		return key < b.val
	case "<=":
		return key <= b.val
	case ">":
		return key > b.val
	case ">=":
		return key >= b.val
	}
	return true
}

// ReadFragment implements Accessor: iterate the fragment's key range,
// skipping keys excluded by pushed-down bounds, and emit rows encoded
// per the request schema.
func (c *HBaseConnector) ReadFragment(req *Request, f Fragment, emit func([]byte) error) error {
	t, err := c.table(req)
	if err != nil {
		return err
	}
	t.mu.RLock()
	keys := t.sortedKeys()
	// Region i covers an equal slice of the sorted keyspace.
	per := (len(keys) + t.regions - 1) / t.regions
	lo := f.Index * per
	hi := lo + per
	if lo > len(keys) {
		lo = len(keys)
	}
	if hi > len(keys) {
		hi = len(keys)
	}
	bounds := parseKeyFilter(req.Filter, req.Schema.Columns[0].Name)
	var buf []byte
	skipped := int64(0)
	for _, key := range keys[lo:hi] {
		admit := true
		for _, b := range bounds {
			if !b.admits(key) {
				admit = false
				break
			}
		}
		if !admit {
			skipped++
			continue
		}
		cells := t.rows[key]
		row := make(types.Row, req.Schema.Len())
		row[0] = types.NewString(key)
		for i := 1; i < req.Schema.Len(); i++ {
			col := req.Schema.Columns[i]
			v, ok := cells[col.Name]
			if !ok {
				row[i] = types.Null
				continue
			}
			d, err := types.Cast(types.NewString(v), col.Kind)
			if err != nil {
				t.mu.RUnlock()
				return fmt.Errorf("pxf hbase: cell %s of %s: %w", col.Name, key, err)
			}
			row[i] = d
		}
		buf = types.EncodeRow(buf[:0], row)
		if err := emit(buf); err != nil {
			t.mu.RUnlock()
			return err
		}
	}
	t.mu.RUnlock()
	c.mu.Lock()
	c.pushdownHits += skipped
	c.mu.Unlock()
	return nil
}

// Resolve implements Resolver.
func (c *HBaseConnector) Resolve(req *Request, record []byte) (types.Row, error) {
	row, _, err := types.DecodeRow(record)
	if err != nil {
		return nil, fmt.Errorf("pxf hbase: %w", err)
	}
	// The row key column may be BYTEA in the table definition.
	if req.Schema.Columns[0].Kind == types.KindBytes && row[0].K == types.KindString {
		row[0] = types.NewBytes([]byte(row[0].Str()))
	}
	return row, nil
}

// Estimate implements the optional Analyzer plugin (§6.4).
func (c *HBaseConnector) Estimate(req *Request) (int64, int64, error) {
	t, err := c.table(req)
	if err != nil {
		return 0, 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var rows, bytes int64
	for k, cells := range t.rows {
		rows++
		bytes += int64(len(k))
		for col, v := range cells {
			bytes += int64(len(col) + len(v))
		}
	}
	return rows, bytes, nil
}

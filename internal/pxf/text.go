package pxf

import (
	"bytes"
	"fmt"
	"strings"

	"hawq/internal/hdfs"
	"hawq/internal/types"
)

// TextConnector reads delimited text files (plain text / CSV) from HDFS
// (§6: "various common HDFS file types ... plain text (delimited, csv)").
// Fragments are whole files (splitting on block boundaries would need
// line-boundary negotiation; file granularity keeps fragments aligned
// with HDFS locality hints, which the connector reports per file).
type TextConnector struct {
	FS        *hdfs.FileSystem
	Delimiter string
	// NullToken renders SQL NULL; defaults to "\N".
	NullToken string
}

func (c *TextConnector) nullToken() string {
	if c.NullToken == "" {
		return `\N`
	}
	return c.NullToken
}

// listFiles expands a path (file or directory) to data files.
func listFiles(fs *hdfs.FileSystem, path string) ([]hdfs.FileStatus, error) {
	st, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	if !st.IsDir {
		return []hdfs.FileStatus{st}, nil
	}
	entries, err := fs.List(path)
	if err != nil {
		return nil, err
	}
	var out []hdfs.FileStatus
	for _, e := range entries {
		if !e.IsDir {
			out = append(out, e)
		}
	}
	return out, nil
}

// Fragments implements Fragmenter: one fragment per file, with the
// file's first block's replica hosts as locality hints.
func (c *TextConnector) Fragments(req *Request) ([]Fragment, error) {
	files, err := listFiles(c.FS, req.Loc.Path)
	if err != nil {
		return nil, fmt.Errorf("pxf text: %w", err)
	}
	var out []Fragment
	for i, f := range files {
		frag := Fragment{Index: i, Source: f.Path, Length: f.Length}
		if locs, err := c.FS.BlockLocations(f.Path); err == nil && len(locs) > 0 {
			frag.Hosts = locs[0].Hosts
		}
		out = append(out, frag)
	}
	return out, nil
}

// ReadFragment implements Accessor: one record per line.
func (c *TextConnector) ReadFragment(req *Request, f Fragment, emit func([]byte) error) error {
	data, err := c.FS.ReadFile(f.Source)
	if err != nil {
		return err
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if len(line) == 0 {
			continue
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	return nil
}

// Resolve implements Resolver: split on the delimiter, cast per column.
func (c *TextConnector) Resolve(req *Request, record []byte) (types.Row, error) {
	fields := strings.Split(string(record), c.Delimiter)
	schema := req.Schema
	if len(fields) < schema.Len() {
		return nil, fmt.Errorf("pxf text: record has %d fields, schema needs %d", len(fields), schema.Len())
	}
	row := make(types.Row, schema.Len())
	for i, col := range schema.Columns {
		raw := fields[i]
		if raw == c.nullToken() {
			row[i] = types.Null
			continue
		}
		d, err := types.Cast(types.NewString(raw), col.Kind)
		if err != nil {
			return nil, fmt.Errorf("pxf text: column %s: %w", col.Name, err)
		}
		row[i] = d
	}
	return row, nil
}

// WriteTextFile renders rows as delimited text onto HDFS — the export
// direction (§6: "PXF can export internal HAWQ data into files on
// HDFS").
func WriteTextFile(fs *hdfs.FileSystem, path, delimiter string, rows []types.Row) error {
	var buf bytes.Buffer
	for _, r := range rows {
		for i, d := range r {
			if i > 0 {
				buf.WriteString(delimiter)
			}
			if d.IsNull() {
				buf.WriteString(`\N`)
			} else {
				buf.WriteString(d.String())
			}
		}
		buf.WriteByte('\n')
	}
	return fs.WriteFile(path, buf.Bytes(), hdfs.CreateOptions{})
}

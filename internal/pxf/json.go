package pxf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"hawq/internal/hdfs"
	"hawq/internal/types"
)

// JSONConnector reads newline-delimited JSON objects from HDFS files,
// mapping object keys to schema columns by name (§6: JSON is among the
// built-in profiles).
type JSONConnector struct {
	FS *hdfs.FileSystem
}

// Fragments implements Fragmenter (file granularity, like text).
func (c *JSONConnector) Fragments(req *Request) ([]Fragment, error) {
	files, err := listFiles(c.FS, req.Loc.Path)
	if err != nil {
		return nil, fmt.Errorf("pxf json: %w", err)
	}
	var out []Fragment
	for i, f := range files {
		frag := Fragment{Index: i, Source: f.Path, Length: f.Length}
		if locs, err := c.FS.BlockLocations(f.Path); err == nil && len(locs) > 0 {
			frag.Hosts = locs[0].Hosts
		}
		out = append(out, frag)
	}
	return out, nil
}

// ReadFragment implements Accessor: one record per line.
func (c *JSONConnector) ReadFragment(req *Request, f Fragment, emit func([]byte) error) error {
	data, err := c.FS.ReadFile(f.Source)
	if err != nil {
		return err
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	return nil
}

// Resolve implements Resolver: decode the object and map fields by
// column name; absent keys become NULL.
func (c *JSONConnector) Resolve(req *Request, record []byte) (types.Row, error) {
	var obj map[string]any
	if err := json.Unmarshal(record, &obj); err != nil {
		return nil, fmt.Errorf("pxf json: %w", err)
	}
	row := make(types.Row, req.Schema.Len())
	for i, col := range req.Schema.Columns {
		v, ok := obj[col.Name]
		if !ok || v == nil {
			row[i] = types.Null
			continue
		}
		d, err := jsonToDatum(v, col.Kind)
		if err != nil {
			return nil, fmt.Errorf("pxf json: column %s: %w", col.Name, err)
		}
		row[i] = d
	}
	return row, nil
}

func jsonToDatum(v any, kind types.Kind) (types.Datum, error) {
	switch x := v.(type) {
	case float64:
		switch kind {
		case types.KindInt32, types.KindInt64, types.KindDate:
			if x != math.Trunc(x) {
				return types.Null, fmt.Errorf("non-integer %v for %s", x, kind)
			}
			return types.Cast(types.NewInt64(int64(x)), kind)
		default:
			return types.Cast(types.NewFloat64(x), kind)
		}
	case string:
		return types.Cast(types.NewString(x), kind)
	case bool:
		return types.Cast(types.NewBool(x), kind)
	default:
		return types.Null, fmt.Errorf("unsupported JSON value %T", v)
	}
}

package pxf

import (
	"fmt"
	"strings"
	"testing"

	"hawq/internal/engine"
	"hawq/internal/hdfs"
	"hawq/internal/types"
)

func TestParseLocation(t *testing.T) {
	loc, err := ParseLocation("pxf://localhost:51200/sales?profile=HBase&k=v")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Service != "localhost:51200" || loc.Path != "/sales" || loc.Profile != "HBase" || loc.Options["k"] != "v" {
		t.Fatalf("loc = %+v", loc)
	}
	for _, bad := range []string{"http://x/y?profile=a", "pxf://x/y", "://"} {
		if _, err := ParseLocation(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestAssignFragmentsLocality(t *testing.T) {
	frags := []Fragment{
		{Index: 0, Hosts: []string{"dn1"}},
		{Index: 1, Hosts: []string{"dn0"}},
		{Index: 2},                         // no hints: round-robin
		{Index: 3, Hosts: []string{"dn9"}}, // out of range: round-robin
	}
	got := assignFragments(frags, 2)
	if len(got[1]) == 0 || got[1][0].Index != 0 {
		t.Errorf("fragment 0 should go to segment 1: %+v", got)
	}
	if len(got[0]) == 0 || got[0][0].Index != 1 {
		t.Errorf("fragment 1 should go to segment 0: %+v", got)
	}
	total := len(got[0]) + len(got[1])
	if total != 4 {
		t.Errorf("assigned %d of 4", total)
	}
}

// pxfEngine boots an engine with a PXF binding attached.
func pxfEngine(t testing.TB, segments int) (*engine.Engine, *Engine) {
	t.Helper()
	e, err := engine.New(engine.Config{Segments: segments, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	px := NewEngine(e.Cluster().FS)
	e.Cluster().External = px
	return e, px
}

func TestTextExternalTableEndToEnd(t *testing.T) {
	e, _ := pxfEngine(t, 2)
	fs := e.Cluster().FS
	// Two files in a directory: two fragments.
	fs.WriteFile("/ext/sales/part-0", []byte("1|beer|4.50\n2|wine|9.00\n"), hdfs.CreateOptions{})
	fs.WriteFile("/ext/sales/part-1", []byte("3|milk|2.25\n\\N|unknown|0.00\n"), hdfs.CreateOptions{})

	s := e.NewSession()
	if _, err := s.Query(`CREATE EXTERNAL TABLE ext_sales (
		id INT8, item TEXT, price DECIMAL(10,2)
	) LOCATION ('pxf://svc/ext/sales?profile=text') FORMAT 'CUSTOM'`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT count(*), sum(price) FROM ext_sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 4 || res.Rows[0][1].String() != "15.75" {
		t.Fatalf("ext agg = %v", res.Rows[0])
	}
	// NULL token respected.
	res, err = s.Query("SELECT item FROM ext_sales WHERE id IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "unknown" {
		t.Fatalf("null row = %v", res.Rows)
	}
}

func TestExternalJoinsInternal(t *testing.T) {
	e, _ := pxfEngine(t, 2)
	fs := e.Cluster().FS
	fs.WriteFile("/ext/orders.csv", []byte("1,100\n2,200\n3,150\n"), hdfs.CreateOptions{})
	s := e.NewSession()
	if _, err := s.Query(`CREATE EXTERNAL TABLE ext_orders (store_id INT8, amount INT8)
		LOCATION ('pxf://svc/ext/orders.csv?profile=csv') FORMAT 'CUSTOM'`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("CREATE TABLE stores (store_id INT8, name TEXT) DISTRIBUTED BY (store_id)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("INSERT INTO stores VALUES (1, 'north'), (2, 'south'), (3, 'east')"); err != nil {
		t.Fatal(err)
	}
	// The §6.1 shape: join an external table with an internal one.
	res, err := s.Query(`SELECT name, amount FROM stores s, ext_orders h
		WHERE s.store_id = h.store_id ORDER BY amount DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Str() != "south" || res.Rows[0][1].Int() != 200 {
		t.Fatalf("join = %v", res.Rows)
	}
}

func TestJSONAndSequenceConnectors(t *testing.T) {
	e, _ := pxfEngine(t, 2)
	fs := e.Cluster().FS
	fs.WriteFile("/ext/events.json", []byte(
		`{"user": "ann", "clicks": 3}`+"\n"+
			`{"user": "bob", "clicks": 7, "extra": true}`+"\n"+
			`{"user": "cat"}`+"\n"), hdfs.CreateOptions{})
	s := e.NewSession()
	if _, err := s.Query(`CREATE EXTERNAL TABLE events (user TEXT, clicks INT8)
		LOCATION ('pxf://svc/ext/events.json?profile=json') FORMAT 'CUSTOM'`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT sum(clicks), count(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 || res.Rows[0][1].Int() != 3 {
		t.Fatalf("json agg = %v", res.Rows[0])
	}
	// Sequence file round trip.
	rows := []types.Row{
		{types.NewInt64(1), types.NewString("x")},
		{types.NewInt64(2), types.Null},
	}
	if err := WriteSeqFile(fs, "/ext/data.seq", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(`CREATE EXTERNAL TABLE seqdata (k INT8, v TEXT)
		LOCATION ('pxf://svc/ext/data.seq?profile=sequence') FORMAT 'CUSTOM'`); err != nil {
		t.Fatal(err)
	}
	res, err = s.Query("SELECT k, v FROM seqdata ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Str() != "x" || !res.Rows[1][1].IsNull() {
		t.Fatalf("seq rows = %v", res.Rows)
	}
}

func TestHBaseConnectorWithPushdown(t *testing.T) {
	e, px := pxfEngine(t, 2)
	store := NewHBase()
	hb := &HBaseConnector{Store: store}
	px.Register("hbase", hb)

	// The paper's §6.1 example: a sales table keyed by timestamp-ish
	// row keys with details:storeid and details:price cells.
	tab := store.CreateTable("sales", 4)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("2013%04d", i)
		tab.Put(key, "details:storeid", fmt.Sprintf("%d", i%5))
		tab.Put(key, "details:price", fmt.Sprintf("%d.50", i))
	}
	s := e.NewSession()
	if _, err := s.Query(`CREATE EXTERNAL TABLE my_hbase_sales (
		recordkey TEXT, "details:storeid" INT8, "details:price" DECIMAL(10,2)
	) LOCATION ('pxf://svc/sales?profile=hbase') FORMAT 'CUSTOM'`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT sum("details:price") FROM my_hbase_sales WHERE recordkey < '20130010'`)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..9: sum of i+0.50 = 45 + 5 = 50.00.
	if got := res.Rows[0][0].String(); got != "50.00" {
		t.Fatalf("hbase sum = %v", got)
	}
	if hb.PushdownHits() == 0 {
		t.Error("row-key filter was not pushed down")
	}
	// ANALYZE via the Analyzer plugin.
	if _, err := s.Query("ANALYZE my_hbase_sales"); err != nil {
		t.Fatal(err)
	}
	// Aggregation with grouping over HBase cells.
	res, err = s.Query(`SELECT "details:storeid" AS store, count(*) FROM my_hbase_sales
		GROUP BY "details:storeid" ORDER BY store`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || res.Rows[0][1].Int() != 20 {
		t.Fatalf("group = %v", res.Rows)
	}
}

func TestTextExportDirection(t *testing.T) {
	e, _ := pxfEngine(t, 2)
	fs := e.Cluster().FS
	rows := []types.Row{{types.NewInt64(1), types.NewString("a")}, {types.NewInt64(2), types.Null}}
	if err := WriteTextFile(fs, "/out/export.txt", "|", rows); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/out/export.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := "1|a\n2|\\N\n"
	if string(data) != want {
		t.Fatalf("export = %q, want %q", data, want)
	}
}

func TestUnknownProfile(t *testing.T) {
	e, _ := pxfEngine(t, 1)
	s := e.NewSession()
	if _, err := s.Query(`CREATE EXTERNAL TABLE x (a INT8)
		LOCATION ('pxf://svc/p?profile=nosuch') FORMAT 'CUSTOM'`); err != nil {
		t.Fatal(err) // DDL succeeds; the scan fails
	}
	if _, err := s.Query("SELECT * FROM x"); err == nil || !strings.Contains(err.Error(), "no connector") {
		t.Fatalf("err = %v", err)
	}
}

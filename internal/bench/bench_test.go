package bench

import (
	"testing"
	"time"

	"hawq/internal/stinger"
)

// TestFig6Smoke runs the smallest possible Figure 6 end to end: both
// engines load, the suite subset runs, and HAWQ comes out ahead.
func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow")
	}
	cfg := Config{
		Segments: 2,
		SFSmall:  0.0005,
		SpillDir: t.TempDir(),
		Stinger: stinger.Config{
			MapTasks: 2, ReduceTasks: 2, Workers: 4,
			ContainerStartup: 2 * time.Millisecond,
			SpillDir:         t.TempDir(),
		},
		Queries: []int{1, 5, 6},
	}
	r, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0] != "Stinger" {
		t.Fatalf("first row = %v", r.Rows[0])
	}
	if s := r.String(); s == "" {
		t.Fatal("empty report")
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow")
	}
	cfg := Config{Segments: 2, SFLarge: 0.0005, SpillDir: t.TempDir()}
	r, err := AblationReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("ablation rows = %v", r.Rows)
	}
}

package bench

import (
	"testing"
	"time"

	"hawq/internal/stinger"
)

// TestFig6Smoke runs the smallest possible Figure 6 end to end: both
// engines load, the suite subset runs, and HAWQ comes out ahead.
func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow")
	}
	cfg := Config{
		Segments: 2,
		SFSmall:  0.0005,
		SpillDir: t.TempDir(),
		Stinger: stinger.Config{
			MapTasks: 2, ReduceTasks: 2, Workers: 4,
			ContainerStartup: 2 * time.Millisecond,
			SpillDir:         t.TempDir(),
		},
		Queries: []int{1, 5, 6},
	}
	r, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0] != "Stinger" {
		t.Fatalf("first row = %v", r.Rows[0])
	}
	if s := r.String(); s == "" {
		t.Fatal("empty report")
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow")
	}
	cfg := Config{Segments: 2, SFLarge: 0.0005, SpillDir: t.TempDir()}
	r, err := AblationReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("ablation rows = %v", r.Rows)
	}
}

// TestConcurrencySmoke runs a tiny concurrency sweep end to end: all
// three modes at two levels, with the prepared mode hitting the plan
// cache.
func TestConcurrencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow")
	}
	res, err := RunConcurrency(ConcurrencyConfig{
		Bench:       Config{Segments: 2, SFSmall: 0.0005, SpillDir: t.TempDir()},
		Levels:      []int{1, 4},
		OpsPerLevel: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.Errors != 0 {
			t.Fatalf("%d/%s: %d errors", p.Sessions, p.Mode, p.Errors)
		}
		if p.QPS <= 0 || p.P50ms <= 0 || p.P99ms < p.P50ms {
			t.Fatalf("%d/%s: bad stats %+v", p.Sessions, p.Mode, p)
		}
		// EXECUTE after the first op per (session, query) must hit.
		if p.Mode == ModePrepared && p.Ops >= 12 && p.CacheHitRate < 0.5 {
			t.Fatalf("%d/%s: cache hit rate %.2f", p.Sessions, p.Mode, p.CacheHitRate)
		}
	}
	if s := res.Report().String(); s == "" {
		t.Fatal("empty report")
	}
	path := t.TempDir() + "/BENCH_concurrency.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrency256Sessions is the acceptance gate for the serving
// layer: 256 concurrent sessions complete the prepared mix (check.sh
// runs this under -race; the package TestMain verifies zero goroutine
// leaks afterwards).
func TestConcurrency256Sessions(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow")
	}
	res, err := RunConcurrency(ConcurrencyConfig{
		Bench:       Config{Segments: 2, SFSmall: 0.0005, SpillDir: t.TempDir()},
		Levels:      []int{256},
		OpsPerLevel: 512,
		Modes:       []string{ModePrepared},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Errors != 0 {
		t.Fatalf("256 sessions: %d errors", p.Errors)
	}
	if p.Ops != 512 {
		t.Fatalf("256 sessions: ops = %d, want 512", p.Ops)
	}
}

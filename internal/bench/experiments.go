package bench

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"hawq/internal/engine"
	"hawq/internal/hdfs"
	"hawq/internal/tpch"
)

// Fig6 reproduces Figure 6: overall TPC-H execution time in the
// CPU-bound regime (paper: 160GB, fully in memory) for Stinger and
// HAWQ's three storage formats.
func Fig6(cfg Config) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   "Figure 6: overall TPC-H time, CPU-bound regime",
		Columns: []string{"system", "seconds", "speedup vs Stinger"},
		Notes: []string{
			fmt.Sprintf("SF=%.4g, %d segments; paper: Stinger 7935s, AO 239s, CO 211s, Parquet 172s (~45x)", cfg.SFSmall, cfg.Segments),
		},
	}
	se, err := newStinger(cfg, cfg.SFSmall, nil)
	if err != nil {
		return nil, err
	}
	stingerTime, err := runSuiteStinger(se, cfg.queries())
	se.Close()
	if err != nil {
		return nil, fmt.Errorf("stinger: %w", err)
	}
	r.Rows = append(r.Rows, []string{"Stinger", seconds(stingerTime), "1.0x"})
	for _, format := range []string{"row", "column", "parquet"} {
		e, err := newHAWQ(cfg, cfg.SFSmall, format, "quicklz", 0, tpch.DistHash, nil)
		if err != nil {
			return nil, err
		}
		d, err := runSuite(e, cfg.queries())
		if cerr := e.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("hawq %s: %w", format, err)
		}
		r.Rows = append(r.Rows, []string{
			"HAWQ " + format, seconds(d),
			fmt.Sprintf("%.1fx", stingerTime.Seconds()/d.Seconds()),
		})
	}
	return r, nil
}

// IOModel is the simulated-disk regime for Figure 7 and 11(b) (the
// paper's 1.6TB runs were IO-bound; we attach a disk cost model to every
// block read).
func IOModel() *hdfs.IOModel {
	return &hdfs.IOModel{SeekLatency: 200 * time.Microsecond, BytesPerSec: 64 << 20}
}

// Fig7 reproduces Figure 7: overall TPC-H time in the IO-bound regime.
func Fig7(cfg Config) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   "Figure 7: overall TPC-H time, IO-bound regime",
		Columns: []string{"system", "seconds", "speedup vs Stinger"},
		Notes: []string{
			fmt.Sprintf("SF=%.4g with simulated disk; paper: Stinger 95502s, AO 5115s, CO 2490s, Parquet 2950s (~40x)", cfg.SFLarge),
		},
	}
	io := IOModel()
	se, err := newStinger(cfg, cfg.SFLarge, io)
	if err != nil {
		return nil, err
	}
	stingerTime, err := runSuiteStinger(se, cfg.queries())
	se.Close()
	if err != nil {
		return nil, fmt.Errorf("stinger: %w", err)
	}
	r.Rows = append(r.Rows, []string{"Stinger", seconds(stingerTime), "1.0x"})
	for _, format := range []string{"row", "column", "parquet"} {
		e, err := newHAWQ(cfg, cfg.SFLarge, format, "quicklz", 0, tpch.DistHash, io)
		if err != nil {
			return nil, err
		}
		d, err := runSuite(e, cfg.queries())
		if cerr := e.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("hawq %s: %w", format, err)
		}
		r.Rows = append(r.Rows, []string{
			"HAWQ " + format, seconds(d),
			fmt.Sprintf("%.1fx", stingerTime.Seconds()/d.Seconds()),
		})
	}
	return r, nil
}

// perQuery measures HAWQ vs Stinger per query (Figures 8 and 9).
func perQuery(cfg Config, title string, queries []int, paperNote string) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   title,
		Columns: []string{"query", "HAWQ s", "Stinger s", "speedup"},
		Notes:   []string{paperNote},
	}
	e, err := newHAWQ(cfg, cfg.SFLarge, "row", "quicklz", 0, tpch.DistHash, nil)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	se, err := newStinger(cfg, cfg.SFLarge, nil)
	if err != nil {
		return nil, err
	}
	defer se.Close()
	s := e.NewSession()
	for _, q := range queries {
		hawqTime, err := bestOf(3, func() error {
			_, err := s.Query(tpch.Queries[q])
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("hawq Q%d: %w", q, err)
		}
		stTime, err := bestOf(3, func() error {
			_, _, err := se.Query(tpch.Queries[q])
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("stinger Q%d: %w", q, err)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("Q%d", q), seconds(hawqTime), seconds(stTime),
			fmt.Sprintf("%.1fx", stTime.Seconds()/hawqTime.Seconds()),
		})
	}
	return r, nil
}

// bestOf runs fn n times and returns the fastest run (the standard
// best-of-N methodology for sub-second measurements).
func bestOf(n int, fn func() error) (time.Duration, error) {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// Fig8 reproduces Figure 8: the simple selection queries.
func Fig8(cfg Config) (*Report, error) {
	return perQuery(cfg, "Figure 8: simple selection queries, HAWQ vs Stinger",
		tpch.SimpleSelectionQueries,
		"paper: HAWQ ~10x faster on simple selections (start-up + pipelining)")
}

// Fig9 reproduces Figure 9: the complex join queries.
func Fig9(cfg Config) (*Report, error) {
	return perQuery(cfg, "Figure 9: complex join queries, HAWQ vs Stinger",
		tpch.ComplexJoinQueries,
		"paper: HAWQ ~40x faster on complex joins (cost-based planning + interconnect)")
}

// Fig10 reproduces Figure 10: hash vs random distribution for Q5, Q8,
// Q9, Q18 over AO and CO storage.
func Fig10(cfg Config) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   "Figure 10: hash vs random distribution",
		Columns: []string{"format", "query", "hash s", "random s", "hash speedup"},
		Notes:   []string{"paper: join-key distribution brings ~2x by avoiding redistribution"},
	}
	queries := []int{5, 8, 9, 18}
	for _, format := range []string{"row", "column"} {
		eh, err := newHAWQ(cfg, cfg.SFLarge, format, "quicklz", 0, tpch.DistHash, nil)
		if err != nil {
			return nil, err
		}
		er, err := newHAWQ(cfg, cfg.SFLarge, format, "quicklz", 0, tpch.DistRandom, nil)
		if err != nil {
			return nil, errors.Join(err, eh.Close())
		}
		sh, sr := eh.NewSession(), er.NewSession()
		for _, q := range queries {
			ht, err := bestOf(3, func() error {
				_, err := sh.Query(tpch.Queries[q])
				return err
			})
			if err != nil {
				return nil, err
			}
			rt, err := bestOf(3, func() error {
				_, err := sr.Query(tpch.Queries[q])
				return err
			})
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{
				format, fmt.Sprintf("Q%d", q), seconds(ht), seconds(rt),
				fmt.Sprintf("%.2fx", rt.Seconds()/ht.Seconds()),
			})
		}
		if err := errors.Join(eh.Close(), er.Close()); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Fig11 reproduces Figure 11: compression's effect on lineitem size and
// suite time, per storage format and codec.
func Fig11(cfg Config, sf float64, io *hdfs.IOModel, regime string) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   "Figure 11 (" + regime + "): compression vs size and time",
		Columns: []string{"format", "codec", "lineitem bytes", "suite seconds"},
		Notes: []string{
			"paper: quicklz ~3x ratio; zlib slightly better, barely improving with level;",
			"CPU-bound: compression slows queries; IO-bound: compression speeds them up",
		},
	}
	type combo struct {
		format, ctype string
		level         int
	}
	combos := map[string][]combo{
		"row": {
			{"row", "none", 0}, {"row", "quicklz", 0},
			{"row", "zlib", 1}, {"row", "zlib", 5}, {"row", "zlib", 9},
		},
		"column": {
			{"column", "none", 0}, {"column", "quicklz", 0},
			{"column", "zlib", 1}, {"column", "zlib", 5}, {"column", "zlib", 9},
		},
		"parquet": {
			{"parquet", "none", 0}, {"parquet", "snappy", 0},
			{"parquet", "gzip", 1}, {"parquet", "gzip", 5}, {"parquet", "gzip", 9},
		},
	}
	for _, format := range []string{"row", "column", "parquet"} {
		for _, c := range combos[format] {
			e, err := newHAWQ(cfg, sf, c.format, c.ctype, c.level, tpch.DistHash, io)
			if err != nil {
				return nil, err
			}
			size, err := lineitemBytes(e)
			if err != nil {
				return nil, errors.Join(err, e.Close())
			}
			d, err := runSuite(e, cfg.queries())
			if cerr := e.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%s-%d: %w", c.format, c.ctype, c.level, err)
			}
			codec := c.ctype
			if c.level > 0 {
				codec = fmt.Sprintf("%s-%d", c.ctype, c.level)
			}
			r.Rows = append(r.Rows, []string{c.format, codec, fmt.Sprintf("%d", size), seconds(d)})
		}
	}
	return r, nil
}

// lineitemBytes sums the committed bytes of the lineitem table.
func lineitemBytes(e *engine.Engine) (int64, error) {
	cl := e.Cluster()
	t := cl.TxMgr.Begin(0)
	defer t.Commit()
	desc, err := cl.Cat().LookupTable(t.Snapshot(), "lineitem")
	if err != nil {
		return 0, err
	}
	// LogicalLen is the committed byte count for every format (for CO it
	// is the sum over column files).
	var total int64
	for _, sf := range cl.Cat().AllSegFiles(t.Snapshot(), desc.OID) {
		total += sf.LogicalLen
	}
	return total, nil
}

// Fig12 reproduces Figure 12: TCP vs UDP interconnect under hash and
// random distribution.
func Fig12(cfg Config) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   "Figure 12: TCP vs UDP interconnect",
		Columns: []string{"distribution", "interconnect", "seconds"},
		Notes:   []string{"paper: UDP ~54% faster than TCP under random distribution; similar under hash"},
	}
	for _, dist := range []string{tpch.DistHash, tpch.DistRandom} {
		for _, ic := range []string{"udp", "tcp"} {
			e, err := engine.New(engine.Config{
				Segments:     cfg.Segments,
				SpillDir:     cfg.SpillDir,
				Interconnect: ic,
				HDFS:         hdfs.Config{DataNodes: cfg.Segments},
			})
			if err != nil {
				return nil, err
			}
			if _, err := tpch.Load(e, tpch.LoadOptions{
				Scale: tpch.Scale{SF: cfg.SFSmall}, Orientation: "row", Distribution: dist,
			}); err != nil {
				return nil, errors.Join(err, e.Close())
			}
			d, err := runSuite(e, cfg.queries())
			if cerr := e.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", dist, ic, err)
			}
			r.Rows = append(r.Rows, []string{dist, ic, seconds(d)})
		}
	}
	return r, nil
}

// Fig13 reproduces Figure 13: scalability. fixedPerNode runs SF
// proportional to the cluster (13a); otherwise the total SF is fixed
// (13b).
func Fig13(cfg Config, fixedPerNode bool) (*Report, error) {
	cfg.Defaults()
	title := "Figure 13(b): fixed total data, growing cluster"
	note := "paper: time drops to ~28% from 4 to 16 nodes"
	if fixedPerNode {
		title = "Figure 13(a): fixed data per node, growing cluster"
		note = "paper: time grows only ~13% while data quadruples (near-linear scale-out)"
	}
	r := &Report{
		Title:   title,
		Columns: []string{"segments", "SF", "seconds"},
		Notes: []string{
			note,
			fmt.Sprintf("this machine has %d CPUs: segments beyond that add no physical parallelism, so the curve flattens there (the paper's cluster adds real hardware per node)", runtime.NumCPU()),
		},
	}
	sizes := []int{1, 2, 4, 8}
	for _, n := range sizes {
		sf := cfg.SFSmall
		if fixedPerNode {
			sf = cfg.SFSmall * float64(n) / float64(sizes[0])
		}
		sub := cfg
		sub.Segments = n
		e, err := newHAWQ(sub, sf, "row", "quicklz", 0, tpch.DistHash, nil)
		if err != nil {
			return nil, err
		}
		d, err := runSuite(e, cfg.queries())
		if cerr := e.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%d segments: %w", n, err)
		}
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%.4g", sf), seconds(d)})
	}
	return r, nil
}

// AblationReport measures the paper's design choices on and off: direct
// dispatch (§3), partition elimination (§2.3), and join colocation
// (§2.3).
func AblationReport(cfg Config) (*Report, error) {
	cfg.Defaults()
	r := &Report{
		Title:   "Ablations: planner features on vs off",
		Columns: []string{"feature", "workload", "on s", "off s", "speedup"},
	}
	e, err := newHAWQ(cfg, cfg.SFLarge, "row", "quicklz", 0, tpch.DistHash, nil)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	s := e.NewSession()
	// Partitioned copy of orders for the elimination ablation.
	if _, err := s.Query(`CREATE TABLE orders_part (
		o_orderkey INT8, o_custkey INT8, o_totalprice DECIMAL(15,2), o_orderdate DATE
	) DISTRIBUTED BY (o_orderkey)
	PARTITION BY RANGE (o_orderdate)
	(START (DATE '1992-01-01') INCLUSIVE END (DATE '1999-01-01') EXCLUSIVE EVERY (INTERVAL '1 year'))`); err != nil {
		return nil, err
	}
	if _, err := s.Query(`INSERT INTO orders_part SELECT o_orderkey, o_custkey, o_totalprice, o_orderdate FROM orders`); err != nil {
		return nil, err
	}

	measure := func(q string, n int) (time.Duration, error) {
		//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := s.Query(q); err != nil {
				return 0, err
			}
		}
		//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
		return time.Since(start), nil
	}
	run := func(name, workload, q string, n int, off engine.PlannerFlags) error {
		e.SetFlags(engine.PlannerFlags{})
		on, err := measure(q, n)
		if err != nil {
			return err
		}
		e.SetFlags(off)
		offT, err := measure(q, n)
		e.SetFlags(engine.PlannerFlags{})
		if err != nil {
			return err
		}
		r.Rows = append(r.Rows, []string{name, workload, seconds(on), seconds(offT),
			fmt.Sprintf("%.2fx", offT.Seconds()/on.Seconds())})
		return nil
	}
	if err := run("direct dispatch", "point lookup x50",
		"SELECT o_totalprice FROM orders WHERE o_orderkey = 33", 50,
		engine.PlannerFlags{DisableDirectDispatch: true}); err != nil {
		return nil, err
	}
	if err := run("partition elimination", "one-month scan x10",
		"SELECT count(*) FROM orders_part WHERE o_orderdate >= DATE '1995-01-01' AND o_orderdate < DATE '1995-02-01'", 10,
		engine.PlannerFlags{DisablePartitionElim: true}); err != nil {
		return nil, err
	}
	if err := run("join colocation", "TPC-H Q12 x3",
		tpch.Queries[12], 3,
		engine.PlannerFlags{DisableColocation: true}); err != nil {
		return nil, err
	}
	// Runtime filters act in the encoded scan path, so this ablation
	// needs a column-oriented load; the row engine above never consults
	// a bloom.
	ec, err := newHAWQ(cfg, cfg.SFLarge, "column", "quicklz", 0, tpch.DistHash, nil)
	if err != nil {
		return nil, err
	}
	defer ec.Close()
	sc := ec.NewSession()
	measureCol := func(q string, n int) (time.Duration, error) {
		//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := sc.Query(q); err != nil {
				return 0, err
			}
		}
		//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
		return time.Since(start), nil
	}
	ec.SetFlags(engine.PlannerFlags{})
	on, err := measureCol(tpch.Queries[3], 3)
	if err != nil {
		return nil, err
	}
	ec.SetFlags(engine.PlannerFlags{DisableRuntimeFilters: true})
	offT, err := measureCol(tpch.Queries[3], 3)
	ec.SetFlags(engine.PlannerFlags{})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, []string{"runtime filters", "TPC-H Q3 x3 (CO)",
		seconds(on), seconds(offT), fmt.Sprintf("%.2fx", offT.Seconds()/on.Seconds())})
	return r, nil
}

package bench

import (
	"testing"

	"hawq/internal/testutil"
)

// TestMain fails the suite if a benchmark harness leaks engine or
// session goroutines — the concurrency sweep in particular spins up
// hundreds of sessions and must leave nothing behind.
func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"hawq/internal/engine"
	"hawq/internal/types"
)

// The concurrent-serving benchmark: a closed-loop multi-session driver
// measuring throughput and latency percentiles as session count grows
// (the throughput-vs-concurrency curve of Tapdiya & Fabbri's SQL-engine
// evaluations). Each session admits through a resource queue and runs a
// parameterized mix of short TPC-H-derived queries; modes compare the
// prepared-statement fast path (plan cache on), prepared with the cache
// disabled, and simple-query text round trips.

// mixQuery is one statement of the serving mix: SQL with $1 plus a
// generator for the i-th argument value.
type mixQuery struct {
	name string
	sql  string
	arg  func(i int) types.Datum
}

// servingMix returns the parameterized query mix. maxKey bounds the
// point-lookup key space (scale-dependent).
func servingMix(maxKey int) []mixQuery {
	key := func(i int) types.Datum { return types.NewInt64(int64(i%maxKey) + 1) }
	return []mixQuery{
		{"point-customer", "SELECT c_name, c_acctbal FROM customer WHERE c_custkey = $1", key},
		{"orders-by-cust", "SELECT count(*) FROM orders WHERE o_custkey = $1", key},
		{"scan-agg", "SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE l_quantity < $1",
			func(i int) types.Datum { return types.NewInt64(int64(i%40) + 5) }},
	}
}

// ConcurrencyConfig tunes the serving benchmark.
type ConcurrencyConfig struct {
	Bench Config
	// Levels are the session counts to sweep (default 1, 8, 64, 256,
	// 1024).
	Levels []int
	// OpsPerLevel is the total statement budget per (level, mode) cell,
	// split across the level's sessions (default 512; at least one op
	// per session).
	OpsPerLevel int
	// QueueActive is the resource queue's ACTIVE_STATEMENTS (default
	// 64: admission is exercised without serializing the high levels).
	QueueActive int
	// Modes restricts the ablation (default all three).
	Modes []string
}

// ConcurrencyPoint is one measured cell of the sweep.
type ConcurrencyPoint struct {
	Sessions     int     `json:"sessions"`
	Mode         string  `json:"mode"`
	Ops          int     `json:"ops"`
	Errors       int     `json:"errors"`
	QPS          float64 `json:"qps"`
	P50ms        float64 `json:"p50_ms"`
	P95ms        float64 `json:"p95_ms"`
	P99ms        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ConcurrencyResult is the full sweep, JSON-serializable as
// BENCH_concurrency.json.
type ConcurrencyResult struct {
	Segments    int                `json:"segments"`
	ScaleFactor float64            `json:"scale_factor"`
	Mix         []string           `json:"mix"`
	Points      []ConcurrencyPoint `json:"points"`
}

// Modes.
const (
	ModePrepared = "prepared"         // Parse once per session, EXECUTE many, plan cache on
	ModeNoCache  = "prepared_nocache" // prepared, but SET plan_cache = off
	ModeSimple   = "simple"           // full SQL text per statement
)

func (c *ConcurrencyConfig) defaults() {
	c.Bench.Defaults()
	if len(c.Levels) == 0 {
		c.Levels = []int{1, 8, 64, 256, 1024}
	}
	if c.OpsPerLevel <= 0 {
		c.OpsPerLevel = 512
	}
	if c.QueueActive <= 0 {
		c.QueueActive = 64
	}
	if len(c.Modes) == 0 {
		c.Modes = []string{ModePrepared, ModeNoCache, ModeSimple}
	}
}

// RunConcurrency executes the sweep on one engine and returns the
// measured points.
func RunConcurrency(cfg ConcurrencyConfig) (*ConcurrencyResult, error) {
	cfg.defaults()
	e, err := newHAWQ(cfg.Bench, cfg.Bench.SFSmall, "row", "", 0, "", nil)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	admin := e.NewSession()
	if _, err := admin.Query(fmt.Sprintf(
		"CREATE RESOURCE QUEUE serving WITH (active_statements = %d)", cfg.QueueActive)); err != nil {
		return nil, err
	}
	// Key space: customers at SF sf is 150000*sf.
	maxKey := int(150000 * cfg.Bench.SFSmall)
	if maxKey < 1 {
		maxKey = 1
	}
	mix := servingMix(maxKey)

	res := &ConcurrencyResult{Segments: cfg.Bench.Segments, ScaleFactor: cfg.Bench.SFSmall}
	for _, q := range mix {
		res.Mix = append(res.Mix, q.name)
	}
	for _, level := range cfg.Levels {
		for _, mode := range cfg.Modes {
			// Two passes per cell, keeping the second: the first pass
			// absorbs runtime ramp at a new session count (OS threads,
			// GC sizing) that would otherwise bias whichever mode runs
			// first at each level.
			if _, err := runConcurrencyCell(e, mix, level, mode, cfg.OpsPerLevel); err != nil {
				return nil, fmt.Errorf("level %d mode %s (ramp): %w", level, mode, err)
			}
			pt, err := runConcurrencyCell(e, mix, level, mode, cfg.OpsPerLevel)
			if err != nil {
				return nil, fmt.Errorf("level %d mode %s: %w", level, mode, err)
			}
			res.Points = append(res.Points, *pt)
		}
	}
	return res, nil
}

// runConcurrencyCell measures one (sessions, mode) cell: a closed loop
// where every session issues its share of the op budget back to back.
func runConcurrencyCell(e *engine.Engine, mix []mixQuery, sessions int, mode string, totalOps int) (*ConcurrencyPoint, error) {
	perSession := totalOps / sessions
	if perSession < 1 {
		perSession = 1
	}
	// Each cell starts cold: without the flush, plans cached by one
	// cell leak into the next and every mode reports a warm cache.
	e.PlanCache().Flush()

	// Steady state, not cold start: every session runs a few unmeasured
	// warmup ops (absorbing planning misses, goroutine ramp, and
	// admission churn), then all sessions cross the start barrier
	// together and only that window is measured.
	warmup := perSession / 4
	if warmup < 1 {
		warmup = 1
	}
	if warmup > 8 {
		warmup = 8
	}

	type lat struct {
		d   time.Duration
		err bool
	}
	all := make([][]lat, sessions)
	var wg, ready sync.WaitGroup
	startGate := make(chan struct{})
	prepErr := make(chan error, sessions)
	runOp := func(s *engine.Session, g, i int) error {
		qi := (g + i) % len(mix)
		q := mix[qi]
		arg := q.arg(g*perSession + i)
		var err error
		if mode == ModeSimple {
			_, err = s.Query(substituteArg(q.sql, arg))
		} else {
			_, err = s.ExecutePrepared(fmt.Sprintf("mix%d", qi), arg)
		}
		return err
	}
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		ready.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := setupSession(e, mix, mode)
			for i := 0; err == nil && i < warmup; i++ {
				// Warmup args sit past the measured index space so they
				// cycle the same key distribution without aliasing it.
				err = runOp(s, g, perSession+i)
			}
			ready.Done()
			if err != nil {
				prepErr <- err
				return
			}
			<-startGate
			lats := make([]lat, 0, perSession)
			for i := 0; i < perSession; i++ {
				//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
				start := time.Now()
				err := runOp(s, g, i)
				//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
				lats = append(lats, lat{d: time.Since(start), err: err != nil})
			}
			all[g] = lats
		}(g)
	}
	ready.Wait()
	cacheBefore := e.PlanCache().Stats()
	//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
	wallStart := time.Now()
	close(startGate)
	wg.Wait()
	//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
	wall := time.Since(wallStart)
	select {
	case err := <-prepErr:
		return nil, err
	default:
	}

	var durs []time.Duration
	errs := 0
	for _, lats := range all {
		for _, l := range lats {
			if l.err {
				errs++
				continue
			}
			durs = append(durs, l.d)
		}
	}
	if len(durs) == 0 {
		return nil, fmt.Errorf("no successful operations")
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(durs)-1))
		return float64(durs[idx].Microseconds()) / 1000
	}
	cacheAfter := e.PlanCache().Stats()
	lookups := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Misses - cacheBefore.Misses)
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(cacheAfter.Hits-cacheBefore.Hits) / float64(lookups)
	}
	return &ConcurrencyPoint{
		Sessions:     sessions,
		Mode:         mode,
		Ops:          len(durs),
		Errors:       errs,
		QPS:          float64(len(durs)) / wall.Seconds(),
		P50ms:        pct(0.50),
		P95ms:        pct(0.95),
		P99ms:        pct(0.99),
		CacheHitRate: hitRate,
	}, nil
}

// setupSession opens one bench session: queue admission, the cell's
// cache mode, and (outside simple mode) one prepared statement per mix
// entry named mix<i>.
func setupSession(e *engine.Engine, mix []mixQuery, mode string) (*engine.Session, error) {
	s := e.NewSession()
	if _, err := s.Query("SET resource_queue = serving"); err != nil {
		return nil, err
	}
	if mode == ModeNoCache {
		if _, err := s.Query("SET plan_cache = off"); err != nil {
			return nil, err
		}
	}
	if mode != ModeSimple {
		for qi, q := range mix {
			if err := s.Prepare(fmt.Sprintf("mix%d", qi), q.sql); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// substituteArg inlines the single $1 argument into the SQL text (the
// simple-query baseline has no placeholders).
func substituteArg(sql string, arg types.Datum) string {
	lit := arg.String()
	if arg.K == types.KindString {
		lit = "'" + lit + "'"
	}
	out := make([]byte, 0, len(sql)+len(lit))
	for i := 0; i < len(sql); i++ {
		if sql[i] == '$' && i+1 < len(sql) && sql[i+1] == '1' {
			out = append(out, lit...)
			i++
			continue
		}
		out = append(out, sql[i])
	}
	return string(out)
}

// Report renders the sweep as a bench table.
func (r *ConcurrencyResult) Report() *Report {
	rep := &Report{
		Title:   "Concurrent serving: throughput and latency percentiles vs session count",
		Columns: []string{"sessions", "mode", "ops", "errors", "QPS", "p50 ms", "p95 ms", "p99 ms", "cache hit"},
		Notes: []string{
			fmt.Sprintf("TPC-H SF %g, %d segments; closed loop through resource queue", r.ScaleFactor, r.Segments),
			"modes: prepared (plan cache on), prepared_nocache (SET plan_cache = off), simple (SQL text per op)",
		},
	}
	for _, p := range r.Points {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p.Sessions),
			p.Mode,
			fmt.Sprintf("%d", p.Ops),
			fmt.Sprintf("%d", p.Errors),
			fmt.Sprintf("%.1f", p.QPS),
			fmt.Sprintf("%.3f", p.P50ms),
			fmt.Sprintf("%.3f", p.P95ms),
			fmt.Sprintf("%.3f", p.P99ms),
			fmt.Sprintf("%.1f%%", p.CacheHitRate*100),
		})
	}
	return rep
}

// WriteJSON writes the sweep to path (BENCH_concurrency.json).
func (r *ConcurrencyResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

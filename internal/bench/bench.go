// Package bench is the experiment harness reproducing every figure of
// the paper's evaluation (§8). Each Fig* function runs one experiment at
// laptop scale and returns a Report with the same series the paper
// plots; cmd/hawq-bench prints them and bench_test.go wraps them as
// testing.B benchmarks. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hawq/internal/engine"
	"hawq/internal/hdfs"
	"hawq/internal/stinger"
	"hawq/internal/tpch"
)

// Config scales the experiments.
type Config struct {
	// Segments is the HAWQ cluster size (the paper used 96 segments on
	// 16 nodes; default 4 here).
	Segments int
	// SFSmall is the CPU-bound scale (paper: 160GB in memory).
	SFSmall float64
	// SFLarge is the IO-bound scale (paper: 1.6TB on disk).
	SFLarge float64
	// SpillDir is the scratch directory.
	SpillDir string
	// Stinger tunes the baseline runtime.
	Stinger stinger.Config
	// Queries restricts the suite (nil = all 22).
	Queries []int
}

// Defaults fills zero fields.
func (c *Config) Defaults() {
	if c.Segments <= 0 {
		c.Segments = 4
	}
	if c.SFSmall == 0 {
		c.SFSmall = 0.002
	}
	if c.SFLarge == 0 {
		c.SFLarge = 0.01
	}
	if c.Stinger.MapTasks == 0 {
		c.Stinger = stinger.Config{
			MapTasks:         4,
			ReduceTasks:      4,
			Workers:          4,
			ContainerStartup: 15 * time.Millisecond,
			SpillDir:         c.SpillDir,
		}
	}
}

func (c *Config) queries() []int {
	if len(c.Queries) > 0 {
		return c.Queries
	}
	return tpch.AllQueryNumbers()
}

// Report is one experiment's output table.
type Report struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes record substitutions and context.
	Notes []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// seconds renders a duration as fractional seconds.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// newHAWQ boots an engine with the given storage/distribution and loads
// TPC-H into it.
func newHAWQ(cfg Config, sf float64, orientation, compress string, level int, dist string, io *hdfs.IOModel) (*engine.Engine, error) {
	e, err := engine.New(engine.Config{
		Segments: cfg.Segments,
		SpillDir: cfg.SpillDir,
		HDFS:     hdfs.Config{DataNodes: cfg.Segments, IO: io},
	})
	if err != nil {
		return nil, err
	}
	_, err = tpch.Load(e, tpch.LoadOptions{
		Scale:         tpch.Scale{SF: sf},
		Orientation:   orientation,
		CompressType:  compress,
		CompressLevel: level,
		Distribution:  dist,
	})
	if err != nil {
		return nil, errors.Join(err, e.Close())
	}
	return e, nil
}

// runSuite executes the query list and returns the total wall time.
func runSuite(e *engine.Engine, queries []int) (time.Duration, error) {
	s := e.NewSession()
	//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
	start := time.Now()
	for _, q := range queries {
		if _, err := s.Query(tpch.Queries[q]); err != nil {
			return 0, fmt.Errorf("Q%d: %w", q, err)
		}
	}
	//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
	return time.Since(start), nil
}

// runSuiteStinger is the Stinger counterpart.
func runSuiteStinger(se *stinger.Engine, queries []int) (time.Duration, error) {
	//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
	start := time.Now()
	for _, q := range queries {
		if _, _, err := se.Query(tpch.Queries[q]); err != nil {
			return 0, fmt.Errorf("Q%d: %w", q, err)
		}
	}
	//hawqcheck:ignore clockwall — benchmarks measure real wall time by design
	return time.Since(start), nil
}

// newStinger boots the baseline with TPC-H loaded.
func newStinger(cfg Config, sf float64, io *hdfs.IOModel) (*stinger.Engine, error) {
	fs, err := hdfs.New(hdfs.Config{DataNodes: cfg.Segments, IO: io})
	if err != nil {
		return nil, err
	}
	se, err := stinger.NewEngine(fs, cfg.Stinger)
	if err != nil {
		return nil, err
	}
	if err := stinger.LoadTPCH(se, tpch.Scale{SF: sf}); err != nil {
		se.Close()
		return nil, err
	}
	return se, nil
}

package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // punctuation and operators
	tokParam // $n positional parameter; val holds the digits
)

type token struct {
	kind tokenKind
	val  string // identifiers lowered; keywords compared case-insensitively
	raw  string
	pos  int
}

// lexer splits SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; parse errors can then report
// positions cheaply.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, val: s, raw: l.src[start:l.pos], pos: start})
		case c == '"':
			s, err := l.lexQuotedIdent()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokIdent, val: s, raw: l.src[start:l.pos], pos: start})
		case isDigit(c) || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
			l.toks = append(l.toks, token{kind: tokNumber, val: l.src[start:l.pos], raw: l.src[start:l.pos], pos: start})
		case c == '$' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.pos++ // '$'
			digits := l.pos
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokParam, val: l.src[digits:l.pos], raw: l.src[start:l.pos], pos: start})
		case isIdentStart(c):
			l.lexIdent()
			raw := l.src[start:l.pos]
			l.toks = append(l.toks, token{kind: tokIdent, val: strings.ToLower(raw), raw: raw, pos: start})
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokOp, val: op, raw: op, pos: start})
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string literal at %d", l.pos)
}

func (l *lexer) lexQuotedIdent() (string, error) {
	l.pos++
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return "", fmt.Errorf("sql: unterminated quoted identifier")
	}
	s := l.src[start:l.pos]
	l.pos++
	return s, nil
}

func (l *lexer) lexNumber() {
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	// Exponent.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
}

func (l *lexer) lexIdent() {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true, "||": true}

func (l *lexer) lexOp() (string, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.pos += 2
			if two == "!=" {
				return "<>", nil
			}
			return two, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '+', '-', '*', '/', '%', '<', '>', '=', '.':
		l.pos++
		return string(c), nil
	}
	if c < 128 && unicode.IsPrint(rune(c)) {
		return "", fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
	}
	return "", fmt.Errorf("sql: unexpected byte 0x%02x at %d", c, l.pos)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

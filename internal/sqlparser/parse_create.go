package sqlparser

import (
	"strconv"
	"strings"
	"time"
)

func (p *parser) parseCreate() (Statement, error) {
	p.next() // create
	if p.matchKw("external") {
		return p.parseCreateExternal()
	}
	if p.matchKw("resource") {
		return p.parseCreateResourceQueue()
	}
	if p.matchKw("task") {
		return p.parseCreateTask()
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	c := &CreateTableStmt{}
	if p.matchKw("if") {
		if err := p.expectKw("not"); err != nil {
			return nil, err
		}
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		c.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	c.Name = name
	cols, err := p.parseColumnDefs()
	if err != nil {
		return nil, err
	}
	c.Columns = cols
	// Optional clauses in any order: WITH (...), DISTRIBUTED ..., PARTITION BY ...
	for {
		switch {
		case p.matchKw("with"):
			if err := p.parseStorageOptions(&c.Storage); err != nil {
				return nil, err
			}
		case p.matchKw("distributed"):
			if p.matchKw("randomly") {
				c.Randomly = true
				continue
			}
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				c.DistributedBy = append(c.DistributedBy, col)
				if !p.matchOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		case p.matchKw("partition"):
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			spec, err := p.parsePartitionSpec()
			if err != nil {
				return nil, err
			}
			c.Partition = spec
		default:
			return c, nil
		}
	}
}

// parseCreateResourceQueue parses CREATE RESOURCE QUEUE name WITH
// (active_statements=N, memory_limit='256MB').
func (p *parser) parseCreateResourceQueue() (Statement, error) {
	if err := p.expectKw("queue"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	c := &CreateResourceQueueStmt{Name: name}
	if !p.matchKw("with") {
		return c, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent && t.kind != tokNumber && t.kind != tokString {
			return nil, p.errf("bad resource queue option value")
		}
		switch key {
		case "active_statements":
			n, err := strconv.ParseInt(t.val, 10, 64)
			if err != nil || n < 0 {
				return nil, p.errf("bad active_statements %q", t.val)
			}
			c.ActiveStatements = n
		case "memory_limit":
			c.MemoryLimit = t.val
		default:
			return nil, p.errf("unknown resource queue option %q", key)
		}
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseCreateTask parses CREATE TASK name SCHEDULE EVERY <n> <unit> AS
// <stmt>, registering a user-defined periodic statement.
func (p *parser) parseCreateTask() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("schedule"); err != nil {
		return nil, err
	}
	if err := p.expectKw("every"); err != nil {
		return nil, err
	}
	every, err := p.parseScheduleInterval()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	switch inner.(type) {
	case *CreateTaskStmt, *DropTaskStmt:
		return nil, p.errf("a task cannot define another task")
	}
	return &CreateTaskStmt{Name: name, Every: every, Stmt: inner}, nil
}

// parseScheduleInterval parses <n> <unit> where unit is milliseconds,
// seconds, minutes, hours or days (singular or plural).
func (p *parser) parseScheduleInterval() (time.Duration, error) {
	n, err := p.parseInt()
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, p.errf("schedule interval must be positive")
	}
	unit, err := p.ident()
	if err != nil {
		return 0, err
	}
	var base time.Duration
	switch strings.TrimSuffix(unit, "s") {
	case "millisecond":
		base = time.Millisecond
	case "second":
		base = time.Second
	case "minute":
		base = time.Minute
	case "hour":
		base = time.Hour
	case "day":
		base = 24 * time.Hour
	default:
		return 0, p.errf("unknown schedule unit %q", unit)
	}
	return time.Duration(n) * base, nil
}

func (p *parser) parseColumnDefs() ([]ColumnDef, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		col := ColumnDef{Name: name, TypeName: typeName}
		// Trailing column constraints: NOT NULL, PRIMARY KEY (accepted,
		// the latter ignored like Greenplum does for AO tables).
		for {
			switch {
			case p.matchKw("not"):
				if err := p.expectKw("null"); err != nil {
					return nil, err
				}
				col.NotNull = true
			case p.matchKw("primary"):
				if err := p.expectKw("key"); err != nil {
					return nil, err
				}
			case p.matchKw("null"):
			default:
				goto doneConstraints
			}
		}
	doneConstraints:
		cols = append(cols, col)
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

// parseStorageOptions parses WITH (appendonly=true, orientation=column,
// compresstype=zlib, compresslevel=5).
func (p *parser) parseStorageOptions(s *StorageOptions) error {
	if err := p.expectOp("("); err != nil {
		return err
	}
	for {
		key, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expectOp("="); err != nil {
			return err
		}
		t := p.next()
		if t.kind != tokIdent && t.kind != tokNumber && t.kind != tokString {
			return p.errf("bad WITH option value")
		}
		val := t.val
		switch key {
		case "appendonly": // always true for HAWQ user tables
		case "orientation":
			s.Orientation = val
		case "compresstype":
			s.CompressType = val
		case "compresslevel":
			n, err := strconv.Atoi(val)
			if err != nil {
				return p.errf("bad compresslevel %q", val)
			}
			s.CompressLevel = n
		default:
			return p.errf("unknown WITH option %q", key)
		}
		if !p.matchOp(",") {
			break
		}
	}
	return p.expectOp(")")
}

// parsePartitionSpec parses RANGE and LIST partition clauses:
//
//	PARTITION BY RANGE (date)
//	  (START (DATE '2008-01-01') INCLUSIVE
//	   END (DATE '2009-01-01') EXCLUSIVE
//	   EVERY (INTERVAL '1 month'))
//
//	PARTITION BY LIST (region)
//	  (PARTITION asia VALUES ('CHINA','JAPAN'), PARTITION emea VALUES ('UK'))
func (p *parser) parsePartitionSpec() (*PartitionSpec, error) {
	spec := &PartitionSpec{}
	switch {
	case p.matchKw("range"):
		spec.IsRange = true
	case p.matchKw("list"):
	default:
		return nil, p.errf("expected RANGE or LIST")
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	spec.Column = col
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if spec.IsRange {
		if err := p.expectKw("start"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		start, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		spec.Start = start
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.matchKw("inclusive")
		if err := p.expectKw("end"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		end, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		spec.End = end
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.matchKw("exclusive")
		if err := p.expectKw("every"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		every, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		switch e := every.(type) {
		case *IntervalLit:
			spec.EveryN, spec.EveryUnit = e.N, e.Unit
		case *NumLit:
			n, err := strconv.ParseInt(e.S, 10, 64)
			if err != nil {
				return nil, p.errf("bad EVERY step %q", e.S)
			}
			spec.EveryN = n
		default:
			return nil, p.errf("EVERY requires an interval or integer")
		}
	} else {
		for {
			if err := p.expectKw("partition"); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("values"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			lp := ListPartition{Name: name}
			for {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lp.Values = append(lp.Values, v)
				if !p.matchOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			spec.ListParts = append(spec.ListParts, lp)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseCreateExternal parses CREATE EXTERNAL TABLE name (cols) LOCATION
// ('pxf://...') FORMAT 'CUSTOM' (§6.1). Format options in parentheses are
// accepted and recorded verbatim.
func (p *parser) parseCreateExternal() (Statement, error) {
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnDefs()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("location"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	loc := p.next()
	if loc.kind != tokString {
		return nil, p.errf("LOCATION requires a string")
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	c := &CreateExternalTableStmt{Name: name, Columns: cols, Location: loc.val}
	if p.matchKw("format") {
		f := p.next()
		if f.kind != tokString {
			return nil, p.errf("FORMAT requires a string")
		}
		c.Format = f.val
		// Optional formatter options: (formatter='pxfwritable_import').
		if p.matchOp("(") {
			depth := 1
			for depth > 0 {
				t := p.next()
				if t.kind == tokEOF {
					return nil, p.errf("unterminated FORMAT options")
				}
				if t.kind == tokOp && t.val == "(" {
					depth++
				}
				if t.kind == tokOp && t.val == ")" {
					depth--
				}
			}
		}
	}
	return c, nil
}

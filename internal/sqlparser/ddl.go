package sqlparser

import (
	"fmt"
	"strings"
	"time"
)

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string // INT8, INTEGER, DECIMAL(15,2), CHAR(1), VARCHAR(n), DATE, TEXT, DOUBLE
	NotNull  bool
}

// String renders the node back to SQL text.
func (c ColumnDef) String() string {
	s := c.Name + " " + c.TypeName
	if c.NotNull {
		s += " NOT NULL"
	}
	return s
}

// StorageOptions carries the WITH (...) table options: storage model and
// compression (§2.5).
type StorageOptions struct {
	// Orientation is "row" (AO), "column" (CO) or "parquet".
	Orientation string
	// CompressType names a codec: none, quicklz, zlib, snappy, gzip, rle.
	CompressType string
	// CompressLevel applies to zlib/gzip.
	CompressLevel int
}

// PartitionSpec describes PARTITION BY RANGE/LIST.
type PartitionSpec struct {
	Column string
	// Range partitioning.
	IsRange    bool
	Start, End Expr
	EveryN     int64
	EveryUnit  string // "month", "year", "day" for dates; "" for numeric step
	// List partitioning.
	ListParts []ListPartition
}

// ListPartition is one PARTITION name VALUES (...) clause.
type ListPartition struct {
	Name   string
	Values []Expr
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	// DistributedBy lists the hash-distribution columns; empty plus
	// Randomly=false means default (first column).
	DistributedBy []string
	Randomly      bool
	Storage       StorageOptions
	Partition     *PartitionSpec
}

func (*CreateTableStmt) stmt() {}

// String renders the node back to SQL text.
func (c *CreateTableStmt) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = col.String()
	}
	s := fmt.Sprintf("CREATE TABLE %s (%s)", c.Name, strings.Join(cols, ", "))
	if c.Randomly {
		s += " DISTRIBUTED RANDOMLY"
	} else if len(c.DistributedBy) > 0 {
		s += " DISTRIBUTED BY (" + strings.Join(c.DistributedBy, ", ") + ")"
	}
	return s
}

// CreateExternalTableStmt is CREATE EXTERNAL TABLE ... LOCATION ('pxf://...')
// FORMAT '...' (§6.1).
type CreateExternalTableStmt struct {
	Name     string
	Columns  []ColumnDef
	Location string
	Format   string
}

func (*CreateExternalTableStmt) stmt() {}

// String renders the node back to SQL text.
func (c *CreateExternalTableStmt) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = col.String()
	}
	return fmt.Sprintf("CREATE EXTERNAL TABLE %s (%s) LOCATION ('%s') FORMAT '%s'",
		c.Name, strings.Join(cols, ", "), c.Location, c.Format)
}

// CreateResourceQueueStmt is CREATE RESOURCE QUEUE name WITH
// (active_statements=N, memory_limit='BYTES') — the workload-manager
// admission object of §2.1's resource manager.
type CreateResourceQueueStmt struct {
	Name string
	// ActiveStatements caps concurrently running statements (0 =
	// unlimited).
	ActiveStatements int64
	// MemoryLimit is the per-query memory grant spec ("256MB", "1048576",
	// ...); empty means unlimited.
	MemoryLimit string
}

func (*CreateResourceQueueStmt) stmt() {}

// String renders the node back to SQL text.
func (c *CreateResourceQueueStmt) String() string {
	var opts []string
	if c.ActiveStatements > 0 {
		opts = append(opts, fmt.Sprintf("active_statements=%d", c.ActiveStatements))
	}
	if c.MemoryLimit != "" {
		opts = append(opts, fmt.Sprintf("memory_limit='%s'", c.MemoryLimit))
	}
	s := "CREATE RESOURCE QUEUE " + c.Name
	if len(opts) > 0 {
		s += " WITH (" + strings.Join(opts, ", ") + ")"
	}
	return s
}

// DropResourceQueueStmt is DROP RESOURCE QUEUE name.
type DropResourceQueueStmt struct {
	Name     string
	IfExists bool
}

func (*DropResourceQueueStmt) stmt() {}

// String renders the node back to SQL text.
func (d *DropResourceQueueStmt) String() string { return "DROP RESOURCE QUEUE " + d.Name }

// CreateTaskStmt is CREATE TASK name SCHEDULE EVERY <interval> AS <stmt>:
// a user-defined periodic statement registered with the background
// maintenance scheduler (poor-man's materialized view refresh).
type CreateTaskStmt struct {
	Name string
	// Every is the firing period.
	Every time.Duration
	// Stmt is the statement the scheduler executes each period.
	Stmt Statement
}

func (*CreateTaskStmt) stmt() {}

// String renders the node back to SQL text.
func (c *CreateTaskStmt) String() string {
	return fmt.Sprintf("CREATE TASK %s SCHEDULE EVERY %s AS %s", c.Name, intervalSQL(c.Every), c.Stmt)
}

// intervalSQL renders a duration as the largest whole unit the grammar
// accepts, so String() output re-parses to the same period.
func intervalSQL(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%d HOURS", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%d MINUTES", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%d SECONDS", d/time.Second)
	default:
		return fmt.Sprintf("%d MILLISECONDS", d/time.Millisecond)
	}
}

// DropTaskStmt is DROP TASK [IF EXISTS] name.
type DropTaskStmt struct {
	Name     string
	IfExists bool
}

func (*DropTaskStmt) stmt() {}

// String renders the node back to SQL text.
func (d *DropTaskStmt) String() string { return "DROP TASK " + d.Name }

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

func (*DropTableStmt) stmt() {}

// String renders the node back to SQL text.
func (d *DropTableStmt) String() string { return "DROP TABLE " + d.Name }

// TruncateStmt is TRUNCATE TABLE.
type TruncateStmt struct {
	Name string
}

func (*TruncateStmt) stmt() {}

// String renders the node back to SQL text.
func (t *TruncateStmt) String() string { return "TRUNCATE TABLE " + t.Name }

// InsertStmt is INSERT INTO ... VALUES or INSERT INTO ... SELECT.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

func (*InsertStmt) stmt() {}

// String renders the node back to SQL text.
func (i *InsertStmt) String() string {
	s := "INSERT INTO " + i.Table
	if len(i.Columns) > 0 {
		s += " (" + strings.Join(i.Columns, ", ") + ")"
	}
	if i.Select != nil {
		return s + " " + i.Select.String()
	}
	var rows []string
	for _, row := range i.Rows {
		vals := make([]string, len(row))
		for j, e := range row {
			vals[j] = e.String()
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return s + " VALUES " + strings.Join(rows, ", ")
}

// ExplainStmt wraps another statement. Analyze marks EXPLAIN ANALYZE:
// the statement is executed and the plan is rendered with the per-slice
// runtime statistics the gang reported.
type ExplainStmt struct {
	Stmt    Statement
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// String renders the node back to SQL text.
func (e *ExplainStmt) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}

// BeginStmt starts a transaction, optionally with an isolation level
// ("read committed", "serializable", and the two levels that map onto
// them, §5.1).
type BeginStmt struct {
	Isolation string
}

func (*BeginStmt) stmt() {}

// String renders the node back to SQL text.
func (b *BeginStmt) String() string { return "BEGIN" }

// CommitStmt commits the current transaction.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// String renders the node back to SQL text.
func (*CommitStmt) String() string { return "COMMIT" }

// RollbackStmt aborts the current transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// String renders the node back to SQL text.
func (*RollbackStmt) String() string { return "ROLLBACK" }

// SetStmt is SET key = value (including SET TRANSACTION ISOLATION LEVEL ...).
type SetStmt struct {
	Name  string
	Value string
}

func (*SetStmt) stmt() {}

// String renders the node back to SQL text.
func (s *SetStmt) String() string { return fmt.Sprintf("SET %s = %s", s.Name, s.Value) }

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE ...]. HAWQ user
// tables are append-only; UPDATE exists for catalog tables via CaQL
// (§2.2).
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one "col = expr" assignment.
type SetClause struct {
	Column string
	Value  Expr
}

func (*UpdateStmt) stmt() {}

// String renders the node back to SQL text.
func (u *UpdateStmt) String() string {
	parts := make([]string, len(u.Set))
	for i, s := range u.Set {
		parts[i] = fmt.Sprintf("%s = %s", s.Column, s.Value)
	}
	out := fmt.Sprintf("UPDATE %s SET %s", u.Table, strings.Join(parts, ", "))
	if u.Where != nil {
		out += " WHERE " + u.Where.String()
	}
	return out
}

// AnalyzeStmt collects planner statistics for a table (§6.3 for PXF
// tables; native tables too).
type AnalyzeStmt struct {
	Table string // empty means all tables
}

func (*AnalyzeStmt) stmt() {}

// String renders the node back to SQL text.
func (a *AnalyzeStmt) String() string {
	if a.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + a.Table
}

// VacuumStmt reclaims dead catalog row versions (the periodic vacuum the
// paper mentions MVCC systems need, §5.3).
type VacuumStmt struct{}

func (*VacuumStmt) stmt() {}

// String renders the node back to SQL text.
func (*VacuumStmt) String() string { return "VACUUM" }

// ShowStmt is SHOW <name> (used for segment status etc.).
type ShowStmt struct {
	Name string
}

func (*ShowStmt) stmt() {}

// String renders the node back to SQL text.
func (s *ShowStmt) String() string { return "SHOW " + s.Name }

// DeleteStmt is DELETE FROM (catalog-style deletes and small user tables;
// user tables implement it as truncate-and-rewrite since HDFS files are
// append-only).
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// String renders the node back to SQL text.
func (d *DeleteStmt) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

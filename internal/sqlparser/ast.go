// Package sqlparser implements the SQL dialect HAWQ accepts: a
// hand-written lexer and recursive-descent parser producing a pure syntax
// tree. Semantic analysis (name resolution, typing) happens in the
// planner, mirroring the parse → analyze → plan pipeline of §2.4.
package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	fmt.Stringer
}

// Expr is a syntax-level expression (unresolved names, untyped literals).
type Expr interface {
	expr()
	fmt.Stringer
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct    bool
	Projections []SelectItem
	From        []TableRef
	Where       Expr
	GroupBy     []Expr
	Having      Expr
	OrderBy     []OrderItem
	Limit       *int64
	Offset      *int64
}

func (*SelectStmt) stmt() {}

// String renders the node back to SQL text.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, p := range s.Projections {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.String())
		}
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&b, " OFFSET %d", *s.Offset)
	}
	return b.String()
}

// SelectItem is one projection: an expression with an optional alias, or
// a star.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	// TableStar is set for "t.*".
	TableStar string
}

// String renders the node back to SQL text.
func (s SelectItem) String() string {
	if s.Star {
		if s.TableStar != "" {
			return s.TableStar + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders the node back to SQL text.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// TableRef is a FROM-clause item.
type TableRef interface {
	tableRef()
	fmt.Stringer
}

// TableName references a base table with an optional alias.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRef() {}

// String renders the node back to SQL text.
func (t *TableName) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// JoinType enumerates join syntax kinds.
type JoinType uint8

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

var joinNames = [...]string{"JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN", "CROSS JOIN"}

// String renders the node back to SQL text.
func (j JoinType) String() string { return joinNames[j] }

// Join is an explicit join between two table refs.
type Join struct {
	Type        JoinType
	Left, Right TableRef
	On          Expr
}

func (*Join) tableRef() {}

// String renders the node back to SQL text.
func (j *Join) String() string {
	s := fmt.Sprintf("%s %s %s", j.Left, j.Type, j.Right)
	if j.On != nil {
		s += fmt.Sprintf(" ON %s", j.On)
	}
	return s
}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

// String renders the node back to SQL text.
func (s *SubqueryRef) String() string { return fmt.Sprintf("(%s) %s", s.Select, s.Alias) }

// Ident is a possibly qualified name: col or tab.col.
type Ident struct {
	Parts []string
}

func (*Ident) expr() {}

// String renders the node back to SQL text.
func (i *Ident) String() string { return strings.Join(i.Parts, ".") }

// Column returns the last part (the column name).
func (i *Ident) Column() string { return i.Parts[len(i.Parts)-1] }

// Qualifier returns the table qualifier or "".
func (i *Ident) Qualifier() string {
	if len(i.Parts) > 1 {
		return i.Parts[len(i.Parts)-2]
	}
	return ""
}

// NumLit is an unparsed numeric literal.
type NumLit struct {
	S string
}

func (*NumLit) expr() {}

// String renders the node back to SQL text.
func (n *NumLit) String() string { return n.S }

// StrLit is a string literal.
type StrLit struct {
	S string
}

func (*StrLit) expr() {}

// String renders the node back to SQL text.
func (s *StrLit) String() string { return "'" + strings.ReplaceAll(s.S, "'", "''") + "'" }

// DateLit is DATE 'YYYY-MM-DD'.
type DateLit struct {
	S string
}

func (*DateLit) expr() {}

// String renders the node back to SQL text.
func (d *DateLit) String() string { return "DATE '" + d.S + "'" }

// IntervalLit is INTERVAL '<n>' <unit> or INTERVAL '<n> <unit>'.
type IntervalLit struct {
	N    int64
	Unit string // day, month, year
}

func (*IntervalLit) expr() {}

// String renders the node back to SQL text.
func (iv *IntervalLit) String() string {
	return fmt.Sprintf("INTERVAL '%d' %s", iv.N, strings.ToUpper(iv.Unit))
}

// BoolLit is TRUE/FALSE.
type BoolLit struct {
	V bool
}

func (*BoolLit) expr() {}

// String renders the node back to SQL text.
func (b *BoolLit) String() string {
	if b.V {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is the NULL literal.
type NullLit struct{}

func (*NullLit) expr() {}

// String renders the node back to SQL text.
func (*NullLit) String() string { return "NULL" }

// BinExpr is a binary operation, operator spelled as in SQL.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// String renders the node back to SQL text.
func (b *BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// UnExpr is NOT or unary minus.
type UnExpr struct {
	Op string
	E  Expr
}

func (*UnExpr) expr() {}

// String renders the node back to SQL text.
func (u *UnExpr) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// FuncExpr is a function call, possibly aggregate.
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncExpr) expr() {}

// String renders the node back to SQL text.
func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(args, ", "))
}

// CaseExpr is a searched or simple CASE.
type CaseExpr struct {
	Operand Expr // non-nil for simple CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

func (*CaseExpr) expr() {}

// String renders the node back to SQL text.
func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		fmt.Fprintf(&b, " %s", c.Operand)
	}
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// CastExpr is CAST(e AS type).
type CastExpr struct {
	E        Expr
	TypeName string
}

func (*CastExpr) expr() {}

// String renders the node back to SQL text.
func (c *CastExpr) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.TypeName) }

// IsNullExpr is "e IS [NOT] NULL".
type IsNullExpr struct {
	E      Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

// String renders the node back to SQL text.
func (i *IsNullExpr) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// LikeExpr is "e [NOT] LIKE pattern".
type LikeExpr struct {
	E       Expr
	Pattern Expr
	Negate  bool
}

func (*LikeExpr) expr() {}

// String renders the node back to SQL text.
func (l *LikeExpr) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %s)", l.E, op, l.Pattern)
}

// InExpr is "e [NOT] IN (list)" or "e [NOT] IN (subquery)".
type InExpr struct {
	E      Expr
	List   []Expr
	Sub    *SelectStmt
	Negate bool
}

func (*InExpr) expr() {}

// String renders the node back to SQL text.
func (in *InExpr) String() string {
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	if in.Sub != nil {
		return fmt.Sprintf("(%s %s (%s))", in.E, op, in.Sub)
	}
	items := make([]string, len(in.List))
	for i, it := range in.List {
		items[i] = it.String()
	}
	return fmt.Sprintf("(%s %s (%s))", in.E, op, strings.Join(items, ", "))
}

// BetweenExpr is "e [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negate    bool
}

func (*BetweenExpr) expr() {}

// String renders the node back to SQL text.
func (b *BetweenExpr) String() string {
	op := "BETWEEN"
	if b.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", b.E, op, b.Lo, b.Hi)
}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Sub    *SelectStmt
	Negate bool
}

func (*ExistsExpr) expr() {}

// String renders the node back to SQL text.
func (e *ExistsExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(NOT EXISTS (%s))", e.Sub)
	}
	return fmt.Sprintf("(EXISTS (%s))", e.Sub)
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Sub *SelectStmt
}

func (*SubqueryExpr) expr() {}

// String renders the node back to SQL text.
func (s *SubqueryExpr) String() string { return fmt.Sprintf("(%s)", s.Sub) }

// ExtractExpr is EXTRACT(field FROM e).
type ExtractExpr struct {
	Field string
	E     Expr
}

func (*ExtractExpr) expr() {}

// String renders the node back to SQL text.
func (e *ExtractExpr) String() string {
	return fmt.Sprintf("EXTRACT(%s FROM %s)", strings.ToUpper(e.Field), e.E)
}

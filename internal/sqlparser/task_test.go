package sqlparser

import (
	"strings"
	"testing"
	"time"
)

func TestParseCreateTask(t *testing.T) {
	s, err := ParseOne("CREATE TASK nightly SCHEDULE EVERY 12 HOURS AS ANALYZE orders")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.(*CreateTaskStmt)
	if !ok {
		t.Fatalf("got %T, want *CreateTaskStmt", s)
	}
	if c.Name != "nightly" || c.Every != 12*time.Hour {
		t.Errorf("stmt = %+v", c)
	}
	if _, ok := c.Stmt.(*AnalyzeStmt); !ok {
		t.Errorf("inner statement = %T, want *AnalyzeStmt", c.Stmt)
	}
	// String() renders back to parseable SQL.
	if got := c.String(); got != "CREATE TASK nightly SCHEDULE EVERY 12 HOURS AS ANALYZE orders" {
		t.Errorf("String() = %q", got)
	}
	if _, err := ParseOne(c.String()); err != nil {
		t.Errorf("String() does not re-parse: %v", err)
	}
}

func TestParseCreateTaskUnits(t *testing.T) {
	cases := map[string]time.Duration{
		"500 MILLISECONDS": 500 * time.Millisecond,
		"1 SECOND":         time.Second,
		"30 seconds":       30 * time.Second,
		"5 MINUTES":        5 * time.Minute,
		"2 hours":          2 * time.Hour,
		"1 DAY":            24 * time.Hour,
	}
	for unit, want := range cases {
		s, err := ParseOne("CREATE TASK t SCHEDULE EVERY " + unit + " AS SELECT 1")
		if err != nil {
			t.Errorf("%s: %v", unit, err)
			continue
		}
		if got := s.(*CreateTaskStmt).Every; got != want {
			t.Errorf("%s: interval = %v, want %v", unit, got, want)
		}
	}
}

func TestParseCreateTaskErrors(t *testing.T) {
	cases := []struct {
		sql, want string
	}{
		{"CREATE TASK t SCHEDULE EVERY 0 SECONDS AS SELECT 1", "positive"},
		{"CREATE TASK t SCHEDULE EVERY 5 FORTNIGHTS AS SELECT 1", "unknown schedule unit"},
		{"CREATE TASK t SCHEDULE EVERY 5 SECONDS AS CREATE TASK u SCHEDULE EVERY 5 SECONDS AS SELECT 1", "cannot define another task"},
		{"CREATE TASK t AS SELECT 1", "expected"},
	}
	for _, c := range cases {
		_, err := ParseOne(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want substring %q", c.sql, err, c.want)
		}
	}
}

func TestParseDropTask(t *testing.T) {
	s, err := ParseOne("DROP TASK nightly")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s.(*DropTaskStmt)
	if !ok {
		t.Fatalf("got %T, want *DropTaskStmt", s)
	}
	if d.Name != "nightly" || d.IfExists {
		t.Errorf("stmt = %+v", d)
	}
	s, err = ParseOne("DROP TASK IF EXISTS nightly")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.(*DropTaskStmt); !d.IfExists {
		t.Errorf("IF EXISTS not recorded: %+v", d)
	}
}

package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a semicolon-separated sequence of SQL statements.
func Parse(sql string) ([]Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	var stmts []Statement
	for {
		for p.matchOp(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.matchOp(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(sql string) (Statement, error) {
	stmts, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	near := t.raw
	if t.kind == tokEOF {
		near = "end of input"
	}
	return fmt.Errorf("sql: %s (near %q at offset %d)", fmt.Sprintf(format, args...), near, t.pos)
}

// matchKw consumes the given keyword (case-insensitive) if present.
func (p *parser) matchKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && t.val == kw {
		p.i++
		return true
	}
	return false
}

// peekKw reports whether the next token is the keyword.
func (p *parser) peekKw(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.val == kw
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) matchOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.val == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) peekOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.val == op
}

func (p *parser) expectOp(op string) error {
	if !p.matchOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	p.i++
	return t.val, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement")
	}
	switch t.val {
	case "select":
		return p.parseSelect()
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "insert":
		return p.parseInsert()
	case "delete":
		return p.parseDelete()
	case "update":
		return p.parseUpdate()
	case "explain":
		p.next()
		analyze := p.matchKw("analyze")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	case "begin", "start":
		return p.parseBegin()
	case "commit", "end":
		p.next()
		p.matchKw("transaction")
		p.matchKw("work")
		return &CommitStmt{}, nil
	case "rollback", "abort":
		p.next()
		p.matchKw("transaction")
		p.matchKw("work")
		return &RollbackStmt{}, nil
	case "set":
		return p.parseSet()
	case "analyze":
		p.next()
		if p.peek().kind == tokIdent {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &AnalyzeStmt{Table: name}, nil
		}
		return &AnalyzeStmt{}, nil
	case "truncate":
		p.next()
		p.matchKw("table")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &TruncateStmt{Name: name}, nil
	case "show":
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{Name: name}, nil
	case "vacuum":
		p.next()
		return &VacuumStmt{}, nil
	case "prepare":
		return p.parsePrepare()
	case "execute":
		return p.parseExecute()
	case "deallocate":
		return p.parseDeallocate()
	}
	return nil, p.errf("unsupported statement %q", t.raw)
}

func (p *parser) parseBegin() (Statement, error) {
	p.next()
	p.matchKw("transaction")
	p.matchKw("work")
	b := &BeginStmt{}
	if p.matchKw("isolation") {
		if err := p.expectKw("level"); err != nil {
			return nil, err
		}
		lvl, err := p.parseIsolationLevel()
		if err != nil {
			return nil, err
		}
		b.Isolation = lvl
	}
	return b, nil
}

func (p *parser) parseIsolationLevel() (string, error) {
	switch {
	case p.matchKw("serializable"):
		return "serializable", nil
	case p.matchKw("read"):
		if p.matchKw("committed") {
			return "read committed", nil
		}
		if p.matchKw("uncommitted") {
			return "read uncommitted", nil
		}
	case p.matchKw("repeatable"):
		if p.matchKw("read") {
			return "repeatable read", nil
		}
	}
	return "", p.errf("bad isolation level")
}

func (p *parser) parseSet() (Statement, error) {
	p.next()
	if p.matchKw("transaction") {
		if err := p.expectKw("isolation"); err != nil {
			return nil, err
		}
		if err := p.expectKw("level"); err != nil {
			return nil, err
		}
		lvl, err := p.parseIsolationLevel()
		if err != nil {
			return nil, err
		}
		return &SetStmt{Name: "transaction_isolation", Value: lvl}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !p.matchOp("=") {
		p.matchKw("to")
	}
	t := p.next()
	if t.kind != tokIdent && t.kind != tokString && t.kind != tokNumber {
		return nil, p.errf("expected SET value")
	}
	return &SetStmt{Name: name, Value: t.val}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next()
	if p.matchKw("resource") {
		if err := p.expectKw("queue"); err != nil {
			return nil, err
		}
		d := &DropResourceQueueStmt{}
		if p.matchKw("if") {
			if err := p.expectKw("exists"); err != nil {
				return nil, err
			}
			d.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Name = name
		return d, nil
	}
	if p.matchKw("task") {
		d := &DropTaskStmt{}
		if p.matchKw("if") {
			if err := p.expectKw("exists"); err != nil {
				return nil, err
			}
			d.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Name = name
		return d, nil
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	d := &DropTableStmt{}
	if p.matchKw("if") {
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next()
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: name}
	if p.matchKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Value: v})
		if !p.matchOp(",") {
			break
		}
	}
	if p.matchKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next()
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.matchOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.matchOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.matchKw("values") {
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.matchOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.matchOp(",") {
				break
			}
		}
		return ins, nil
	}
	if p.peekKw("select") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	return nil, p.errf("expected VALUES or SELECT")
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.matchKw("distinct") {
		s.Distinct = true
	} else {
		p.matchKw("all")
	}
	// Projections.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Projections = append(s.Projections, item)
		if !p.matchOp(",") {
			break
		}
	}
	if p.matchKw("from") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.matchKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.matchKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.matchKw("desc") {
				item.Desc = true
			} else {
				p.matchKw("asc")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("limit") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		s.Limit = &n
	}
	if p.matchKw("offset") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		s.Offset = &n
	}
	return s, nil
}

func (p *parser) parseInt() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer")
	}
	p.i++
	v, err := strconv.ParseInt(t.val, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.val)
	}
	return v, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.matchOp("*") {
		return SelectItem{Star: true}, nil
	}
	// "t.*"
	if p.peek().kind == tokIdent && p.peek2().kind == tokOp && p.peek2().val == "." {
		if p.i+2 < len(p.toks) && p.toks[p.i+2].kind == tokOp && p.toks[p.i+2].val == "*" {
			name, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			p.next() // .
			p.next() // *
			return SelectItem{Star: true, TableStar: name}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.matchKw("as") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent && !reservedAfterExpr[p.peek().val] {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	}
	return item, nil
}

// reservedAfterExpr lists keywords that end an expression context, so a
// bare identifier is only treated as an implicit alias when not in this
// set.
var reservedAfterExpr = map[string]bool{
	"from": true, "where": true, "group": true, "having": true, "order": true,
	"limit": true, "offset": true, "on": true, "and": true, "or": true, "as": true,
	"join": true, "inner": true, "left": true, "right": true, "full": true,
	"cross": true, "union": true, "when": true, "then": true, "else": true,
	"end": true, "asc": true, "desc": true, "distributed": true, "partition": true,
	"not": true, "like": true, "in": true, "between": true, "is": true,
	"inclusive": true, "exclusive": true, "every": true, "values": true, "select": true,
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.matchKw("join"):
			jt = JoinInner
		case p.peekKw("inner") && p.peek2().val == "join":
			p.next()
			p.next()
			jt = JoinInner
		case p.peekKw("left"):
			p.next()
			p.matchKw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.peekKw("right"):
			p.next()
			p.matchKw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = JoinRight
		case p.peekKw("full"):
			p.next()
			p.matchKw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = JoinFull
		case p.peekKw("cross"):
			p.next()
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			jt = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Left: left, Right: right}
		if jt != JoinCross {
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.matchOp("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.matchKw("as")
		alias, err := p.ident()
		if err != nil {
			return nil, p.errf("derived table requires an alias")
		}
		return &SubqueryRef{Select: sel, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := &TableName{Name: name}
	if p.matchKw("as") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		t.Alias = a
	} else if p.peek().kind == tokIdent && !reservedAfterExpr[p.peek().val] {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		t.Alias = a
	}
	return t, nil
}

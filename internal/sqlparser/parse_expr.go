package sqlparser

import (
	"strconv"
	"strings"
)

// parseExpr parses a full expression (OR precedence level).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKw("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.matchKw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "not", E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparisons and SQL predicates (LIKE, IN,
// BETWEEN, IS NULL) over additive expressions.
func (p *parser) parsePredicate() (Expr, error) {
	if p.peekKw("exists") {
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sel}, nil
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		negate := false
		if p.peekKw("not") && (p.peek2().val == "like" || p.peek2().val == "in" || p.peek2().val == "between") {
			p.next()
			negate = true
		}
		switch {
		case p.matchKw("like"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &LikeExpr{E: left, Pattern: pat, Negate: negate}
		case p.matchKw("in"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			in := &InExpr{E: left, Negate: negate}
			if p.peekKw("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				in.Sub = sel
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, e)
					if !p.matchOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			left = in
		case p.matchKw("between"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{E: left, Lo: lo, Hi: hi, Negate: negate}
		case p.matchKw("is"):
			neg := p.matchKw("not")
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{E: left, Negate: neg}
		case p.peekOp("=") || p.peekOp("<>") || p.peekOp("<") || p.peekOp("<=") || p.peekOp(">") || p.peekOp(">="):
			op := p.next().val
			// Comparison against a scalar subquery: x = (SELECT ...).
			var right Expr
			if p.peekOp("(") && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokIdent && p.toks[p.i+1].val == "select" {
				p.next()
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				right = &SubqueryExpr{Sub: sel}
			} else {
				var err error
				right, err = p.parseAdditive()
				if err != nil {
					return nil, err
				}
			}
			left = &BinExpr{Op: op, L: left, R: right}
		default:
			return left, nil
		}
		if negate {
			// The negate flag was consumed by LIKE/IN/BETWEEN above.
			continue
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.matchOp("+"):
			op = "+"
		case p.matchOp("-"):
			op = "-"
		case p.matchOp("||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.matchOp("*"):
			op = "*"
		case p.matchOp("/"):
			op = "/"
		case p.matchOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.matchOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", E: e}, nil
	}
	p.matchOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return &NumLit{S: t.val}, nil
	case tokString:
		p.next()
		return &StrLit{S: t.val}, nil
	case tokParam:
		p.next()
		idx, err := strconv.Atoi(t.val)
		if err != nil || idx <= 0 {
			return nil, p.errf("bad parameter %q", t.raw)
		}
		return &ParamExpr{Idx: idx}, nil
	case tokOp:
		if t.val == "(" {
			p.next()
			if p.peekKw("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q", t.val)
	case tokIdent:
		switch t.val {
		case "null":
			p.next()
			return &NullLit{}, nil
		case "true":
			p.next()
			return &BoolLit{V: true}, nil
		case "false":
			p.next()
			return &BoolLit{V: false}, nil
		case "date":
			// DATE 'YYYY-MM-DD'
			if p.peek2().kind == tokString {
				p.next()
				lit := p.next()
				return &DateLit{S: lit.val}, nil
			}
		case "interval":
			return p.parseInterval()
		case "case":
			return p.parseCase()
		case "cast":
			return p.parseCast()
		case "extract":
			return p.parseExtract()
		}
		// Function call or (qualified) identifier; reserved clause
		// keywords cannot start an expression.
		if reservedAfterExpr[t.val] {
			return nil, p.errf("unexpected keyword %s", strings.ToUpper(t.val))
		}
		if p.peek2().kind == tokOp && p.peek2().val == "(" {
			return p.parseFuncCall()
		}
		return p.parseIdent()
	}
	return nil, p.errf("unexpected token")
}

func (p *parser) parseIdent() (Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	parts := []string{name}
	for p.peekOp(".") && p.peek2().kind == tokIdent {
		p.next()
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	return &Ident{Parts: parts}, nil
}

func (p *parser) parseFuncCall() (Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: name}
	if p.matchOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.matchOp(")") {
		return f, nil
	}
	if p.matchKw("distinct") {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// parseInterval accepts INTERVAL '3' MONTH, INTERVAL '3 month', and
// INTERVAL '1 year'.
func (p *parser) parseInterval() (Expr, error) {
	p.next() // interval
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errf("expected interval literal")
	}
	p.next()
	body := strings.TrimSpace(t.val)
	var numPart, unitPart string
	if i := strings.IndexByte(body, ' '); i >= 0 {
		numPart, unitPart = body[:i], strings.TrimSpace(body[i+1:])
	} else {
		numPart = body
	}
	if unitPart == "" {
		// Unit follows as a keyword: INTERVAL '3' MONTH.
		u := p.peek()
		if u.kind != tokIdent {
			return nil, p.errf("expected interval unit")
		}
		p.next()
		unitPart = u.val
	}
	n, err := strconv.ParseInt(numPart, 10, 64)
	if err != nil {
		return nil, p.errf("bad interval count %q", numPart)
	}
	unit := strings.ToLower(strings.TrimSuffix(unitPart, "s"))
	switch unit {
	case "day", "month", "year":
	default:
		return nil, p.errf("unsupported interval unit %q", unitPart)
	}
	return &IntervalLit{N: n, Unit: unit}, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // case
	c := &CaseExpr{}
	if !p.peekKw("when") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.matchKw("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.matchKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	p.next() // cast
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	typeName, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{E: e, TypeName: typeName}, nil
}

func (p *parser) parseExtract() (Expr, error) {
	p.next() // extract
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	field, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ExtractExpr{Field: field, E: e}, nil
}

// parseTypeName parses a SQL type, including parameterized forms like
// DECIMAL(15,2), CHAR(1) and DOUBLE PRECISION; the textual form is kept
// for the planner to resolve.
func (p *parser) parseTypeName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if name == "double" && p.matchKw("precision") {
		name = "double precision"
	}
	if p.matchOp("(") {
		var args []string
		for {
			n, err := p.parseInt()
			if err != nil {
				return "", err
			}
			args = append(args, strconv.FormatInt(n, 10))
			if !p.matchOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return "", err
		}
		name += "(" + strings.Join(args, ",") + ")"
	}
	return name, nil
}

package sqlparser

import (
	"strings"
	"testing"
)

func parseSel(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	s, err := ParseOne(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := s.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T, want *SelectStmt", s)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	s := parseSel(t, "SELECT a, b AS bee, t.c FROM t WHERE a > 5 ORDER BY a DESC LIMIT 10")
	if len(s.Projections) != 3 {
		t.Fatalf("projections = %d", len(s.Projections))
	}
	if s.Projections[1].Alias != "bee" {
		t.Errorf("alias = %q", s.Projections[1].Alias)
	}
	if id, ok := s.Projections[2].Expr.(*Ident); !ok || id.Qualifier() != "t" || id.Column() != "c" {
		t.Errorf("qualified ident = %v", s.Projections[2].Expr)
	}
	if s.Where == nil || len(s.OrderBy) != 1 || !s.OrderBy[0].Desc || s.Limit == nil || *s.Limit != 10 {
		t.Errorf("clauses wrong: %+v", s)
	}
}

func TestParseStarAndDistinct(t *testing.T) {
	s := parseSel(t, "SELECT DISTINCT * FROM t")
	if !s.Distinct || !s.Projections[0].Star {
		t.Errorf("distinct star: %+v", s)
	}
	s = parseSel(t, "SELECT t.* FROM t")
	if !s.Projections[0].Star || s.Projections[0].TableStar != "t" {
		t.Errorf("table star: %+v", s.Projections[0])
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := parseSel(t, "SELECT a total FROM orders o, lineitem l WHERE o.k = l.k")
	if s.Projections[0].Alias != "total" {
		t.Errorf("implicit alias = %q", s.Projections[0].Alias)
	}
	if len(s.From) != 2 {
		t.Fatalf("from = %d items", len(s.From))
	}
	if tn := s.From[0].(*TableName); tn.Name != "orders" || tn.Alias != "o" {
		t.Errorf("table = %+v", tn)
	}
}

func TestParseJoins(t *testing.T) {
	s := parseSel(t, `SELECT c.name, count(o.id)
		FROM customer c LEFT OUTER JOIN orders o ON c.id = o.cust_id AND o.comment NOT LIKE '%special%'
		GROUP BY c.name`)
	j, ok := s.From[0].(*Join)
	if !ok || j.Type != JoinLeft {
		t.Fatalf("join = %+v", s.From[0])
	}
	if j.On == nil {
		t.Fatal("missing ON")
	}
	s = parseSel(t, "SELECT a FROM x JOIN y ON x.i = y.i JOIN z ON y.j = z.j")
	outer, ok := s.From[0].(*Join)
	if !ok {
		t.Fatal("expected join tree")
	}
	if _, ok := outer.Left.(*Join); !ok {
		t.Error("joins must left-associate")
	}
	s = parseSel(t, "SELECT a FROM x CROSS JOIN y")
	if j := s.From[0].(*Join); j.Type != JoinCross || j.On != nil {
		t.Errorf("cross join = %+v", j)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := parseSel(t, "SELECT 1 + 2 * 3 FROM t")
	b := s.Projections[0].Expr.(*BinExpr)
	if b.Op != "+" {
		t.Fatalf("top op = %s", b.Op)
	}
	if inner := b.R.(*BinExpr); inner.Op != "*" {
		t.Errorf("inner op = %s", inner.Op)
	}
	// AND binds tighter than OR; NOT tighter than AND.
	s = parseSel(t, "SELECT a FROM t WHERE NOT x = 1 AND y = 2 OR z = 3")
	or := s.Where.(*BinExpr)
	if or.Op != "or" {
		t.Fatalf("top = %s", or.Op)
	}
	and := or.L.(*BinExpr)
	if and.Op != "and" {
		t.Fatalf("left = %s", and.Op)
	}
	if _, ok := and.L.(*UnExpr); !ok {
		t.Error("NOT did not bind to comparison")
	}
}

func TestParsePredicates(t *testing.T) {
	s := parseSel(t, `SELECT a FROM t WHERE a BETWEEN 1 AND 10
		AND b LIKE 'x%' AND c NOT IN (1, 2) AND d IS NOT NULL AND e NOT BETWEEN 5 AND 6`)
	if s.Where == nil {
		t.Fatal("no where")
	}
	str := s.Where.String()
	for _, want := range []string{"BETWEEN", "LIKE", "NOT IN", "IS NOT NULL", "NOT BETWEEN"} {
		if !strings.Contains(str, want) {
			t.Errorf("where %q missing %s", str, want)
		}
	}
}

func TestParseSubqueries(t *testing.T) {
	s := parseSel(t, "SELECT a FROM t WHERE k IN (SELECT k FROM u WHERE v > 0)")
	in := s.Where.(*InExpr)
	if in.Sub == nil {
		t.Fatal("IN subquery missing")
	}
	s = parseSel(t, "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)")
	if _, ok := s.Where.(*ExistsExpr); !ok {
		t.Fatalf("exists = %T", s.Where)
	}
	s = parseSel(t, "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
	un := s.Where.(*UnExpr)
	if _, ok := un.E.(*ExistsExpr); !ok {
		t.Fatalf("not exists = %T", un.E)
	}
	s = parseSel(t, "SELECT a FROM t WHERE x > (SELECT avg(y) FROM u)")
	cmp := s.Where.(*BinExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Fatalf("scalar subquery = %T", cmp.R)
	}
	s = parseSel(t, "SELECT q.a FROM (SELECT a FROM t) q")
	if sq, ok := s.From[0].(*SubqueryRef); !ok || sq.Alias != "q" {
		t.Fatalf("derived table = %+v", s.From[0])
	}
}

func TestParseLiteralsAndFuncs(t *testing.T) {
	s := parseSel(t, `SELECT DATE '1995-01-01', INTERVAL '3' MONTH, INTERVAL '1 year',
		count(*), sum(DISTINCT x), extract(year FROM d),
		CASE WHEN a = 1 THEN 'one' ELSE 'other' END,
		CAST(x AS DECIMAL(15,2)), substring(s, 1, 2), 'it''s', NULL, TRUE
		FROM t`)
	ps := s.Projections
	if _, ok := ps[0].Expr.(*DateLit); !ok {
		t.Errorf("date lit = %T", ps[0].Expr)
	}
	iv := ps[1].Expr.(*IntervalLit)
	if iv.N != 3 || iv.Unit != "month" {
		t.Errorf("interval = %+v", iv)
	}
	iv = ps[2].Expr.(*IntervalLit)
	if iv.N != 1 || iv.Unit != "year" {
		t.Errorf("interval = %+v", iv)
	}
	if f := ps[3].Expr.(*FuncExpr); !f.Star {
		t.Error("count(*) star flag")
	}
	if f := ps[4].Expr.(*FuncExpr); !f.Distinct {
		t.Error("sum distinct flag")
	}
	if e := ps[5].Expr.(*ExtractExpr); e.Field != "year" {
		t.Errorf("extract = %+v", e)
	}
	if c := ps[6].Expr.(*CaseExpr); len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
	if c := ps[7].Expr.(*CastExpr); c.TypeName != "decimal(15,2)" {
		t.Errorf("cast type = %q", c.TypeName)
	}
	if sl := ps[9].Expr.(*StrLit); sl.S != "it's" {
		t.Errorf("escaped string = %q", sl.S)
	}
	if _, ok := ps[10].Expr.(*NullLit); !ok {
		t.Error("null literal")
	}
	if b := ps[11].Expr.(*BoolLit); !b.V {
		t.Error("bool literal")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := ParseOne(`CREATE TABLE orders (
		o_orderkey INT8 NOT NULL,
		o_custkey INTEGER NOT NULL,
		o_orderstatus CHAR(1) NOT NULL,
		o_totalprice DECIMAL(15,2) NOT NULL,
		o_orderdate DATE NOT NULL,
		o_comment VARCHAR(79) NOT NULL
	) WITH (appendonly=true, orientation=column, compresstype=zlib, compresslevel=5)
	DISTRIBUTED BY (o_orderkey)`)
	if err != nil {
		t.Fatal(err)
	}
	c := stmt.(*CreateTableStmt)
	if c.Name != "orders" || len(c.Columns) != 6 {
		t.Fatalf("create = %+v", c)
	}
	if !c.Columns[0].NotNull || c.Columns[0].TypeName != "int8" {
		t.Errorf("col0 = %+v", c.Columns[0])
	}
	if c.Columns[3].TypeName != "decimal(15,2)" {
		t.Errorf("col3 type = %q", c.Columns[3].TypeName)
	}
	if c.Storage.Orientation != "column" || c.Storage.CompressType != "zlib" || c.Storage.CompressLevel != 5 {
		t.Errorf("storage = %+v", c.Storage)
	}
	if len(c.DistributedBy) != 1 || c.DistributedBy[0] != "o_orderkey" {
		t.Errorf("distribution = %v", c.DistributedBy)
	}
}

func TestParseCreateTablePartitioned(t *testing.T) {
	stmt, err := ParseOne(`CREATE TABLE sales (id INT, date DATE, amt DECIMAL(10,2))
		DISTRIBUTED BY (id)
		PARTITION BY RANGE (date)
		(START (DATE '2008-01-01') INCLUSIVE
		 END (DATE '2009-01-01') EXCLUSIVE
		 EVERY (INTERVAL '1 month'))`)
	if err != nil {
		t.Fatal(err)
	}
	c := stmt.(*CreateTableStmt)
	if c.Partition == nil || !c.Partition.IsRange || c.Partition.Column != "date" {
		t.Fatalf("partition = %+v", c.Partition)
	}
	if c.Partition.EveryN != 1 || c.Partition.EveryUnit != "month" {
		t.Errorf("every = %+v", c.Partition)
	}
	stmt, err = ParseOne(`CREATE TABLE r (k INT, region TEXT)
		PARTITION BY LIST (region)
		(PARTITION asia VALUES ('CHINA', 'JAPAN'), PARTITION emea VALUES ('UK'))`)
	if err != nil {
		t.Fatal(err)
	}
	c = stmt.(*CreateTableStmt)
	if len(c.Partition.ListParts) != 2 || c.Partition.ListParts[0].Name != "asia" {
		t.Errorf("list parts = %+v", c.Partition.ListParts)
	}
	if len(c.Partition.ListParts[0].Values) != 2 {
		t.Errorf("asia values = %+v", c.Partition.ListParts[0])
	}
}

func TestParseCreateExternal(t *testing.T) {
	stmt, err := ParseOne(`CREATE EXTERNAL TABLE my_hbase_sales (
		recordkey BYTEA, "details:storeid" INT, "details:price" DOUBLE PRECISION)
		LOCATION ('pxf://localhost/sales?profile=HBase')
		FORMAT 'CUSTOM' (formatter='pxfwritable_import')`)
	if err != nil {
		t.Fatal(err)
	}
	c := stmt.(*CreateExternalTableStmt)
	if c.Name != "my_hbase_sales" || len(c.Columns) != 3 {
		t.Fatalf("external = %+v", c)
	}
	if c.Columns[1].Name != "details:storeid" {
		t.Errorf("quoted column = %q", c.Columns[1].Name)
	}
	if c.Location != "pxf://localhost/sales?profile=HBase" || c.Format != "CUSTOM" {
		t.Errorf("loc/format = %q %q", c.Location, c.Format)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := ParseOne("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	stmt, err = ParseOne("INSERT INTO t SELECT a, b FROM u WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*InsertStmt).Select == nil {
		t.Error("insert-select missing select")
	}
}

func TestParseTransactionsAndMisc(t *testing.T) {
	stmts, err := Parse(`BEGIN; COMMIT; ROLLBACK;
		BEGIN TRANSACTION ISOLATION LEVEL SERIALIZABLE;
		SET transaction ISOLATION LEVEL READ COMMITTED;
		ANALYZE lineitem; TRUNCATE TABLE t; DROP TABLE IF EXISTS t;
		EXPLAIN SELECT 1; SHOW segments; DELETE FROM t WHERE a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 11 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if b := stmts[3].(*BeginStmt); b.Isolation != "serializable" {
		t.Errorf("begin isolation = %q", b.Isolation)
	}
	if s := stmts[4].(*SetStmt); s.Value != "read committed" {
		t.Errorf("set = %+v", s)
	}
	if d := stmts[10].(*DeleteStmt); d.Table != "t" || d.Where == nil {
		t.Errorf("delete = %+v", d)
	}
}

func TestParseTPCHQ6Shape(t *testing.T) {
	s := parseSel(t, `SELECT sum(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate >= DATE '1994-01-01'
		  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
		  AND l_discount BETWEEN 0.06 - 0.01 AND 0.06 + 0.01
		  AND l_quantity < 24`)
	if s.Projections[0].Alias != "revenue" {
		t.Errorf("alias = %q", s.Projections[0].Alias)
	}
	if s.Where == nil {
		t.Fatal("no where")
	}
}

func TestParseTPCHQ5Shape(t *testing.T) {
	s := parseSel(t, `SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
		FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		  AND r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01'
		  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
		GROUP BY n_name ORDER BY revenue DESC`)
	if len(s.From) != 6 || len(s.GroupBy) != 1 || len(s.OrderBy) != 1 {
		t.Fatalf("shape: from=%d group=%d order=%d", len(s.From), len(s.GroupBy), len(s.OrderBy))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"CREATE TABLE t",
		"SELECT a FROM t WHERE",
		"INSERT INTO t",
		"SELECT a FROM t GROUP",
		"SELECT 'unterminated",
		"CREATE TABLE t (a INT) WITH (bogus=1)",
		"SELECT a FROM (SELECT b FROM t)", // derived table needs alias
		"SELECT CASE END FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestParseComments(t *testing.T) {
	s := parseSel(t, `SELECT a -- trailing comment
		/* block
		   comment */ FROM t`)
	if len(s.From) != 1 {
		t.Fatal("comment handling broke FROM")
	}
}

func TestStringRoundTripReparses(t *testing.T) {
	queries := []string{
		"SELECT a, sum(b) AS s FROM t WHERE a > 1 GROUP BY a HAVING sum(b) > 2 ORDER BY s DESC LIMIT 5",
		"SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"INSERT INTO t (a) VALUES (1)",
	}
	for _, q := range queries {
		s, err := ParseOne(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := ParseOne(s.String()); err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", q, s.String(), err)
		}
	}
}

package sqlparser

import (
	"fmt"
	"strings"
)

// ParamExpr is a positional parameter placeholder $n (1-based). It is
// only meaningful inside a statement prepared with PREPARE (or the wire
// Parse message); the planner binds it to a value — or to an
// execution-time expr.Param in a cached generic plan — at EXECUTE time.
type ParamExpr struct {
	Idx int // 1-based, as written
}

func (*ParamExpr) expr() {}

// String renders the node back to SQL text.
func (p *ParamExpr) String() string { return fmt.Sprintf("$%d", p.Idx) }

// PrepareStmt is PREPARE name AS <statement>.
type PrepareStmt struct {
	Name string
	Stmt Statement
}

func (*PrepareStmt) stmt() {}

// String renders the node back to SQL text.
func (p *PrepareStmt) String() string { return fmt.Sprintf("PREPARE %s AS %s", p.Name, p.Stmt) }

// ExecuteStmt is EXECUTE name [(arg, ...)].
type ExecuteStmt struct {
	Name string
	Args []Expr
}

func (*ExecuteStmt) stmt() {}

// String renders the node back to SQL text.
func (e *ExecuteStmt) String() string {
	if len(e.Args) == 0 {
		return "EXECUTE " + e.Name
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("EXECUTE %s (%s)", e.Name, strings.Join(args, ", "))
}

// DeallocateStmt is DEALLOCATE name or DEALLOCATE ALL.
type DeallocateStmt struct {
	Name string
	All  bool
}

func (*DeallocateStmt) stmt() {}

// String renders the node back to SQL text.
func (d *DeallocateStmt) String() string {
	if d.All {
		return "DEALLOCATE ALL"
	}
	return "DEALLOCATE " + d.Name
}

func (p *parser) parsePrepare() (Statement, error) {
	p.next()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	switch inner.(type) {
	case *PrepareStmt, *ExecuteStmt, *DeallocateStmt:
		return nil, fmt.Errorf("sql: cannot PREPARE a %T", inner)
	}
	ps := &PrepareStmt{Name: name, Stmt: inner}
	if err := CheckParams(inner); err != nil {
		return nil, err
	}
	return ps, nil
}

func (p *parser) parseExecute() (Statement, error) {
	p.next()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	e := &ExecuteStmt{Name: name}
	if p.matchOp("(") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, a)
			if !p.matchOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (p *parser) parseDeallocate() (Statement, error) {
	p.next()
	p.matchKw("prepare")
	if p.matchKw("all") {
		return &DeallocateStmt{All: true}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DeallocateStmt{Name: name}, nil
}

// MaxParam returns the highest $n placeholder index appearing anywhere in
// the statement (0 when the statement has none).
func MaxParam(s Statement) int {
	max := 0
	walkStatement(s, func(e Expr) {
		if pe, ok := e.(*ParamExpr); ok && pe.Idx > max {
			max = pe.Idx
		}
	})
	return max
}

// CheckParams validates that a prepared statement's placeholders are
// well-formed: indices start at $1 and are contiguous.
func CheckParams(s Statement) error {
	seen := map[int]bool{}
	max := 0
	walkStatement(s, func(e Expr) {
		if pe, ok := e.(*ParamExpr); ok {
			seen[pe.Idx] = true
			if pe.Idx > max {
				max = pe.Idx
			}
		}
	})
	for i := 1; i <= max; i++ {
		if !seen[i] {
			return fmt.Errorf("sql: prepared statement uses $%d but not $%d", max, i)
		}
	}
	if seen[0] {
		return fmt.Errorf("sql: parameter indices start at $1")
	}
	return nil
}

// walkStatement visits every expression in the statement, including
// subqueries, in syntax order.
func walkStatement(s Statement, fn func(Expr)) {
	switch v := s.(type) {
	case *SelectStmt:
		walkSelect(v, fn)
	case *InsertStmt:
		for _, row := range v.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
		if v.Select != nil {
			walkSelect(v.Select, fn)
		}
	case *UpdateStmt:
		for _, sc := range v.Set {
			walkExpr(sc.Value, fn)
		}
		walkExpr(v.Where, fn)
	case *DeleteStmt:
		walkExpr(v.Where, fn)
	case *ExplainStmt:
		walkStatement(v.Stmt, fn)
	case *PrepareStmt:
		walkStatement(v.Stmt, fn)
	case *ExecuteStmt:
		for _, e := range v.Args {
			walkExpr(e, fn)
		}
	}
}

func walkSelect(s *SelectStmt, fn func(Expr)) {
	if s == nil {
		return
	}
	for _, p := range s.Projections {
		walkExpr(p.Expr, fn)
	}
	for _, f := range s.From {
		walkTableRef(f, fn)
	}
	walkExpr(s.Where, fn)
	for _, g := range s.GroupBy {
		walkExpr(g, fn)
	}
	walkExpr(s.Having, fn)
	for _, o := range s.OrderBy {
		walkExpr(o.Expr, fn)
	}
}

func walkTableRef(t TableRef, fn func(Expr)) {
	switch v := t.(type) {
	case *Join:
		walkTableRef(v.Left, fn)
		walkTableRef(v.Right, fn)
		walkExpr(v.On, fn)
	case *SubqueryRef:
		walkSelect(v.Select, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *BinExpr:
		walkExpr(v.L, fn)
		walkExpr(v.R, fn)
	case *UnExpr:
		walkExpr(v.E, fn)
	case *FuncExpr:
		for _, a := range v.Args {
			walkExpr(a, fn)
		}
	case *CaseExpr:
		walkExpr(v.Operand, fn)
		for _, w := range v.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(v.Else, fn)
	case *CastExpr:
		walkExpr(v.E, fn)
	case *IsNullExpr:
		walkExpr(v.E, fn)
	case *LikeExpr:
		walkExpr(v.E, fn)
		walkExpr(v.Pattern, fn)
	case *InExpr:
		walkExpr(v.E, fn)
		for _, it := range v.List {
			walkExpr(it, fn)
		}
		walkSelect(v.Sub, fn)
	case *BetweenExpr:
		walkExpr(v.E, fn)
		walkExpr(v.Lo, fn)
		walkExpr(v.Hi, fn)
	case *ExistsExpr:
		walkSelect(v.Sub, fn)
	case *SubqueryExpr:
		walkSelect(v.Sub, fn)
	case *ExtractExpr:
		walkExpr(v.E, fn)
	}
}

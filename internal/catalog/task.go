package catalog

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// Task kinds: what a hawq_task row asks the scheduler to do.
const (
	TaskKindAnalyze   = "analyze"   // refresh RelStats/ColStats of Target table
	TaskKindCompact   = "compact"   // merge undersized AO segfiles of Target table
	TaskKindStatement = "statement" // execute Target as SQL (CREATE TASK ... AS)
)

// Task states. A task cycles queued → claimed → running → queued (periodic)
// or → done (one-shot). A crashed owner leaves it claimed/running with an
// expired lease; the reclaim sweep moves it back to queued.
const (
	TaskQueued  = "queued"
	TaskClaimed = "claimed"
	TaskRunning = "running"
	TaskDone    = "done"
)

// TaskDesc is the typed view of one hawq_task row: a persistent background
// task. All times are unix nanoseconds on the scheduler's clock.Clock so
// the chaos harness drives them deterministically under clock.Sim.
type TaskDesc struct {
	Name     string
	Kind     string        // TaskKindAnalyze | TaskKindCompact | TaskKindStatement
	Target   string        // table name (analyze/compact) or SQL text (statement)
	Interval time.Duration // 0 = one-shot
	State    string
	// Owner identifies the scheduler instance holding the lease; "" when
	// unclaimed. LeaseExpiry is when the claim stops being honoured.
	Owner       string
	LeaseExpiry int64
	LastRun     int64 // 0 = never ran
	NextRun     int64 // earliest fire time
	Retries     int64 // consecutive failures of the current cycle
	LastError   string
}

// CreateTask registers a background task under the transaction.
func (c *Catalog) CreateTask(t *tx.Tx, d TaskDesc) error {
	name := strings.ToLower(d.Name)
	// The lookup error only says "does not exist" — exactly the state
	// CREATE wants.
	//hawqcheck:ignore errdrop
	existing, _ := c.LookupTask(t.Snapshot(), name)
	if existing != nil {
		return fmt.Errorf("catalog: task %q already exists", name)
	}
	d.Name = name
	if d.State == "" {
		d.State = TaskQueued
	}
	c.insert(t.XID(), SysTask, encodeTaskRow(d))
	return nil
}

// DropTask removes a task.
func (c *Catalog) DropTask(t *tx.Tx, name string) error {
	name = strings.ToLower(name)
	snap := t.Snapshot()
	var victim uint64
	found := false
	c.sys[SysTask].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Str() == name {
			victim, found = id, true
			return false
		}
		return true
	})
	if !found {
		return fmt.Errorf("catalog: task %q does not exist", name)
	}
	c.delete(t.XID(), SysTask, victim)
	return nil
}

// UpdateTask replaces a task row by name: an MVCC update (delete old
// version + insert new) so concurrent snapshots keep seeing the previous
// state until this transaction commits — a crash mid-update recovers to
// exactly one of the two versions.
func (c *Catalog) UpdateTask(t *tx.Tx, d TaskDesc) error {
	d.Name = strings.ToLower(d.Name)
	snap := t.Snapshot()
	var oldID uint64
	found := false
	c.sys[SysTask].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Str() == d.Name {
			oldID, found = id, true
			return false
		}
		return true
	})
	if !found {
		return fmt.Errorf("catalog: task %q does not exist", d.Name)
	}
	c.delete(t.XID(), SysTask, oldID)
	c.insert(t.XID(), SysTask, encodeTaskRow(d))
	return nil
}

// LookupTask resolves a task by name under a snapshot; (nil, error) when
// absent.
func (c *Catalog) LookupTask(snap tx.Snapshot, name string) (*TaskDesc, error) {
	name = strings.ToLower(name)
	var out *TaskDesc
	c.sys[SysTask].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Str() == name {
			out = decodeTaskRow(row)
			return false
		}
		return true
	})
	if out == nil {
		return nil, fmt.Errorf("catalog: task %q does not exist", name)
	}
	return out, nil
}

// ListTasks returns all visible tasks sorted by name.
func (c *Catalog) ListTasks(snap tx.Snapshot) []*TaskDesc {
	var out []*TaskDesc
	c.sys[SysTask].Scan(snap, func(_ uint64, row types.Row) bool {
		out = append(out, decodeTaskRow(row))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func encodeTaskRow(d TaskDesc) types.Row {
	return types.Row{
		types.NewString(d.Name),
		types.NewString(d.Kind),
		types.NewString(d.Target),
		types.NewInt64(int64(d.Interval)),
		types.NewString(d.State),
		types.NewString(d.Owner),
		types.NewInt64(d.LeaseExpiry),
		types.NewInt64(d.LastRun),
		types.NewInt64(d.NextRun),
		types.NewInt64(d.Retries),
		types.NewString(d.LastError),
	}
}

func decodeTaskRow(row types.Row) *TaskDesc {
	return &TaskDesc{
		Name:        row[0].Str(),
		Kind:        row[1].Str(),
		Target:      row[2].Str(),
		Interval:    time.Duration(row[3].Int()),
		State:       row[4].Str(),
		Owner:       row[5].Str(),
		LeaseExpiry: row[6].Int(),
		LastRun:     row[7].Int(),
		NextRun:     row[8].Int(),
		Retries:     row[9].Int(),
		LastError:   row[10].Str(),
	}
}

// BumpModCount records delta rows changed on a table since its last
// ANALYZE. Each transaction appends its own delta row instead of updating
// a shared counter — concurrent writers to the same table never
// write-write conflict, and an aborted transaction's delta simply stays
// invisible. ModCountFor sums the visible deltas; the ANALYZE that
// consumes them calls ResetModCount.
func (c *Catalog) BumpModCount(t *tx.Tx, tableOID, delta int64) {
	if delta == 0 {
		return
	}
	c.insert(t.XID(), SysStatMod, types.Row{
		types.NewInt64(tableOID),
		types.NewInt64(delta),
	})
}

// ModCountFor sums the visible modification deltas of a table: rows
// changed since the last ANALYZE reset.
func (c *Catalog) ModCountFor(snap tx.Snapshot, tableOID int64) int64 {
	var sum int64
	c.sys[SysStatMod].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == tableOID {
			sum += row[1].Int()
		}
		return true
	})
	return sum
}

// ResetModCount MVCC-deletes every visible delta row of a table: ANALYZE
// absorbing the accumulated churn into fresh statistics.
func (c *Catalog) ResetModCount(t *tx.Tx, tableOID int64) {
	snap := t.Snapshot()
	var victims []uint64
	c.sys[SysStatMod].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == tableOID {
			victims = append(victims, id)
		}
		return true
	})
	for _, id := range victims {
		c.delete(t.XID(), SysStatMod, id)
	}
}

package catalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// Snapshot serialization: the payload of a checkpoint file and the
// bootstrap state shipped to a freshly attached standby.
//
//	magic "HAWQSNAP" | version (1) | uvarint nextOID | uvarint nextXID |
//	uvarint nTables | per table (sorted by name):
//	  uvarint len(name) | name | uvarint nextRow | uvarint nRows |
//	  per row (by ID): uvarint id | uvarint xmin | uvarint xmax |
//	                   uvarint len(enc) | enc (types.EncodeRow)
const (
	snapMagic   = "HAWQSNAP"
	snapVersion = 1
)

// Snapshot serializes the catalog. nextXID, when non-nil, is sampled
// AFTER every table is serialized and recorded as the restored manager's
// XID floor: every xmin the snapshot can contain was assigned before the
// sample, so all of them restore as committed — sampling before
// serialization would let a transaction that commits mid-snapshot land
// above the floor and lose its rows. committed filters row stamps:
// versions whose xmin is not committed are dropped and delete stamps
// from uncommitted transactions cleared, which is what a checkpoint
// wants (in-flight effects are re-derived from the log or discarded). A
// nil filter keeps every version verbatim — the full-fidelity copy a
// standby bootstraps from, relying on the shared CLOG for visibility.
func (c *Catalog) Snapshot(nextXID func() tx.XID, committed func(tx.XID) bool) []byte {
	c.mu.Lock()
	nextOID := c.nextOID
	names := make([]string, 0, len(c.sys))
	for name := range c.sys {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)

	var body []byte
	body = binary.AppendUvarint(body, uint64(len(names)))
	for _, name := range names {
		rows, nextRow := c.sys[name].state()
		sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
		kept := rows[:0]
		for _, r := range rows {
			if committed != nil {
				if !committed(r.xmin) {
					continue
				}
				if r.xmax != tx.InvalidXID && !committed(r.xmax) {
					r.xmax = tx.InvalidXID
				}
			}
			kept = append(kept, r)
		}
		body = binary.AppendUvarint(body, uint64(len(name)))
		body = append(body, name...)
		body = binary.AppendUvarint(body, nextRow)
		body = binary.AppendUvarint(body, uint64(len(kept)))
		for _, r := range kept {
			body = binary.AppendUvarint(body, r.id)
			body = binary.AppendUvarint(body, uint64(r.xmin))
			body = binary.AppendUvarint(body, uint64(r.xmax))
			enc := types.EncodeRow(nil, r.data)
			body = binary.AppendUvarint(body, uint64(len(enc)))
			body = append(body, enc...)
		}
	}
	var floor tx.XID
	if nextXID != nil {
		floor = nextXID()
	}
	buf := []byte(snapMagic)
	buf = append(buf, snapVersion)
	buf = binary.AppendUvarint(buf, uint64(nextOID))
	buf = binary.AppendUvarint(buf, uint64(floor))
	return append(buf, body...)
}

type snapReader struct {
	buf []byte
	err error
}

func (s *snapReader) uvarint(what string) uint64 {
	if s.err != nil {
		return 0
	}
	v, n := binary.Uvarint(s.buf)
	if n <= 0 {
		s.err = fmt.Errorf("catalog: snapshot: truncated %s", what)
		return 0
	}
	s.buf = s.buf[n:]
	return v
}

func (s *snapReader) bytes(n uint64, what string) []byte {
	if s.err != nil {
		return nil
	}
	if uint64(len(s.buf)) < n {
		s.err = fmt.Errorf("catalog: snapshot: truncated %s", what)
		return nil
	}
	out := s.buf[:n]
	s.buf = s.buf[n:]
	return out
}

// RestoreSnapshot loads a snapshot produced by Snapshot into this
// catalog, replacing the contents of every system table it names. It
// returns the nextXID recorded at snapshot time (the restored
// transaction manager's floor).
func (c *Catalog) RestoreSnapshot(data []byte) (tx.XID, error) {
	if len(data) < len(snapMagic)+1 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("catalog: snapshot: bad magic")
	}
	if v := data[len(snapMagic)]; v != snapVersion {
		return 0, fmt.Errorf("catalog: snapshot: unsupported version %d", v)
	}
	s := &snapReader{buf: data[len(snapMagic)+1:]}
	nextOID := s.uvarint("nextOID")
	nextXID := s.uvarint("nextXID")
	nTables := s.uvarint("table count")
	type tableState struct {
		t       *SysTable
		rows    []sysRow
		nextRow uint64
	}
	var states []tableState
	for i := uint64(0); i < nTables && s.err == nil; i++ {
		nameLen := s.uvarint("name length")
		name := string(s.bytes(nameLen, "name"))
		nextRow := s.uvarint("nextRow")
		nRows := s.uvarint("row count")
		if s.err != nil {
			break
		}
		t, ok := c.sys[name]
		if !ok {
			return 0, fmt.Errorf("catalog: snapshot names unknown table %q", name)
		}
		rows := make([]sysRow, 0, nRows)
		for j := uint64(0); j < nRows && s.err == nil; j++ {
			id := s.uvarint("row id")
			xmin := s.uvarint("xmin")
			xmax := s.uvarint("xmax")
			encLen := s.uvarint("row length")
			enc := s.bytes(encLen, "row data")
			if s.err != nil {
				break
			}
			row, _, err := types.DecodeRow(enc)
			if err != nil {
				return 0, fmt.Errorf("catalog: snapshot row decode: %w", err)
			}
			rows = append(rows, sysRow{id: id, xmin: tx.XID(xmin), xmax: tx.XID(xmax), data: row})
		}
		states = append(states, tableState{t: t, rows: rows, nextRow: nextRow})
	}
	if s.err != nil {
		return 0, s.err
	}
	// Decode fully validated before any table is touched: a corrupt
	// snapshot must not leave the catalog half-restored.
	for _, st := range states {
		st.t.restore(st.rows, st.nextRow)
	}
	c.mu.Lock()
	if int64(nextOID) > c.nextOID {
		c.nextOID = int64(nextOID)
	}
	c.mu.Unlock()
	return tx.XID(nextXID), nil
}

// DiscardUncommitted removes every row version created by a transaction
// the filter does not report committed and clears delete stamps from
// such transactions. Promotion runs it on the standby's replica so the
// failed primary's in-flight transactions vanish. It returns the number
// of versions touched.
func (c *Catalog) DiscardUncommitted(committed func(tx.XID) bool) int {
	c.mu.Lock()
	tables := make([]*SysTable, 0, len(c.sys))
	for _, t := range c.sys {
		tables = append(tables, t)
	}
	c.mu.Unlock()
	n := 0
	for _, t := range tables {
		n += t.discardUncommitted(committed)
	}
	return n
}

// Dump renders every row visible to the snapshot as a canonical sorted
// text form: the crash harness's equality witness. Two catalogs holding
// the same committed state dump byte-identically regardless of the
// physical order mutations arrived in.
func (c *Catalog) Dump(snap tx.Snapshot) string {
	c.mu.Lock()
	names := make([]string, 0, len(c.sys))
	for name := range c.sys {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		t := c.sys[name]
		t.versions(func(id uint64, xmin, xmax tx.XID, row types.Row) {
			if snap.RowVisible(xmin, xmax) {
				fmt.Fprintf(&b, "%s %d %s\n", name, id, row.String())
			}
		})
	}
	return b.String()
}

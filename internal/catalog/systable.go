// Package catalog implements HAWQ's Unified Catalog Service (§2.2): MVCC
// system tables describing every object in the system (tables, columns,
// segment files, statistics, segments), typed accessors used by the
// planner and executor, and CaQL — the internal catalog query language
// supporting single-table SELECT, COUNT(), multi-row DELETE and
// single-row INSERT/UPDATE.
//
// Catalog rows are versioned with xmin/xmax and judged against tx
// snapshots, giving catalog readers snapshot isolation (§5). Every
// mutation is logged to the WAL so a standby master can replay it (§2.6).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// SysTable is one MVCC catalog heap (pg_class-style).
type SysTable struct {
	Name   string
	Schema *types.Schema

	mu      sync.RWMutex
	rows    []sysRow
	byID    map[uint64]int // row ID → index in rows (IDs are never reused)
	nextRow uint64
}

type sysRow struct {
	id   uint64
	xmin tx.XID
	xmax tx.XID
	data types.Row
}

// NewSysTable creates an empty system table.
func NewSysTable(name string, schema *types.Schema) *SysTable {
	return &SysTable{Name: name, Schema: schema, nextRow: 1, byID: map[uint64]int{}}
}

// Insert adds a row version created by xid and returns its row ID.
func (t *SysTable) Insert(xid tx.XID, row types.Row) uint64 {
	if len(row) != t.Schema.Len() {
		panic(fmt.Sprintf("catalog: %s insert width %d, want %d", t.Name, len(row), t.Schema.Len()))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextRow
	t.nextRow++
	t.rows = append(t.rows, sysRow{id: id, xmin: xid, data: row.Clone()})
	t.byID[id] = len(t.rows) - 1
	return id
}

// InsertWithID adds a row with a caller-chosen ID (WAL replay on the
// standby and during recovery, where IDs must match the primary). It is
// idempotent: a row ID already present is left untouched, so records
// that straddle a checkpoint snapshot can be replayed on top of it. The
// return reports whether the row was inserted.
func (t *SysTable) InsertWithID(xid tx.XID, id uint64, row types.Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id >= t.nextRow {
		t.nextRow = id + 1
	}
	if _, ok := t.byID[id]; ok {
		return false
	}
	t.rows = append(t.rows, sysRow{id: id, xmin: xid, data: row.Clone()})
	t.byID[id] = len(t.rows) - 1
	return true
}

// Delete stamps xmax on the row version with the given ID. It reports
// whether a live version was found; re-stamping an already-deleted row
// is a no-op, which makes WAL replay of deletes idempotent.
func (t *SysTable) Delete(xid tx.XID, id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.byID[id]; ok && t.rows[i].xmax == tx.InvalidXID {
		t.rows[i].xmax = xid
		return true
	}
	return false
}

// Scan calls fn for every row version visible to the snapshot. Returning
// false stops the scan.
func (t *SysTable) Scan(snap tx.Snapshot, fn func(id uint64, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := range t.rows {
		r := &t.rows[i]
		if snap.RowVisible(r.xmin, r.xmax) {
			if !fn(r.id, r.data) {
				return
			}
		}
	}
}

// Vacuum removes versions deleted by transactions no longer visible to
// anyone (the horizon). It returns the number of versions reclaimed.
func (t *SysTable) Vacuum(horizon tx.Snapshot) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		if r.xmax != tx.InvalidXID && horizon.XidVisible(r.xmax) {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.rows = kept
	t.reindexLocked()
	return removed
}

// reindexLocked rebuilds the row-ID index after compaction. Callers hold
// t.mu.
func (t *SysTable) reindexLocked() {
	t.byID = make(map[uint64]int, len(t.rows))
	for i := range t.rows {
		t.byID[t.rows[i].id] = i
	}
}

// versions calls fn for every stored row version, visible or not, in
// row-ID order (snapshot serialization and the crash harness's canonical
// dump).
func (t *SysTable) versions(fn func(id uint64, xmin, xmax tx.XID, row types.Row)) {
	t.mu.RLock()
	rows := make([]sysRow, len(t.rows))
	copy(rows, t.rows)
	t.mu.RUnlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		fn(r.id, r.xmin, r.xmax, r.data)
	}
}

// state returns a copy of the versions plus the next row ID (snapshot
// serialization).
func (t *SysTable) state() ([]sysRow, uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]sysRow, len(t.rows))
	copy(rows, t.rows)
	return rows, t.nextRow
}

// restore replaces the table contents (checkpoint restore). Rows are
// cloned; the index is rebuilt.
func (t *SysTable) restore(rows []sysRow, nextRow uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = make([]sysRow, len(rows))
	for i, r := range rows {
		r.data = r.data.Clone()
		t.rows[i] = r
	}
	if nextRow < 1 {
		nextRow = 1
	}
	t.nextRow = nextRow
	t.reindexLocked()
}

// discardUncommitted removes versions created by transactions that are
// not committed and clears delete stamps from such transactions
// (promotion fencing: the failed primary's in-flight work must vanish).
// It returns the number of versions touched.
func (t *SysTable) discardUncommitted(committed func(tx.XID) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rows[:0]
	n := 0
	for _, r := range t.rows {
		if !committed(r.xmin) {
			n++
			continue
		}
		if r.xmax != tx.InvalidXID && !committed(r.xmax) {
			r.xmax = tx.InvalidXID
			n++
		}
		kept = append(kept, r)
	}
	t.rows = kept
	t.reindexLocked()
	return n
}

// Len returns the number of stored row versions (all, not just visible).
func (t *SysTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Package catalog implements HAWQ's Unified Catalog Service (§2.2): MVCC
// system tables describing every object in the system (tables, columns,
// segment files, statistics, segments), typed accessors used by the
// planner and executor, and CaQL — the internal catalog query language
// supporting single-table SELECT, COUNT(), multi-row DELETE and
// single-row INSERT/UPDATE.
//
// Catalog rows are versioned with xmin/xmax and judged against tx
// snapshots, giving catalog readers snapshot isolation (§5). Every
// mutation is logged to the WAL so a standby master can replay it (§2.6).
package catalog

import (
	"fmt"
	"sync"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// SysTable is one MVCC catalog heap (pg_class-style).
type SysTable struct {
	Name   string
	Schema *types.Schema

	mu      sync.RWMutex
	rows    []sysRow
	nextRow uint64
}

type sysRow struct {
	id   uint64
	xmin tx.XID
	xmax tx.XID
	data types.Row
}

// NewSysTable creates an empty system table.
func NewSysTable(name string, schema *types.Schema) *SysTable {
	return &SysTable{Name: name, Schema: schema, nextRow: 1}
}

// Insert adds a row version created by xid and returns its row ID.
func (t *SysTable) Insert(xid tx.XID, row types.Row) uint64 {
	if len(row) != t.Schema.Len() {
		panic(fmt.Sprintf("catalog: %s insert width %d, want %d", t.Name, len(row), t.Schema.Len()))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextRow
	t.nextRow++
	t.rows = append(t.rows, sysRow{id: id, xmin: xid, data: row.Clone()})
	return id
}

// InsertWithID adds a row with a caller-chosen ID (WAL replay on the
// standby, where IDs must match the primary).
func (t *SysTable) InsertWithID(xid tx.XID, id uint64, row types.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id >= t.nextRow {
		t.nextRow = id + 1
	}
	t.rows = append(t.rows, sysRow{id: id, xmin: xid, data: row.Clone()})
}

// Delete stamps xmax on the row version with the given ID. It reports
// whether a live version was found.
func (t *SysTable) Delete(xid tx.XID, id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.rows {
		if t.rows[i].id == id && t.rows[i].xmax == tx.InvalidXID {
			t.rows[i].xmax = xid
			return true
		}
	}
	return false
}

// Scan calls fn for every row version visible to the snapshot. Returning
// false stops the scan.
func (t *SysTable) Scan(snap tx.Snapshot, fn func(id uint64, row types.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := range t.rows {
		r := &t.rows[i]
		if snap.RowVisible(r.xmin, r.xmax) {
			if !fn(r.id, r.data) {
				return
			}
		}
	}
}

// Vacuum removes versions deleted by transactions no longer visible to
// anyone (the horizon). It returns the number of versions reclaimed.
func (t *SysTable) Vacuum(horizon tx.Snapshot) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		if r.xmax != tx.InvalidXID && horizon.XidVisible(r.xmax) {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.rows = kept
	return removed
}

// Len returns the number of stored row versions (all, not just visible).
func (t *SysTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

package catalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// Orientation names for StorageSpec.
const (
	OrientRow     = "row"     // AO: row-oriented append-only (§2.5)
	OrientColumn  = "column"  // CO: column-per-file
	OrientParquet = "parquet" // PAX-style row groups
)

// DistPolicy is a table's data distribution policy (§2.3).
type DistPolicy struct {
	// Random selects round-robin distribution.
	Random bool
	// Cols are the hash-distribution column indexes (ignored when
	// Random).
	Cols []int
}

// String renders the policy for EXPLAIN and pg_class-style output.
func (d DistPolicy) String() string {
	if d.Random {
		return "RANDOMLY"
	}
	parts := make([]string, len(d.Cols))
	for i, c := range d.Cols {
		parts[i] = strconv.Itoa(c)
	}
	return "HASH(" + strings.Join(parts, ",") + ")"
}

// StorageSpec selects the on-disk format of a table (§2.5).
type StorageSpec struct {
	// Orientation is OrientRow, OrientColumn or OrientParquet.
	Orientation string
	// Codec is a compress codec name ("none", "quicklz", "zlib-5", ...).
	Codec string
}

// PartitionKind classifies partitioned parents and their children.
type PartitionKind uint8

// Partition kinds.
const (
	PartNone PartitionKind = iota
	PartRange
	PartList
)

// TableDesc describes a table: the typed view assembled from the
// hawq_class and hawq_attribute system tables.
type TableDesc struct {
	OID     int64
	Name    string
	Schema  *types.Schema
	Dist    DistPolicy
	Storage StorageSpec

	// Partitioning. A parent has PartKind set and children pointing back
	// via ParentOID; each child carries its bounds.
	PartKind  PartitionKind
	PartCol   int
	ParentOID int64
	// Range child bounds: [RangeLo, RangeHi).
	RangeLo, RangeHi types.Datum
	// List child values.
	ListValues []types.Datum

	// External tables (PXF, §6): Location is the pxf:// URI.
	Location string
	Format   string
}

// IsExternal reports whether this is a PXF external table.
func (t *TableDesc) IsExternal() bool { return t.Location != "" }

// IsPartitionParent reports whether the table is a partitioned parent.
func (t *TableDesc) IsPartitionParent() bool { return t.PartKind != PartNone && t.ParentOID == 0 }

// IsPartitionChild reports whether the table is a partition of a parent.
func (t *TableDesc) IsPartitionChild() bool { return t.ParentOID != 0 }

// SegFile is one HDFS data file of a table on one segment: the unit of
// the swimming-lane concurrent insert protocol (§5.4). LogicalLen is the
// committed length; bytes beyond it are garbage from aborted inserts.
// Column-oriented tables store each column in a separate file, so they
// carry one committed length per column in ColLens (Path is then the
// common prefix; column i lives at Path + ".c" + i).
type SegFile struct {
	TableOID   int64
	SegmentID  int
	SegNo      int
	Path       string
	LogicalLen int64
	Tuples     int64
	ColLens    []int64
}

// RelStats carries planner statistics for a table (§6.3, ANALYZE).
type RelStats struct {
	Rows  int64
	Bytes int64
}

// ColStats carries per-column statistics.
type ColStats struct {
	NDistinct float64
	NullFrac  float64
	Min, Max  types.Datum
}

// SegmentInfo describes one registered segment (system information
// catalog, §2.2).
type SegmentInfo struct {
	ID     int
	Host   string
	Port   int
	Status string // "up" or "down"
}

// Catalog is the unified catalog service. All access is by transaction
// snapshot; all mutations are WAL-logged. The WAL is held through an
// atomic pointer so promotion can swap it (the promoted standby starts a
// fresh log epoch) while queries are in flight.
type Catalog struct {
	mu      sync.Mutex
	wal     atomic.Pointer[tx.WAL]
	sys     map[string]*SysTable
	nextOID int64
	// onMutation, when set, is called with the writing XID for every
	// mutation of a plan-relevant system table (see planRelevant). The
	// cluster wires it to tx.Manager.MarkCatalogChange so committed
	// catalog changes bump the plan-cache version.
	onMutation atomic.Pointer[func(tx.XID)]
}

// planRelevant lists the system tables whose contents feed planning:
// schemas, distribution, segment files (data visibility), statistics,
// and segment status. Mutating any of them must invalidate cached plans;
// churn counters, task rows, and resource queues do not affect plan
// shape or results.
var planRelevant = map[string]bool{
	SysClass:     true,
	SysAttribute: true,
	SysAoseg:     true,
	SysStatRel:   true,
	SysStatCol:   true,
	SysSegment:   true,
}

// SetMutationHook registers fn to observe plan-relevant catalog writes
// (nil unregisters). The hook runs on the writer's goroutine while the
// writing transaction is still in progress.
func (c *Catalog) SetMutationHook(fn func(tx.XID)) {
	if fn == nil {
		c.onMutation.Store(nil)
		return
	}
	c.onMutation.Store(&fn)
}

func (c *Catalog) noteMutation(xid tx.XID, table string) {
	if !planRelevant[table] {
		return
	}
	if fn := c.onMutation.Load(); fn != nil {
		(*fn)(xid)
	}
}

// System table names.
const (
	SysClass     = "hawq_class"
	SysAttribute = "hawq_attribute"
	SysAoseg     = "hawq_aoseg"
	SysStatRel   = "hawq_stat_rel"
	SysStatCol   = "hawq_stat_col"
	SysSegment   = "hawq_segment"
	SysResQueue  = "hawq_resqueue"
	SysTask      = "hawq_task"
	SysStatMod   = "hawq_stat_mod"
)

// New creates a catalog with empty system tables. Mutations are logged to
// wal (pass a fresh WAL for a primary, or nil for a standby replica that
// is populated purely by ApplyRecord).
func New(wal *tx.WAL) *Catalog {
	c := &Catalog{sys: map[string]*SysTable{}, nextOID: 16384}
	if wal != nil {
		c.wal.Store(wal)
	}
	add := func(name string, cols ...types.Column) {
		c.sys[name] = NewSysTable(name, types.NewSchema(cols...))
	}
	add(SysClass,
		types.Column{Name: "oid", Kind: types.KindInt64},
		types.Column{Name: "relname", Kind: types.KindString},
		types.Column{Name: "distrandom", Kind: types.KindBool},
		types.Column{Name: "distcols", Kind: types.KindString},
		types.Column{Name: "orientation", Kind: types.KindString},
		types.Column{Name: "codec", Kind: types.KindString},
		types.Column{Name: "partkind", Kind: types.KindInt32},
		types.Column{Name: "partcol", Kind: types.KindInt32},
		types.Column{Name: "parentoid", Kind: types.KindInt64},
		types.Column{Name: "rangelo", Kind: types.KindBytes},
		types.Column{Name: "rangehi", Kind: types.KindBytes},
		types.Column{Name: "listvals", Kind: types.KindBytes},
		types.Column{Name: "location", Kind: types.KindString},
		types.Column{Name: "format", Kind: types.KindString},
	)
	add(SysAttribute,
		types.Column{Name: "tableoid", Kind: types.KindInt64},
		types.Column{Name: "attnum", Kind: types.KindInt32},
		types.Column{Name: "attname", Kind: types.KindString},
		types.Column{Name: "kind", Kind: types.KindInt32},
		types.Column{Name: "scale", Kind: types.KindInt32},
		types.Column{Name: "notnull", Kind: types.KindBool},
	)
	add(SysAoseg,
		types.Column{Name: "tableoid", Kind: types.KindInt64},
		types.Column{Name: "segmentid", Kind: types.KindInt32},
		types.Column{Name: "segno", Kind: types.KindInt32},
		types.Column{Name: "path", Kind: types.KindString},
		types.Column{Name: "logicallen", Kind: types.KindInt64},
		types.Column{Name: "tuples", Kind: types.KindInt64},
		types.Column{Name: "collens", Kind: types.KindString},
	)
	add(SysStatRel,
		types.Column{Name: "tableoid", Kind: types.KindInt64},
		types.Column{Name: "rows", Kind: types.KindInt64},
		types.Column{Name: "bytes", Kind: types.KindInt64},
	)
	add(SysStatCol,
		types.Column{Name: "tableoid", Kind: types.KindInt64},
		types.Column{Name: "attnum", Kind: types.KindInt32},
		types.Column{Name: "ndistinct", Kind: types.KindFloat64},
		types.Column{Name: "nullfrac", Kind: types.KindFloat64},
		types.Column{Name: "minval", Kind: types.KindBytes},
		types.Column{Name: "maxval", Kind: types.KindBytes},
	)
	add(SysSegment,
		types.Column{Name: "segmentid", Kind: types.KindInt32},
		types.Column{Name: "host", Kind: types.KindString},
		types.Column{Name: "port", Kind: types.KindInt32},
		types.Column{Name: "status", Kind: types.KindString},
	)
	add(SysResQueue,
		types.Column{Name: "rsqname", Kind: types.KindString},
		types.Column{Name: "activelimit", Kind: types.KindInt64},
		types.Column{Name: "memlimit", Kind: types.KindInt64},
	)
	add(SysTask,
		types.Column{Name: "taskname", Kind: types.KindString},
		types.Column{Name: "kind", Kind: types.KindString},
		types.Column{Name: "target", Kind: types.KindString},
		types.Column{Name: "intervalns", Kind: types.KindInt64},
		types.Column{Name: "state", Kind: types.KindString},
		types.Column{Name: "owner", Kind: types.KindString},
		types.Column{Name: "leaseexpiry", Kind: types.KindInt64},
		types.Column{Name: "lastrun", Kind: types.KindInt64},
		types.Column{Name: "nextrun", Kind: types.KindInt64},
		types.Column{Name: "retries", Kind: types.KindInt64},
		types.Column{Name: "lasterror", Kind: types.KindString},
	)
	add(SysStatMod,
		types.Column{Name: "tableoid", Kind: types.KindInt64},
		types.Column{Name: "modrows", Kind: types.KindInt64},
	)
	return c
}

// VacuumAll reclaims dead row versions in every system table, given the
// transaction manager's horizon snapshot. It returns the number of
// versions removed.
func (c *Catalog) VacuumAll(horizon tx.Snapshot) int {
	total := 0
	for _, t := range c.sys {
		total += t.Vacuum(horizon)
	}
	return total
}

// SysTable returns a system table by name (CaQL and tests).
func (c *Catalog) SysTable(name string) (*SysTable, error) {
	t, ok := c.sys[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no system table %q", name)
	}
	return t, nil
}

// SetWAL swaps the log mutations are recorded to. Promotion installs a
// fresh WAL epoch; recovery installs the durable log once replay is done
// (replay itself must not re-log).
func (c *Catalog) SetWAL(w *tx.WAL) { c.wal.Store(w) }

// WAL returns the current log (nil for a pure replica).
func (c *Catalog) WAL() *tx.WAL { return c.wal.Load() }

// insert writes a row to a system table and WAL-logs it.
func (c *Catalog) insert(xid tx.XID, table string, row types.Row) uint64 {
	t := c.sys[table]
	id := t.Insert(xid, row)
	if w := c.wal.Load(); w != nil {
		w.Append(tx.Record{Type: tx.RecInsert, XID: xid, Table: table, RowID: id, Data: types.EncodeRow(nil, row)})
	}
	c.noteMutation(xid, table)
	return id
}

// delete stamps a row deleted and WAL-logs it.
func (c *Catalog) delete(xid tx.XID, table string, id uint64) {
	if c.sys[table].Delete(xid, id) {
		if w := c.wal.Load(); w != nil {
			w.Append(tx.Record{Type: tx.RecDelete, XID: xid, Table: table, RowID: id})
		}
		c.noteMutation(xid, table)
	}
}

// ApplyRecord replays a WAL record into this catalog replica: the standby
// master's log-shipping apply loop (§2.6).
func (c *Catalog) ApplyRecord(r tx.Record) error {
	switch r.Type {
	case tx.RecInsert:
		t, ok := c.sys[r.Table]
		if !ok {
			return fmt.Errorf("catalog: replay into unknown table %q", r.Table)
		}
		row, _, err := types.DecodeRow(r.Data)
		if err != nil {
			return fmt.Errorf("catalog: replay decode: %w", err)
		}
		t.InsertWithID(r.XID, r.RowID, row)
		if r.Table == SysClass {
			c.mu.Lock()
			if oid := row[0].Int(); oid >= c.nextOID {
				c.nextOID = oid + 1
			}
			c.mu.Unlock()
		}
	case tx.RecDelete:
		t, ok := c.sys[r.Table]
		if !ok {
			return fmt.Errorf("catalog: replay delete on unknown table %q", r.Table)
		}
		t.Delete(r.XID, r.RowID)
	}
	return nil
}

// allocOID hands out a new object ID.
func (c *Catalog) allocOID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	oid := c.nextOID
	c.nextOID++
	return oid
}

// CreateTable registers a table. For partitioned parents, callers create
// the children separately via CreateTable with ParentOID set (the planner
// DDL path builds them from the PARTITION BY clause). Returns the
// assigned OID.
func (c *Catalog) CreateTable(t *tx.Tx, desc *TableDesc) (int64, error) {
	snap := t.Snapshot()
	if existing, err := c.LookupTable(snap, desc.Name); err == nil && existing != nil {
		return 0, fmt.Errorf("catalog: table %q already exists", desc.Name)
	}
	if desc.Storage.Orientation == "" {
		desc.Storage.Orientation = OrientRow
	}
	if desc.Storage.Codec == "" {
		desc.Storage.Codec = "none"
	}
	oid := desc.OID
	if oid == 0 {
		oid = c.allocOID()
	}
	desc.OID = oid
	distCols := make([]string, len(desc.Dist.Cols))
	for i, col := range desc.Dist.Cols {
		distCols[i] = strconv.Itoa(col)
	}
	var listVals []byte
	if len(desc.ListValues) > 0 {
		listVals = types.EncodeRow(nil, desc.ListValues)
	}
	var rangeLo, rangeHi []byte
	if !desc.RangeLo.IsNull() {
		rangeLo = types.EncodeDatum(nil, desc.RangeLo)
	}
	if !desc.RangeHi.IsNull() {
		rangeHi = types.EncodeDatum(nil, desc.RangeHi)
	}
	c.insert(t.XID(), SysClass, types.Row{
		types.NewInt64(oid),
		types.NewString(desc.Name),
		types.NewBool(desc.Dist.Random),
		types.NewString(strings.Join(distCols, ",")),
		types.NewString(desc.Storage.Orientation),
		types.NewString(desc.Storage.Codec),
		types.NewInt32(int32(desc.PartKind)),
		types.NewInt32(int32(desc.PartCol)),
		types.NewInt64(desc.ParentOID),
		types.NewBytes(rangeLo),
		types.NewBytes(rangeHi),
		types.NewBytes(listVals),
		types.NewString(desc.Location),
		types.NewString(desc.Format),
	})
	for i, col := range desc.Schema.Columns {
		c.insert(t.XID(), SysAttribute, types.Row{
			types.NewInt64(oid),
			types.NewInt32(int32(i)),
			types.NewString(col.Name),
			types.NewInt32(int32(col.Kind)),
			types.NewInt32(int32(col.Scale)),
			types.NewBool(col.NotNull),
		})
	}
	return oid, nil
}

// DropTable removes a table (and its partitions when it is a parent).
func (c *Catalog) DropTable(t *tx.Tx, name string) error {
	snap := t.Snapshot()
	desc, err := c.LookupTable(snap, name)
	if err != nil {
		return err
	}
	victims := []*TableDesc{desc}
	if desc.IsPartitionParent() {
		kids, err := c.PartitionChildren(snap, desc.OID)
		if err != nil {
			return err
		}
		victims = append(victims, kids...)
	}
	for _, v := range victims {
		c.dropOne(t, snap, v.OID)
	}
	return nil
}

func (c *Catalog) dropOne(t *tx.Tx, snap tx.Snapshot, oid int64) {
	collect := func(table string, oidCol int) []uint64 {
		var ids []uint64
		c.sys[table].Scan(snap, func(id uint64, row types.Row) bool {
			if row[oidCol].Int() == oid {
				ids = append(ids, id)
			}
			return true
		})
		return ids
	}
	for _, table := range []string{SysClass, SysAttribute, SysAoseg, SysStatRel, SysStatCol, SysStatMod} {
		oidCol := 0
		if table != SysClass {
			oidCol = 0 // all these key on tableoid in column 0 except SysClass's oid, also 0
		}
		for _, id := range collect(table, oidCol) {
			c.delete(t.XID(), table, id)
		}
	}
}

// decodeClassRow turns a hawq_class row into a TableDesc (schema filled
// in by the caller).
func decodeClassRow(row types.Row) *TableDesc {
	desc := &TableDesc{
		OID:  row[0].Int(),
		Name: row[1].Str(),
		Dist: DistPolicy{Random: row[2].Bool()},
		Storage: StorageSpec{
			Orientation: row[4].Str(),
			Codec:       row[5].Str(),
		},
		PartKind:  PartitionKind(row[6].Int()),
		PartCol:   int(row[7].Int()),
		ParentOID: row[8].Int(),
		Location:  row[12].Str(),
		Format:    row[13].Str(),
	}
	if s := row[3].Str(); s != "" {
		for _, part := range strings.Split(s, ",") {
			n, _ := strconv.Atoi(part)
			desc.Dist.Cols = append(desc.Dist.Cols, n)
		}
	}
	if b := row[9].Str(); b != "" {
		if d, _, err := types.DecodeDatum([]byte(b)); err == nil {
			desc.RangeLo = d
		}
	}
	if b := row[10].Str(); b != "" {
		if d, _, err := types.DecodeDatum([]byte(b)); err == nil {
			desc.RangeHi = d
		}
	}
	if b := row[11].Str(); b != "" {
		if vals, _, err := types.DecodeRow([]byte(b)); err == nil {
			desc.ListValues = vals
		}
	}
	return desc
}

// loadSchema reads hawq_attribute rows for a table.
func (c *Catalog) loadSchema(snap tx.Snapshot, oid int64) *types.Schema {
	type att struct {
		num int
		col types.Column
	}
	var atts []att
	c.sys[SysAttribute].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == oid {
			atts = append(atts, att{
				num: int(row[1].Int()),
				col: types.Column{
					Name:    row[2].Str(),
					Kind:    types.Kind(row[3].Int()),
					Scale:   int8(row[4].Int()),
					NotNull: row[5].Bool(),
				},
			})
		}
		return true
	})
	sort.Slice(atts, func(i, j int) bool { return atts[i].num < atts[j].num })
	cols := make([]types.Column, len(atts))
	for i, a := range atts {
		cols[i] = a.col
	}
	return &types.Schema{Columns: cols}
}

// LookupTable resolves a table by name under a snapshot. Returns
// (nil, error) when absent.
func (c *Catalog) LookupTable(snap tx.Snapshot, name string) (*TableDesc, error) {
	var desc *TableDesc
	c.sys[SysClass].Scan(snap, func(_ uint64, row types.Row) bool {
		if strings.EqualFold(row[1].Str(), name) {
			desc = decodeClassRow(row)
			return false
		}
		return true
	})
	if desc == nil {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	desc.Schema = c.loadSchema(snap, desc.OID)
	return desc, nil
}

// LookupTableByOID resolves a table by OID.
func (c *Catalog) LookupTableByOID(snap tx.Snapshot, oid int64) (*TableDesc, error) {
	var desc *TableDesc
	c.sys[SysClass].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == oid {
			desc = decodeClassRow(row)
			return false
		}
		return true
	})
	if desc == nil {
		return nil, fmt.Errorf("catalog: no table with oid %d", oid)
	}
	desc.Schema = c.loadSchema(snap, desc.OID)
	return desc, nil
}

// ListTables returns all visible tables sorted by name.
func (c *Catalog) ListTables(snap tx.Snapshot) []*TableDesc {
	var out []*TableDesc
	c.sys[SysClass].Scan(snap, func(_ uint64, row types.Row) bool {
		out = append(out, decodeClassRow(row))
		return true
	})
	for _, d := range out {
		d.Schema = c.loadSchema(snap, d.OID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PartitionChildren returns the child partitions of a parent, ordered by
// OID (creation order).
func (c *Catalog) PartitionChildren(snap tx.Snapshot, parentOID int64) ([]*TableDesc, error) {
	var out []*TableDesc
	c.sys[SysClass].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[8].Int() == parentOID {
			out = append(out, decodeClassRow(row))
		}
		return true
	})
	for _, d := range out {
		d.Schema = c.loadSchema(snap, d.OID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out, nil
}

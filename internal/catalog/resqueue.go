package catalog

import (
	"fmt"
	"sort"
	"strings"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// ResQueueDesc describes one resource queue row of hawq_resqueue: the
// workload manager's admission-control object (paper §2.1's resource
// manager). Limits are stored resolved — ActiveStatements as a count,
// MemLimit as bytes — so every reader agrees on their meaning.
type ResQueueDesc struct {
	Name string
	// ActiveStatements caps concurrently executing statements admitted
	// through the queue (0 = unlimited).
	ActiveStatements int64
	// MemLimit is the per-query memory grant in bytes (0 = unlimited).
	MemLimit int64
}

// CreateResourceQueue registers a resource queue under the transaction.
func (c *Catalog) CreateResourceQueue(t *tx.Tx, d ResQueueDesc) error {
	name := strings.ToLower(d.Name)
	// The lookup error only says "does not exist" — exactly the state
	// CREATE wants.
	//hawqcheck:ignore errdrop
	existing, _ := c.LookupResourceQueue(t.Snapshot(), name)
	if existing != nil {
		return fmt.Errorf("catalog: resource queue %q already exists", name)
	}
	c.insert(t.XID(), SysResQueue, types.Row{
		types.NewString(name),
		types.NewInt64(d.ActiveStatements),
		types.NewInt64(d.MemLimit),
	})
	return nil
}

// DropResourceQueue removes a resource queue.
func (c *Catalog) DropResourceQueue(t *tx.Tx, name string) error {
	name = strings.ToLower(name)
	snap := t.Snapshot()
	var victim uint64
	found := false
	c.sys[SysResQueue].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Str() == name {
			victim, found = id, true
			return false
		}
		return true
	})
	if !found {
		return fmt.Errorf("catalog: resource queue %q does not exist", name)
	}
	c.delete(t.XID(), SysResQueue, victim)
	return nil
}

// LookupResourceQueue resolves a queue by name under a snapshot;
// (nil, error) when absent.
func (c *Catalog) LookupResourceQueue(snap tx.Snapshot, name string) (*ResQueueDesc, error) {
	name = strings.ToLower(name)
	var out *ResQueueDesc
	c.sys[SysResQueue].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Str() == name {
			out = decodeResQueueRow(row)
			return false
		}
		return true
	})
	if out == nil {
		return nil, fmt.Errorf("catalog: resource queue %q does not exist", name)
	}
	return out, nil
}

// ListResourceQueues returns all visible queues sorted by name.
func (c *Catalog) ListResourceQueues(snap tx.Snapshot) []*ResQueueDesc {
	var out []*ResQueueDesc
	c.sys[SysResQueue].Scan(snap, func(_ uint64, row types.Row) bool {
		out = append(out, decodeResQueueRow(row))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func decodeResQueueRow(row types.Row) *ResQueueDesc {
	return &ResQueueDesc{
		Name:             row[0].Str(),
		ActiveStatements: row[1].Int(),
		MemLimit:         row[2].Int(),
	}
}

package catalog

import (
	"strings"
	"testing"

	"hawq/internal/tx"
	"hawq/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "o_orderkey", Kind: types.KindInt64, NotNull: true},
		types.Column{Name: "o_custkey", Kind: types.KindInt32, NotNull: true},
		types.Column{Name: "o_totalprice", Kind: types.KindDecimal, Scale: 2},
		types.Column{Name: "o_orderdate", Kind: types.KindDate},
	)
}

func newEnv() (*Catalog, *tx.Manager) {
	return New(tx.NewWAL()), tx.NewManager()
}

func TestCreateLookupDropTable(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	oid, err := c.CreateTable(tr, &TableDesc{
		Name:    "orders",
		Schema:  testSchema(),
		Dist:    DistPolicy{Cols: []int{0}},
		Storage: StorageSpec{Orientation: OrientColumn, Codec: "zlib-5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if oid == 0 {
		t.Fatal("zero oid")
	}
	// Visible to own transaction before commit.
	desc, err := c.LookupTable(tr.Snapshot(), "ORDERS")
	if err != nil {
		t.Fatal(err)
	}
	if desc.OID != oid || desc.Schema.Len() != 4 || desc.Storage.Codec != "zlib-5" {
		t.Errorf("desc = %+v", desc)
	}
	if desc.Schema.Columns[2].Kind != types.KindDecimal || desc.Schema.Columns[2].Scale != 2 {
		t.Errorf("decimal column = %+v", desc.Schema.Columns[2])
	}
	// Invisible to a concurrent transaction.
	other := m.Begin(tx.ReadCommitted)
	if _, err := c.LookupTable(other.Snapshot(), "orders"); err == nil {
		t.Error("uncommitted table visible to other tx")
	}
	tr.Commit()
	if _, err := c.LookupTable(other.Snapshot(), "orders"); err != nil {
		t.Errorf("committed table invisible: %v", err)
	}
	other.Commit()

	// Duplicate name rejected.
	tr2 := m.Begin(tx.ReadCommitted)
	if _, err := c.CreateTable(tr2, &TableDesc{Name: "orders", Schema: testSchema()}); err == nil {
		t.Error("duplicate create accepted")
	}
	if err := c.DropTable(tr2, "orders"); err != nil {
		t.Fatal(err)
	}
	tr2.Commit()
	tr3 := m.Begin(tx.ReadCommitted)
	if _, err := c.LookupTable(tr3.Snapshot(), "orders"); err == nil {
		t.Error("dropped table still visible")
	}
	tr3.Commit()
}

func TestAbortedCreateInvisible(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	if _, err := c.CreateTable(tr, &TableDesc{Name: "ghost", Schema: testSchema()}); err != nil {
		t.Fatal(err)
	}
	tr.Abort()
	tr2 := m.Begin(tx.ReadCommitted)
	defer tr2.Commit()
	if _, err := c.LookupTable(tr2.Snapshot(), "ghost"); err == nil {
		t.Error("aborted create visible")
	}
	// Name is reusable after the abort.
	if _, err := c.CreateTable(tr2, &TableDesc{Name: "ghost", Schema: testSchema()}); err != nil {
		t.Errorf("recreate after abort: %v", err)
	}
}

func TestPartitionChildren(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	parentOID, err := c.CreateTable(tr, &TableDesc{
		Name: "sales", Schema: testSchema(),
		PartKind: PartRange, PartCol: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, bounds := range [][2]string{{"2008-01-01", "2008-02-01"}, {"2008-02-01", "2008-03-01"}} {
		_, err := c.CreateTable(tr, &TableDesc{
			Name: "sales_1_prt_" + string(rune('1'+i)), Schema: testSchema(),
			ParentOID: parentOID, PartKind: PartRange, PartCol: 3,
			RangeLo: types.MustParseDate(bounds[0]), RangeHi: types.MustParseDate(bounds[1]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	kids, err := c.PartitionChildren(tr.Snapshot(), parentOID)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("children = %d", len(kids))
	}
	if kids[0].RangeLo.String() != "2008-01-01" || kids[0].RangeHi.String() != "2008-02-01" {
		t.Errorf("bounds = %v..%v", kids[0].RangeLo, kids[0].RangeHi)
	}
	parent, _ := c.LookupTable(tr.Snapshot(), "sales")
	if !parent.IsPartitionParent() || parent.PartCol != 3 {
		t.Errorf("parent = %+v", parent)
	}
	if !kids[0].IsPartitionChild() {
		t.Error("child flag wrong")
	}
	// Dropping the parent drops children too.
	if err := c.DropTable(tr, "sales"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LookupTable(tr.Snapshot(), "sales_1_prt_1"); err == nil {
		t.Error("child survived parent drop")
	}
	tr.Commit()
}

func TestSegFileVisibilityAcrossTransactions(t *testing.T) {
	c, m := newEnv()
	setup := m.Begin(tx.ReadCommitted)
	oid, _ := c.CreateTable(setup, &TableDesc{Name: "t", Schema: testSchema()})
	c.AddSegFile(setup, SegFile{TableOID: oid, SegmentID: 0, SegNo: 1, Path: "/hawq/t/0/1"})
	setup.Commit()

	// Writer advances the logical length but has not committed.
	writer := m.Begin(tx.ReadCommitted)
	if err := c.UpdateSegFile(writer, SegFile{TableOID: oid, SegmentID: 0, SegNo: 1, Path: "/hawq/t/0/1", LogicalLen: 500, Tuples: 10}); err != nil {
		t.Fatal(err)
	}
	reader := m.Begin(tx.ReadCommitted)
	files := c.SegFiles(reader.Snapshot(), oid, 0)
	if len(files) != 1 || files[0].LogicalLen != 0 {
		t.Fatalf("reader sees %+v, want logical length 0", files)
	}
	// Writer sees its own update.
	files = c.SegFiles(writer.Snapshot(), oid, 0)
	if len(files) != 1 || files[0].LogicalLen != 500 {
		t.Fatalf("writer sees %+v", files)
	}
	writer.Commit()
	files = c.SegFiles(reader.Snapshot(), oid, 0)
	if files[0].LogicalLen != 500 {
		t.Errorf("after commit reader sees %d", files[0].LogicalLen)
	}
	reader.Commit()

	// Aborted advance leaves the logical length untouched.
	ab := m.Begin(tx.ReadCommitted)
	c.UpdateSegFile(ab, SegFile{TableOID: oid, SegmentID: 0, SegNo: 1, Path: "/hawq/t/0/1", LogicalLen: 900})
	ab.Abort()
	check := m.Begin(tx.ReadCommitted)
	defer check.Commit()
	files = c.SegFiles(check.Snapshot(), oid, 0)
	if files[0].LogicalLen != 500 {
		t.Errorf("aborted update leaked: %d", files[0].LogicalLen)
	}
}

func TestSwimmingLaneSegNos(t *testing.T) {
	c, m := newEnv()
	setup := m.Begin(tx.ReadCommitted)
	oid, _ := c.CreateTable(setup, &TableDesc{Name: "t", Schema: testSchema()})
	setup.Commit()

	// Two concurrent writers claim distinct segnos.
	w1 := m.Begin(tx.ReadCommitted)
	w2 := m.Begin(tx.ReadCommitted)
	n1 := c.MaxSegNo(w1.Snapshot(), oid, 0) + 1
	c.AddSegFile(w1, SegFile{TableOID: oid, SegmentID: 0, SegNo: n1})
	n2 := c.MaxSegNo(w2.Snapshot(), oid, 0) + 1
	// w2 cannot see w1's uncommitted file, so the engine layer
	// coordinates lane assignment; here we emulate it.
	if n2 == n1 {
		n2++
	}
	c.AddSegFile(w2, SegFile{TableOID: oid, SegmentID: 0, SegNo: n2})
	w1.Commit()
	w2.Commit()
	r := m.Begin(tx.ReadCommitted)
	defer r.Commit()
	files := c.SegFiles(r.Snapshot(), oid, 0)
	if len(files) != 2 || files[0].SegNo == files[1].SegNo {
		t.Fatalf("files = %+v", files)
	}
	if c.MaxSegNo(r.Snapshot(), oid, 0) != n2 {
		t.Errorf("max segno = %d", c.MaxSegNo(r.Snapshot(), oid, 0))
	}
}

func TestStats(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	oid, _ := c.CreateTable(tr, &TableDesc{Name: "t", Schema: testSchema()})
	if _, ok := c.RelStatsFor(tr.Snapshot(), oid); ok {
		t.Error("stats before analyze")
	}
	c.SetRelStats(tr, oid, RelStats{Rows: 1000, Bytes: 4096})
	c.SetColStats(tr, oid, 0, ColStats{NDistinct: 900, Min: types.NewInt64(1), Max: types.NewInt64(1000)})
	rs, ok := c.RelStatsFor(tr.Snapshot(), oid)
	if !ok || rs.Rows != 1000 {
		t.Errorf("rel stats = %+v, %v", rs, ok)
	}
	cs, ok := c.ColStatsFor(tr.Snapshot(), oid, 0)
	if !ok || cs.NDistinct != 900 || cs.Min.Int() != 1 || cs.Max.Int() != 1000 {
		t.Errorf("col stats = %+v", cs)
	}
	// Re-analyze replaces.
	c.SetRelStats(tr, oid, RelStats{Rows: 2000})
	rs, _ = c.RelStatsFor(tr.Snapshot(), oid)
	if rs.Rows != 2000 {
		t.Errorf("replaced stats = %+v", rs)
	}
	tr.Commit()
}

func TestSegments(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	for i := 0; i < 3; i++ {
		c.RegisterSegment(tr, SegmentInfo{ID: i, Host: "host", Port: 7000 + i, Status: "up"})
	}
	if err := c.SetSegmentStatus(tr, 1, "down"); err != nil {
		t.Fatal(err)
	}
	segs := c.Segments(tr.Snapshot())
	if len(segs) != 3 || segs[1].Status != "down" || segs[0].Status != "up" {
		t.Fatalf("segments = %+v", segs)
	}
	if err := c.SetSegmentStatus(tr, 99, "down"); err == nil {
		t.Error("unknown segment accepted")
	}
	tr.Commit()
}

func TestStandbyReplayFromWAL(t *testing.T) {
	wal := tx.NewWAL()
	primary := New(wal)
	m := tx.NewManager()

	tr := m.Begin(tx.ReadCommitted)
	oid, _ := primary.CreateTable(tr, &TableDesc{
		Name: "orders", Schema: testSchema(), Dist: DistPolicy{Cols: []int{0}},
	})
	primary.AddSegFile(tr, SegFile{TableOID: oid, SegmentID: 0, SegNo: 1, Path: "/p"})
	tr.Commit()

	// Standby attaches: catch up on the backlog, then stream.
	standby := New(nil)
	_, backlog := wal.Subscribe(func(r tx.Record) {
		if err := standby.ApplyRecord(r); err != nil {
			t.Errorf("apply: %v", err)
		}
	})
	for _, r := range backlog {
		if err := standby.ApplyRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	tr2 := m.Begin(tx.ReadCommitted)
	primary.SetRelStats(tr2, oid, RelStats{Rows: 7})
	tr2.Commit()

	check := m.Begin(tx.ReadCommitted)
	defer check.Commit()
	desc, err := standby.LookupTable(check.Snapshot(), "orders")
	if err != nil {
		t.Fatalf("standby lookup: %v", err)
	}
	if desc.OID != oid || desc.Schema.Len() != 4 || len(desc.Dist.Cols) != 1 {
		t.Errorf("standby desc = %+v", desc)
	}
	rs, ok := standby.RelStatsFor(check.Snapshot(), oid)
	if !ok || rs.Rows != 7 {
		t.Errorf("standby stats = %+v, %v", rs, ok)
	}
	// A table created after failover gets a fresh OID, not a clash.
	tr3 := m.Begin(tx.ReadCommitted)
	newOID, err := standby.CreateTable(tr3, &TableDesc{Name: "post_failover", Schema: testSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if newOID <= oid {
		t.Errorf("standby oid %d not beyond primary %d", newOID, oid)
	}
	tr3.Commit()
}

func TestCaQLSelectCountDeleteInsertUpdate(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	for i := 0; i < 3; i++ {
		c.RegisterSegment(tr, SegmentInfo{ID: i, Host: "h", Port: 7000 + i, Status: "up"})
	}
	// SELECT with WHERE and projection.
	res, err := c.CaQL(tr, "SELECT segmentid, status FROM hawq_segment WHERE segmentid >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Schema.Len() != 2 {
		t.Fatalf("select = %+v", res)
	}
	// COUNT.
	res, err = c.CaQL(tr, "SELECT count(*) FROM hawq_segment WHERE status = 'up'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	// Single-row UPDATE.
	res, err = c.CaQL(tr, "UPDATE hawq_segment SET status = 'down' WHERE segmentid = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("update affected = %d", res.Affected)
	}
	segs := c.Segments(tr.Snapshot())
	if segs[2].Status != "down" {
		t.Errorf("segment 2 = %+v", segs[2])
	}
	// Multi-row UPDATE rejected.
	if _, err := c.CaQL(tr, "UPDATE hawq_segment SET status = 'x'"); err == nil {
		t.Error("multi-row update accepted")
	}
	// Single-row INSERT.
	res, err = c.CaQL(tr, "INSERT INTO hawq_segment VALUES (9, 'h9', 7009, 'up')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 || len(c.Segments(tr.Snapshot())) != 4 {
		t.Error("insert failed")
	}
	// Multi-row DELETE.
	res, err = c.CaQL(tr, "DELETE FROM hawq_segment WHERE port > 7000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Errorf("delete affected = %d", res.Affected)
	}
	tr.Commit()
}

func TestCaQLRejectsComplexSQL(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	defer tr.Commit()
	bad := []string{
		"SELECT a FROM hawq_segment, hawq_class",
		"SELECT segmentid FROM hawq_segment GROUP BY segmentid",
		"SELECT segmentid FROM hawq_segment ORDER BY segmentid",
		"SELECT x FROM no_such_systable",
		"SELECT nope FROM hawq_segment",
		"INSERT INTO hawq_segment VALUES (1)",
		"CREATE TABLE x (a INT)",
	}
	for _, q := range bad {
		if _, err := c.CaQL(tr, q); err == nil {
			t.Errorf("CaQL accepted %q", q)
		}
	}
}

func TestVacuum(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	oid, _ := c.CreateTable(tr, &TableDesc{Name: "t", Schema: testSchema()})
	c.AddSegFile(tr, SegFile{TableOID: oid, SegmentID: 0, SegNo: 1})
	tr.Commit()
	// Ten MVCC updates create ten dead versions.
	for i := 0; i < 10; i++ {
		u := m.Begin(tx.ReadCommitted)
		c.UpdateSegFile(u, SegFile{TableOID: oid, SegmentID: 0, SegNo: 1, LogicalLen: int64(i)})
		u.Commit()
	}
	sys, _ := c.SysTable(SysAoseg)
	if sys.Len() != 11 {
		t.Fatalf("versions before vacuum = %d", sys.Len())
	}
	h := m.Begin(tx.ReadCommitted)
	removed := sys.Vacuum(h.Snapshot())
	h.Commit()
	if removed != 10 || sys.Len() != 1 {
		t.Errorf("vacuum removed %d, left %d", removed, sys.Len())
	}
	r := m.Begin(tx.ReadCommitted)
	defer r.Commit()
	files := c.SegFiles(r.Snapshot(), oid, 0)
	if len(files) != 1 || files[0].LogicalLen != 9 {
		t.Errorf("after vacuum files = %+v", files)
	}
}

func TestDistPolicyString(t *testing.T) {
	if s := (DistPolicy{Random: true}).String(); s != "RANDOMLY" {
		t.Errorf("random = %q", s)
	}
	if s := (DistPolicy{Cols: []int{0, 2}}).String(); !strings.Contains(s, "0,2") {
		t.Errorf("hash = %q", s)
	}
}

package catalog

import (
	"fmt"
	"strings"

	"hawq/internal/expr"
	"hawq/internal/sqlparser"
	"hawq/internal/tx"
	"hawq/internal/types"
)

// CaQL is the internal catalog query language (§2.2): a deliberately tiny
// subset of SQL replacing hand-coded C catalog access. It supports
// single-table SELECT (with projection and WHERE), COUNT(), multi-row
// DELETE, and single-row INSERT/UPDATE. No joins, no planner — catalog
// access is OLTP-style index lookups, so a full SQL engine would be
// wasted machinery.

// CaQLResult is the outcome of a CaQL statement.
type CaQLResult struct {
	// Schema and Rows are set for SELECT.
	Schema *types.Schema
	Rows   []types.Row
	// Affected is the row count for INSERT/UPDATE/DELETE.
	Affected int
}

// CaQL executes a catalog query in the given transaction.
func (c *Catalog) CaQL(t *tx.Tx, query string) (*CaQLResult, error) {
	stmt, err := sqlparser.ParseOne(query)
	if err != nil {
		return nil, fmt.Errorf("caql: %w", err)
	}
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return c.caqlSelect(t, s)
	case *sqlparser.InsertStmt:
		return c.caqlInsert(t, s)
	case *sqlparser.DeleteStmt:
		return c.caqlDelete(t, s)
	case *sqlparser.UpdateStmt:
		return c.caqlUpdate(t, s)
	default:
		return nil, fmt.Errorf("caql: unsupported statement %T", stmt)
	}
}

// bindCaQL binds a parsed expression against a system table schema. Only
// the forms CaQL needs are supported: column refs, literals, comparisons,
// AND/OR/NOT, IN lists and LIKE.
func bindCaQL(e sqlparser.Expr, schema *types.Schema) (expr.Expr, error) {
	switch v := e.(type) {
	case *sqlparser.Ident:
		idx := schema.IndexOf(v.Column())
		if idx < 0 {
			return nil, fmt.Errorf("caql: unknown column %q", v.Column())
		}
		col := schema.Columns[idx]
		return &expr.ColRef{Idx: idx, K: col.Kind, Name: col.Name}, nil
	case *sqlparser.NumLit:
		if strings.ContainsAny(v.S, ".eE") {
			d, err := types.ParseDecimal(v.S)
			if err != nil {
				return nil, err
			}
			return expr.NewConst(d), nil
		}
		d, err := types.Cast(types.NewString(v.S), types.KindInt64)
		if err != nil {
			return nil, err
		}
		return expr.NewConst(d), nil
	case *sqlparser.StrLit:
		return expr.NewConst(types.NewString(v.S)), nil
	case *sqlparser.BoolLit:
		return expr.NewConst(types.NewBool(v.V)), nil
	case *sqlparser.NullLit:
		return expr.NewConst(types.Null), nil
	case *sqlparser.UnExpr:
		inner, err := bindCaQL(v.E, schema)
		if err != nil {
			return nil, err
		}
		if v.Op == "not" {
			return &expr.Not{E: inner}, nil
		}
		return &expr.Neg{E: inner}, nil
	case *sqlparser.BinExpr:
		l, err := bindCaQL(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bindCaQL(v.R, schema)
		if err != nil {
			return nil, err
		}
		op, err := binOpFromSQL(v.Op)
		if err != nil {
			return nil, err
		}
		return expr.NewBinOp(op, l, r), nil
	case *sqlparser.LikeExpr:
		inner, err := bindCaQL(v.E, schema)
		if err != nil {
			return nil, err
		}
		pat, ok := v.Pattern.(*sqlparser.StrLit)
		if !ok {
			return nil, fmt.Errorf("caql: LIKE pattern must be a literal")
		}
		return &expr.Like{E: inner, Pattern: pat.S, Negate: v.Negate}, nil
	case *sqlparser.InExpr:
		if v.Sub != nil {
			return nil, fmt.Errorf("caql: IN subqueries not supported")
		}
		inner, err := bindCaQL(v.E, schema)
		if err != nil {
			return nil, err
		}
		items := make([]expr.Expr, len(v.List))
		for i, item := range v.List {
			items[i], err = bindCaQL(item, schema)
			if err != nil {
				return nil, err
			}
		}
		return &expr.InList{E: inner, Items: items, Negate: v.Negate}, nil
	case *sqlparser.IsNullExpr:
		inner, err := bindCaQL(v.E, schema)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: inner, Negate: v.Negate}, nil
	}
	return nil, fmt.Errorf("caql: unsupported expression %T", e)
}

func binOpFromSQL(op string) (expr.BinOpKind, error) {
	switch op {
	case "+":
		return expr.OpAdd, nil
	case "-":
		return expr.OpSub, nil
	case "*":
		return expr.OpMul, nil
	case "/":
		return expr.OpDiv, nil
	case "%":
		return expr.OpMod, nil
	case "=":
		return expr.OpEq, nil
	case "<>":
		return expr.OpNe, nil
	case "<":
		return expr.OpLt, nil
	case "<=":
		return expr.OpLe, nil
	case ">":
		return expr.OpGt, nil
	case ">=":
		return expr.OpGe, nil
	case "and":
		return expr.OpAnd, nil
	case "or":
		return expr.OpOr, nil
	case "||":
		return expr.OpConcat, nil
	}
	return 0, fmt.Errorf("caql: unsupported operator %q", op)
}

func (c *Catalog) caqlTable(ref []sqlparser.TableRef) (*SysTable, error) {
	if len(ref) != 1 {
		return nil, fmt.Errorf("caql: exactly one table required")
	}
	tn, ok := ref[0].(*sqlparser.TableName)
	if !ok {
		return nil, fmt.Errorf("caql: joins and subqueries not supported")
	}
	return c.SysTable(tn.Name)
}

func (c *Catalog) caqlSelect(t *tx.Tx, s *sqlparser.SelectStmt) (*CaQLResult, error) {
	if len(s.GroupBy) > 0 || s.Having != nil || len(s.OrderBy) > 0 || s.Distinct {
		return nil, fmt.Errorf("caql: GROUP BY / HAVING / ORDER BY / DISTINCT not supported")
	}
	sys, err := c.caqlTable(s.From)
	if err != nil {
		return nil, err
	}
	var where expr.Expr
	if s.Where != nil {
		if where, err = bindCaQL(s.Where, sys.Schema); err != nil {
			return nil, err
		}
	}
	// COUNT(*) special form.
	if len(s.Projections) == 1 && !s.Projections[0].Star {
		if f, ok := s.Projections[0].Expr.(*sqlparser.FuncExpr); ok && strings.EqualFold(f.Name, "count") {
			n := 0
			var scanErr error
			sys.Scan(t.Snapshot(), func(_ uint64, row types.Row) bool {
				if where != nil {
					ok, err := expr.EvalBool(where, row)
					if err != nil {
						scanErr = err
						return false
					}
					if !ok {
						return true
					}
				}
				n++
				return true
			})
			if scanErr != nil {
				return nil, scanErr
			}
			return &CaQLResult{
				Schema: types.NewSchema(types.Column{Name: "count", Kind: types.KindInt64}),
				Rows:   []types.Row{{types.NewInt64(int64(n))}},
			}, nil
		}
	}
	// Projection list.
	var projIdx []int
	var outSchema *types.Schema
	if len(s.Projections) == 1 && s.Projections[0].Star {
		outSchema = sys.Schema
		for i := range sys.Schema.Columns {
			projIdx = append(projIdx, i)
		}
	} else {
		var cols []types.Column
		for _, p := range s.Projections {
			id, ok := p.Expr.(*sqlparser.Ident)
			if !ok {
				return nil, fmt.Errorf("caql: projections must be plain columns")
			}
			idx := sys.Schema.IndexOf(id.Column())
			if idx < 0 {
				return nil, fmt.Errorf("caql: unknown column %q", id.Column())
			}
			projIdx = append(projIdx, idx)
			col := sys.Schema.Columns[idx]
			if p.Alias != "" {
				col.Name = p.Alias
			}
			cols = append(cols, col)
		}
		outSchema = &types.Schema{Columns: cols}
	}
	res := &CaQLResult{Schema: outSchema}
	var scanErr error
	limit := -1
	if s.Limit != nil {
		limit = int(*s.Limit)
	}
	sys.Scan(t.Snapshot(), func(_ uint64, row types.Row) bool {
		if where != nil {
			ok, err := expr.EvalBool(where, row)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		out := make(types.Row, len(projIdx))
		for i, idx := range projIdx {
			out[i] = row[idx]
		}
		res.Rows = append(res.Rows, out)
		return limit < 0 || len(res.Rows) < limit
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return res, nil
}

func (c *Catalog) caqlInsert(t *tx.Tx, s *sqlparser.InsertStmt) (*CaQLResult, error) {
	sys, err := c.SysTable(s.Table)
	if err != nil {
		return nil, err
	}
	if s.Select != nil || len(s.Rows) != 1 {
		return nil, fmt.Errorf("caql: INSERT is single-row only")
	}
	if len(s.Columns) > 0 {
		return nil, fmt.Errorf("caql: INSERT must supply all columns positionally")
	}
	src := s.Rows[0]
	if len(src) != sys.Schema.Len() {
		return nil, fmt.Errorf("caql: INSERT has %d values, table %s has %d columns", len(src), sys.Name, sys.Schema.Len())
	}
	row := make(types.Row, len(src))
	for i, e := range src {
		bound, err := bindCaQL(e, sys.Schema)
		if err != nil {
			return nil, err
		}
		v, err := bound.Eval(nil)
		if err != nil {
			return nil, err
		}
		if v, err = types.Cast(v, sys.Schema.Columns[i].Kind); err != nil {
			return nil, fmt.Errorf("caql: column %s: %w", sys.Schema.Columns[i].Name, err)
		}
		row[i] = v
	}
	c.insert(t.XID(), sys.Name, row)
	return &CaQLResult{Affected: 1}, nil
}

func (c *Catalog) caqlDelete(t *tx.Tx, s *sqlparser.DeleteStmt) (*CaQLResult, error) {
	sys, err := c.SysTable(s.Table)
	if err != nil {
		return nil, err
	}
	var where expr.Expr
	if s.Where != nil {
		if where, err = bindCaQL(s.Where, sys.Schema); err != nil {
			return nil, err
		}
	}
	var victims []uint64
	var scanErr error
	sys.Scan(t.Snapshot(), func(id uint64, row types.Row) bool {
		if where != nil {
			ok, err := expr.EvalBool(where, row)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		victims = append(victims, id)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, id := range victims {
		c.delete(t.XID(), sys.Name, id)
	}
	return &CaQLResult{Affected: len(victims)}, nil
}

func (c *Catalog) caqlUpdate(t *tx.Tx, s *sqlparser.UpdateStmt) (*CaQLResult, error) {
	sys, err := c.SysTable(s.Table)
	if err != nil {
		return nil, err
	}
	var where expr.Expr
	if s.Where != nil {
		if where, err = bindCaQL(s.Where, sys.Schema); err != nil {
			return nil, err
		}
	}
	type assignment struct {
		idx int
		e   expr.Expr
	}
	var assigns []assignment
	for _, set := range s.Set {
		idx := sys.Schema.IndexOf(set.Column)
		if idx < 0 {
			return nil, fmt.Errorf("caql: unknown column %q", set.Column)
		}
		bound, err := bindCaQL(set.Value, sys.Schema)
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, assignment{idx: idx, e: bound})
	}
	type hit struct {
		id  uint64
		row types.Row
	}
	var hits []hit
	var scanErr error
	sys.Scan(t.Snapshot(), func(id uint64, row types.Row) bool {
		if where != nil {
			ok, err := expr.EvalBool(where, row)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		hits = append(hits, hit{id: id, row: row.Clone()})
		return len(hits) <= 1
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if len(hits) > 1 {
		return nil, fmt.Errorf("caql: UPDATE matched %d rows; single-row only", len(hits))
	}
	if len(hits) == 0 {
		return &CaQLResult{Affected: 0}, nil
	}
	h := hits[0]
	for _, a := range assigns {
		v, err := a.e.Eval(h.row)
		if err != nil {
			return nil, err
		}
		if v, err = types.Cast(v, sys.Schema.Columns[a.idx].Kind); err != nil {
			return nil, err
		}
		h.row[a.idx] = v
	}
	c.delete(t.XID(), sys.Name, h.id)
	c.insert(t.XID(), sys.Name, h.row)
	return &CaQLResult{Affected: 1}, nil
}

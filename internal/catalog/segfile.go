package catalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hawq/internal/tx"
	"hawq/internal/types"
)

// AddSegFile registers a new data file for (table, segment, segno) with
// zero logical length. Each concurrent writer transaction claims its own
// segno — the swimming lanes of §5.4.
func (c *Catalog) AddSegFile(t *tx.Tx, f SegFile) {
	lens := make([]string, len(f.ColLens))
	for i, l := range f.ColLens {
		lens[i] = strconv.FormatInt(l, 10)
	}
	c.insert(t.XID(), SysAoseg, types.Row{
		types.NewInt64(f.TableOID),
		types.NewInt32(int32(f.SegmentID)),
		types.NewInt32(int32(f.SegNo)),
		types.NewString(f.Path),
		types.NewInt64(f.LogicalLen),
		types.NewInt64(f.Tuples),
		types.NewString(strings.Join(lens, ",")),
	})
}

// UpdateSegFile advances the committed logical length and tuple count of
// a segment file: an MVCC update (delete old version + insert new) so
// concurrent snapshots keep seeing the old length until this transaction
// commits. This is exactly how aborted inserts stay invisible — the
// logical length never moves (§5).
func (c *Catalog) UpdateSegFile(t *tx.Tx, f SegFile) error {
	sys := c.sys[SysAoseg]
	snap := t.Snapshot()
	var oldID uint64
	found := false
	sys.Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == f.TableOID && row[1].Int() == int64(f.SegmentID) && row[2].Int() == int64(f.SegNo) {
			oldID, found = id, true
			return false
		}
		return true
	})
	if !found {
		return fmt.Errorf("catalog: no segfile (table %d, segment %d, segno %d)", f.TableOID, f.SegmentID, f.SegNo)
	}
	c.delete(t.XID(), SysAoseg, oldID)
	c.AddSegFile(t, f)
	return nil
}

// SegFiles lists the files of a table on one segment visible to the
// snapshot, ordered by segno.
func (c *Catalog) SegFiles(snap tx.Snapshot, tableOID int64, segmentID int) []SegFile {
	var out []SegFile
	c.sys[SysAoseg].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == tableOID && row[1].Int() == int64(segmentID) {
			out = append(out, decodeSegFile(row))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].SegNo < out[j].SegNo })
	return out
}

// AllSegFiles lists every file of a table across segments.
func (c *Catalog) AllSegFiles(snap tx.Snapshot, tableOID int64) []SegFile {
	var out []SegFile
	c.sys[SysAoseg].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == tableOID {
			out = append(out, decodeSegFile(row))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].SegmentID != out[j].SegmentID {
			return out[i].SegmentID < out[j].SegmentID
		}
		return out[i].SegNo < out[j].SegNo
	})
	return out
}

// MaxSegNo returns the highest segno in use for (table, segment), or -1.
func (c *Catalog) MaxSegNo(snap tx.Snapshot, tableOID int64, segmentID int) int {
	max := -1
	c.sys[SysAoseg].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == tableOID && row[1].Int() == int64(segmentID) {
			if n := int(row[2].Int()); n > max {
				max = n
			}
		}
		return true
	})
	return max
}

func decodeSegFile(row types.Row) SegFile {
	f := SegFile{
		TableOID:   row[0].Int(),
		SegmentID:  int(row[1].Int()),
		SegNo:      int(row[2].Int()),
		Path:       row[3].Str(),
		LogicalLen: row[4].Int(),
		Tuples:     row[5].Int(),
	}
	if s := row[6].Str(); s != "" {
		for _, part := range strings.Split(s, ",") {
			n, _ := strconv.ParseInt(part, 10, 64)
			f.ColLens = append(f.ColLens, n)
		}
	}
	return f
}

// SwapSegFiles is the compaction catalog swap: it MVCC-deletes the
// listed segnos of (table, segment) and registers the merged file in
// their place, all inside the caller's transaction. Until commit every
// concurrent snapshot keeps seeing the old small files; after commit
// only the merged file is visible; an abort leaves the old set intact.
// Every victim must still be visible — a missing one means a concurrent
// writer got there first and the compaction must be retried.
func (c *Catalog) SwapSegFiles(t *tx.Tx, tableOID int64, segmentID int, oldSegNos []int, merged SegFile) error {
	snap := t.Snapshot()
	want := make(map[int]bool, len(oldSegNos))
	for _, n := range oldSegNos {
		want[n] = true
	}
	var victims []uint64
	c.sys[SysAoseg].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == tableOID && row[1].Int() == int64(segmentID) && want[int(row[2].Int())] {
			victims = append(victims, id)
		}
		return true
	})
	if len(victims) != len(want) {
		return fmt.Errorf("catalog: compaction of table %d segment %d lost a segfile (want %d, found %d)",
			tableOID, segmentID, len(want), len(victims))
	}
	for _, id := range victims {
		c.delete(t.XID(), SysAoseg, id)
	}
	c.AddSegFile(t, merged)
	return nil
}

// SetRelStats stores (replacing) table-level statistics.
func (c *Catalog) SetRelStats(t *tx.Tx, oid int64, s RelStats) {
	snap := t.Snapshot()
	var old []uint64
	c.sys[SysStatRel].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == oid {
			old = append(old, id)
		}
		return true
	})
	for _, id := range old {
		c.delete(t.XID(), SysStatRel, id)
	}
	c.insert(t.XID(), SysStatRel, types.Row{
		types.NewInt64(oid), types.NewInt64(s.Rows), types.NewInt64(s.Bytes),
	})
}

// RelStatsFor returns table statistics; ok is false if never analyzed.
func (c *Catalog) RelStatsFor(snap tx.Snapshot, oid int64) (RelStats, bool) {
	var out RelStats
	found := false
	c.sys[SysStatRel].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == oid {
			out = RelStats{Rows: row[1].Int(), Bytes: row[2].Int()}
			found = true
			return false
		}
		return true
	})
	return out, found
}

// SetColStats stores (replacing) one column's statistics.
func (c *Catalog) SetColStats(t *tx.Tx, oid int64, attnum int, s ColStats) {
	snap := t.Snapshot()
	var old []uint64
	c.sys[SysStatCol].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == oid && row[1].Int() == int64(attnum) {
			old = append(old, id)
		}
		return true
	})
	for _, id := range old {
		c.delete(t.XID(), SysStatCol, id)
	}
	c.insert(t.XID(), SysStatCol, types.Row{
		types.NewInt64(oid),
		types.NewInt32(int32(attnum)),
		types.NewFloat64(s.NDistinct),
		types.NewFloat64(s.NullFrac),
		types.NewBytes(types.EncodeDatum(nil, s.Min)),
		types.NewBytes(types.EncodeDatum(nil, s.Max)),
	})
}

// ColStatsFor returns one column's statistics.
func (c *Catalog) ColStatsFor(snap tx.Snapshot, oid int64, attnum int) (ColStats, bool) {
	var out ColStats
	found := false
	c.sys[SysStatCol].Scan(snap, func(_ uint64, row types.Row) bool {
		if row[0].Int() == oid && row[1].Int() == int64(attnum) {
			out.NDistinct = row[2].Float()
			out.NullFrac = row[3].Float()
			if d, _, err := types.DecodeDatum([]byte(row[4].Str())); err == nil {
				out.Min = d
			}
			if d, _, err := types.DecodeDatum([]byte(row[5].Str())); err == nil {
				out.Max = d
			}
			found = true
			return false
		}
		return true
	})
	return out, found
}

// RegisterSegment records a compute segment in the system catalog.
func (c *Catalog) RegisterSegment(t *tx.Tx, info SegmentInfo) {
	c.insert(t.XID(), SysSegment, types.Row{
		types.NewInt32(int32(info.ID)),
		types.NewString(info.Host),
		types.NewInt32(int32(info.Port)),
		types.NewString(info.Status),
	})
}

// SetSegmentStatus marks a segment "up" or "down" (fault detector, §2.6).
func (c *Catalog) SetSegmentStatus(t *tx.Tx, segmentID int, status string) error {
	snap := t.Snapshot()
	var oldID uint64
	var oldRow types.Row
	found := false
	c.sys[SysSegment].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == int64(segmentID) {
			oldID, oldRow, found = id, row.Clone(), true
			return false
		}
		return true
	})
	if !found {
		return fmt.Errorf("catalog: segment %d not registered", segmentID)
	}
	c.delete(t.XID(), SysSegment, oldID)
	oldRow[3] = types.NewString(status)
	c.insert(t.XID(), SysSegment, oldRow)
	return nil
}

// Segments lists registered segments ordered by ID.
func (c *Catalog) Segments(snap tx.Snapshot) []SegmentInfo {
	var out []SegmentInfo
	c.sys[SysSegment].Scan(snap, func(_ uint64, row types.Row) bool {
		out = append(out, SegmentInfo{
			ID:     int(row[0].Int()),
			Host:   row[1].Str(),
			Port:   int(row[2].Int()),
			Status: row[3].Str(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DropSegFiles MVCC-deletes every segment-file entry of a table
// (TRUNCATE TABLE). It returns the dropped entries so the caller can
// remove the physical files after commit.
func (c *Catalog) DropSegFiles(t *tx.Tx, oid int64) []SegFile {
	snap := t.Snapshot()
	type victim struct {
		id uint64
		sf SegFile
	}
	var victims []victim
	c.sys[SysAoseg].Scan(snap, func(id uint64, row types.Row) bool {
		if row[0].Int() == oid {
			victims = append(victims, victim{id: id, sf: decodeSegFile(row)})
		}
		return true
	})
	out := make([]SegFile, 0, len(victims))
	for _, v := range victims {
		c.delete(t.XID(), SysAoseg, v.id)
		out = append(out, v.sf)
	}
	return out
}

package catalog

import (
	"strings"
	"testing"
	"time"

	"hawq/internal/tx"
)

func TestTaskCRUDAndMVCC(t *testing.T) {
	c, m := newEnv()
	tr := m.Begin(tx.ReadCommitted)
	d := TaskDesc{
		Name:     "Nightly_Stats",
		Kind:     TaskKindStatement,
		Target:   "ANALYZE",
		Interval: 12 * time.Hour,
		NextRun:  42,
	}
	if err := c.CreateTask(tr, d); err != nil {
		t.Fatal(err)
	}
	// Names are lowercased and duplicates rejected.
	if err := c.CreateTask(tr, d); err == nil {
		t.Fatal("duplicate CreateTask succeeded")
	}
	got, err := c.LookupTask(tr.Snapshot(), "NIGHTLY_stats")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "nightly_stats" || got.State != TaskQueued || got.Interval != 12*time.Hour || got.NextRun != 42 {
		t.Errorf("task = %+v", got)
	}
	// Invisible to a concurrent snapshot until commit.
	other := m.Begin(tx.ReadCommitted)
	if _, err := c.LookupTask(other.Snapshot(), "nightly_stats"); err == nil {
		t.Error("uncommitted task visible to concurrent txn")
	}
	other.Abort()
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}

	// Claim transition is an MVCC update.
	tr = m.Begin(tx.ReadCommitted)
	got.State = TaskClaimed
	got.Owner = "qd-1"
	got.LeaseExpiry = 99
	if err := c.UpdateTask(tr, *got); err != nil {
		t.Fatal(err)
	}
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	tr = m.Begin(tx.ReadCommitted)
	got, err = c.LookupTask(tr.Snapshot(), "nightly_stats")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != TaskClaimed || got.Owner != "qd-1" || got.LeaseExpiry != 99 {
		t.Errorf("claimed task = %+v", got)
	}

	// Drop removes it; a second drop errors.
	if err := c.DropTask(tr, "nightly_stats"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTask(tr, "nightly_stats"); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("double drop: %v", err)
	}
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	tr = m.Begin(tx.ReadCommitted)
	if got := c.ListTasks(tr.Snapshot()); len(got) != 0 {
		t.Errorf("tasks after drop: %+v", got)
	}
	tr.Abort()
}

func TestModCountDeltasAndReset(t *testing.T) {
	c, m := newEnv()

	// Two concurrent transactions bump the same table without
	// conflicting: each inserts its own delta row.
	t1 := m.Begin(tx.ReadCommitted)
	t2 := m.Begin(tx.ReadCommitted)
	c.BumpModCount(t1, 7, 100)
	c.BumpModCount(t2, 7, 50)
	c.BumpModCount(t2, 9, 5)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// An aborted bump leaves no churn.
	t3 := m.Begin(tx.ReadCommitted)
	c.BumpModCount(t3, 7, 999)
	t3.Abort()

	tr := m.Begin(tx.ReadCommitted)
	if got := c.ModCountFor(tr.Snapshot(), 7); got != 150 {
		t.Errorf("ModCountFor(7) = %d, want 150", got)
	}
	if got := c.ModCountFor(tr.Snapshot(), 9); got != 5 {
		t.Errorf("ModCountFor(9) = %d, want 5", got)
	}

	// ANALYZE resets one table's counters, leaving the other's.
	c.ResetModCount(tr, 7)
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	tr = m.Begin(tx.ReadCommitted)
	defer tr.Abort()
	if got := c.ModCountFor(tr.Snapshot(), 7); got != 0 {
		t.Errorf("ModCountFor(7) after reset = %d, want 0", got)
	}
	if got := c.ModCountFor(tr.Snapshot(), 9); got != 5 {
		t.Errorf("ModCountFor(9) after reset of 7 = %d, want 5", got)
	}
}

func TestTaskRowsReplicateThroughWALRecords(t *testing.T) {
	c, m := newEnv()
	replica := New(nil)
	sub, backlog := c.WAL().Subscribe(func(r tx.Record) {
		if err := replica.ApplyRecord(r); err != nil {
			t.Errorf("replica apply: %v", err)
		}
	})
	defer c.WAL().Unsubscribe(sub)
	if len(backlog) != 0 {
		t.Fatalf("unexpected backlog: %d records", len(backlog))
	}

	tr := m.Begin(tx.ReadCommitted)
	if err := c.CreateTask(tr, TaskDesc{Name: "rollup", Kind: TaskKindStatement, Target: "SELECT 1", Interval: time.Minute}); err != nil {
		t.Fatal(err)
	}
	c.BumpModCount(tr, 3, 17)
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}

	// The replica sees the committed task row and churn through record
	// replay alone — the property standby catalogs and crash recovery
	// rely on.
	check := m.Begin(tx.ReadCommitted)
	defer check.Abort()
	d, err := replica.LookupTask(check.Snapshot(), "rollup")
	if err != nil {
		t.Fatalf("replica task: %v", err)
	}
	if d.Interval != time.Minute || d.State != TaskQueued {
		t.Errorf("replica task = %+v", d)
	}
	if got := replica.ModCountFor(check.Snapshot(), 3); got != 17 {
		t.Errorf("replica ModCountFor(3) = %d, want 17", got)
	}
}

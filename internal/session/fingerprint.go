package session

import (
	"fmt"
	"strconv"
	"strings"
)

// Fingerprint derives the plan-cache key for a statement. The canonical
// SQL rendering normalizes whitespace, case and parenthesization, so
// textually different spellings of the same statement share an entry.
// Everything else that changes the emitted plan but is not covered by
// the catalog version must be folded in here: cluster size and the
// planner ablation flags today.
//
// The catalog version is deliberately NOT part of the key: lookups carry
// it separately so a version change invalidates (replaces) the entry
// instead of leaking one entry per version.
func Fingerprint(canonicalSQL string, numSegments int, flags ...bool) string {
	var b strings.Builder
	b.Grow(len(canonicalSQL) + 16)
	b.WriteString(canonicalSQL)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(numSegments))
	for _, f := range flags {
		if f {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ValidateArgCount checks an EXECUTE argument list against the prepared
// statement's placeholder count.
func (p *Prepared) ValidateArgCount(n int) error {
	if n != p.NumParams {
		return fmt.Errorf("session: prepared statement %q requires %d parameters, got %d", p.Name, p.NumParams, n)
	}
	return nil
}

// Package session implements the concurrent-serving layer's shared
// state: prepared-statement registries and the bounded,
// invalidation-correct plan cache that lets the master parse and plan a
// statement once and dispatch it many times (the compile-once /
// execute-many path that dominates interactive latency).
//
// Correctness of the cache rests on the catalog version captured inside
// MVCC snapshots: tx.Manager bumps its catalog version in the same
// critical section that flips a committing transaction's CLOG status,
// and tx.Snapshot carries the version read under that same mutex. Two
// snapshots with equal CatVer therefore see identical plan-relevant
// catalog contents, so a plan built under a version may be reused by any
// snapshot carrying the same version.
package session

import (
	"fmt"
	"strings"
	"sync"

	"hawq/internal/obs"
	"hawq/internal/sqlparser"
)

// Prepared is one prepared statement: the parsed syntax tree plus
// metadata the EXECUTE path needs. It is immutable after creation.
type Prepared struct {
	Name string
	// Stmt is the parsed inner statement (never re-parsed on EXECUTE).
	Stmt sqlparser.Statement
	// SQL is the canonical rendering, used for fingerprinting and logs.
	SQL string
	// NumParams is the number of $n placeholders.
	NumParams int
}

// Registry holds a session's prepared statements. It is safe for
// concurrent use; the wire server may cancel a session from another
// goroutine while it executes.
type Registry struct {
	mu    sync.Mutex
	stmts map[string]*Prepared
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stmts: map[string]*Prepared{}}
}

// Put registers a prepared statement; duplicate names are an error, as
// in PostgreSQL.
func (r *Registry) Put(p *Prepared) error {
	name := strings.ToLower(p.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.stmts[name]; ok {
		return fmt.Errorf("session: prepared statement %q already exists", p.Name)
	}
	r.stmts[name] = p
	return nil
}

// Get resolves a prepared statement by name.
func (r *Registry) Get(name string) (*Prepared, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.stmts[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("session: prepared statement %q does not exist", name)
	}
	return p, nil
}

// Remove deallocates one statement (error when absent).
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := r.stmts[key]; !ok {
		return fmt.Errorf("session: prepared statement %q does not exist", name)
	}
	delete(r.stmts, key)
	return nil
}

// Clear deallocates everything (DEALLOCATE ALL, session close).
func (r *Registry) Clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.stmts)
}

// Len returns the number of registered statements.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.stmts)
}

// Plan-cache counters in the process-wide obs registry, resolved once so
// the hot path pays a single atomic add.
var (
	cacheHits          = obs.GetCounter("plan_cache.hits")
	cacheMisses        = obs.GetCounter("plan_cache.misses")
	cacheInvalidations = obs.GetCounter("plan_cache.invalidations")
	cacheEvictions     = obs.GetCounter("plan_cache.evictions")
	cacheStores        = obs.GetCounter("plan_cache.stores")
)

package session

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheHitMissInvalidate(t *testing.T) {
	c := NewPlanCache(4)
	if _, ok := c.Get("q1", 0); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("q1", 0, []byte("plan-a"))
	enc, ok := c.Get("q1", 0)
	if !ok || string(enc.([]byte)) != "plan-a" {
		t.Fatalf("want hit plan-a, got %q ok=%v", enc, ok)
	}
	// Same key under a newer catalog version: stale entry is invalidated.
	if _, ok := c.Get("q1", 1); ok {
		t.Fatal("stale entry served under newer version")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Size != 0 {
		t.Fatalf("stale entry still cached (size %d)", st.Size)
	}
	// Re-planned under the new version.
	c.Put("q1", 1, []byte("plan-b"))
	if enc, ok := c.Get("q1", 1); !ok || string(enc.([]byte)) != "plan-b" {
		t.Fatalf("want plan-b, got %q ok=%v", enc, ok)
	}
}

func TestPlanCacheOldSnapshotDoesNotClobberNewer(t *testing.T) {
	c := NewPlanCache(4)
	c.Put("q", 5, []byte("new"))
	// A serializable transaction with an old snapshot misses but must not
	// delete or overwrite the newer entry.
	if _, ok := c.Get("q", 3); ok {
		t.Fatal("old snapshot must not hit a newer entry")
	}
	c.Put("q", 3, []byte("old"))
	if enc, ok := c.Get("q", 5); !ok || string(enc.([]byte)) != "new" {
		t.Fatalf("newer entry lost: %q ok=%v", enc, ok)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("a", 0, []byte("a"))
	c.Put("b", 0, []byte("b"))
	c.Get("a", 0) // a most recent
	c.Put("c", 0, []byte("c"))
	if _, ok := c.Get("b", 0); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Get("a", 0); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestPlanCacheResizeAndDisable(t *testing.T) {
	c := NewPlanCache(8)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("q%d", i), 0, []byte{byte(i)})
	}
	c.Resize(2)
	if st := c.Stats(); st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("after resize: %+v", st)
	}
	c.Resize(0)
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("disable should flush, size=%d", st.Size)
	}
	c.Put("x", 0, []byte("x"))
	if _, ok := c.Get("x", 0); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", i%24)
				ver := uint64(i % 3)
				if enc, ok := c.Get(key, ver); ok && len(enc.([]byte)) == 0 {
					t.Error("hit with empty payload")
					return
				}
				c.Put(key, ver, []byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Wait()
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	p := &Prepared{Name: "Q1", SQL: "SELECT 1", NumParams: 2}
	if err := r.Put(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(&Prepared{Name: "q1"}); err == nil {
		t.Fatal("duplicate name accepted (case-insensitive)")
	}
	got, err := r.Get("q1")
	if err != nil || got.SQL != "SELECT 1" {
		t.Fatalf("get: %v %+v", err, got)
	}
	if err := got.ValidateArgCount(1); err == nil {
		t.Fatal("wrong arg count accepted")
	}
	if err := got.ValidateArgCount(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("nope"); err == nil {
		t.Fatal("removing unknown statement should error")
	}
	if err := r.Remove("Q1"); err != nil {
		t.Fatal(err)
	}
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("clear left statements behind")
	}
}

func TestFingerprintDistinguishesFlagsAndSegments(t *testing.T) {
	a := Fingerprint("SELECT 1", 4, false, false)
	b := Fingerprint("SELECT 1", 8, false, false)
	c := Fingerprint("SELECT 1", 4, true, false)
	if a == b || a == c || b == c {
		t.Fatalf("fingerprints collide: %q %q %q", a, b, c)
	}
}

package session

import (
	"container/list"
	"sync"
)

// PlanCache is a bounded LRU of plans keyed by statement fingerprint.
// Every entry records the catalog version it was planned under; a
// lookup whose snapshot carries a different version treats the entry as
// invalid. Values are opaque to the cache; by contract callers store
// pristine plans (parameters unbound, no per-statement resource stamps)
// and never mutate a stored value — every hit takes a private clone, so
// one cached plan serves any number of concurrent sessions.
type PlanCache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *cacheEntry
	byK map[string]*list.Element

	hits, misses, invalidations, evictions, stores int64
}

type cacheEntry struct {
	key string
	ver uint64
	val any
}

// NewPlanCache creates a cache bounded to capacity entries; capacity
// <= 0 disables caching (Get always misses, Put is a no-op).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{cap: capacity, lru: list.New(), byK: map[string]*list.Element{}}
}

// Get returns the encoded plan for key if present and planned under
// catalog version ver. An entry under an older version is deleted and
// counted as an invalidation; an entry under a newer version (a reader
// with an old serializable snapshot) is left in place and reported as a
// plain miss.
func (c *PlanCache) Get(key string, ver uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.misses++
		cacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.ver != ver {
		if e.ver < ver {
			c.removeLocked(el)
			c.invalidations++
			cacheInvalidations.Inc()
		}
		c.misses++
		cacheMisses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	cacheHits.Inc()
	return e.val, true
}

// Put stores the plan for key under catalog version ver, evicting the
// least recently used entry when full. It never replaces an entry
// planned under a newer version.
func (c *PlanCache) Put(key string, ver uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.byK[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.ver > ver {
			return
		}
		e.ver, e.val = ver, val
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		c.removeLocked(c.lru.Back())
		c.evictions++
		cacheEvictions.Inc()
	}
	c.byK[key] = c.lru.PushFront(&cacheEntry{key: key, ver: ver, val: val})
	c.stores++
	cacheStores.Inc()
}

func (c *PlanCache) removeLocked(el *list.Element) {
	e := c.lru.Remove(el).(*cacheEntry)
	delete(c.byK, e.key)
}

// Resize changes the capacity (the plan_cache_size setting), evicting
// down to the new bound; 0 disables and flushes.
func (c *PlanCache) Resize(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	for c.lru.Len() > c.cap && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
		c.evictions++
		cacheEvictions.Inc()
	}
}

// Flush drops every entry (promotion installs a fresh transaction
// manager whose catalog version restarts, so cross-epoch entries must
// not survive).
func (c *PlanCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	clear(c.byK)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Size, Capacity                                 int
	Hits, Misses, Invalidations, Evictions, Stores int64
}

// Stats returns current sizes and counters (SHOW plan_cache and tests).
func (c *PlanCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Size: c.lru.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations,
		Evictions: c.evictions, Stores: c.stores,
	}
}

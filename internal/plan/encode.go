package plan

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"hawq/internal/compress"
	"hawq/internal/expr"
)

func init() {
	// Plan nodes.
	gob.Register(&Scan{})
	gob.Register(&ExternalScan{})
	gob.Register(&Append{})
	gob.Register(&Select{})
	gob.Register(&Project{})
	gob.Register(&HashJoin{})
	gob.Register(&NestLoopJoin{})
	gob.Register(&HashAgg{})
	gob.Register(&Sort{})
	gob.Register(&Limit{})
	gob.Register(&Distinct{})
	gob.Register(&Values{})
	gob.Register(&Insert{})
	gob.Register(&Motion{})
	gob.Register(&MotionRecv{})
	gob.Register(&SenderHint{})
	// Expressions.
	gob.Register(&expr.ColRef{})
	gob.Register(&expr.Const{})
	gob.Register(&expr.BinOp{})
	gob.Register(&expr.Not{})
	gob.Register(&expr.Neg{})
	gob.Register(&expr.IsNull{})
	gob.Register(&expr.Like{})
	gob.Register(&expr.InList{})
	gob.Register(&expr.Between{})
	gob.Register(&expr.Case{})
	gob.Register(&expr.Cast{})
	gob.Register(&expr.FuncCall{})
	gob.Register(&expr.Param{})
}

// planCodec compresses serialized plans; complex plans reach megabytes,
// so HAWQ compresses them before dispatch (§3.1).
const planCodec = "quicklz"

// Encode serializes a self-described plan for dispatch to segments:
// gob-encoded, then compressed.
func Encode(p *Plan) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("plan: encode: %w", err)
	}
	c, err := compress.Lookup(planCodec)
	if err != nil {
		return nil, err
	}
	return c.Compress(nil, buf.Bytes()), nil
}

// Decode reverses Encode and rebinds the function implementations that
// are not shipped (they live in every segment's read-only bootstrap
// store of native metadata, §3.1).
func Decode(data []byte) (*Plan, error) {
	c, err := compress.Lookup(planCodec)
	if err != nil {
		return nil, err
	}
	raw, err := c.Decompress(nil, data)
	if err != nil {
		return nil, fmt.Errorf("plan: decompress: %w", err)
	}
	var p Plan
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	var rebindErr error
	p.Walk(func(n Node) {
		for _, e := range NodeExprs(n) {
			if err := expr.RebindFuncs(e); err != nil && rebindErr == nil {
				rebindErr = err
			}
		}
	})
	if rebindErr != nil {
		return nil, rebindErr
	}
	return &p, nil
}

// NodeExprs returns the expressions held by a node, so callers (the
// executor, clock binding) can walk a plan's scalar surface without
// knowing every node shape.
func NodeExprs(n Node) []expr.Expr {
	switch v := n.(type) {
	case *Scan:
		return []expr.Expr{v.Filter}
	case *ExternalScan:
		return []expr.Expr{v.Filter}
	case *Select:
		return []expr.Expr{v.Pred}
	case *Project:
		return v.Exprs
	case *HashJoin:
		return []expr.Expr{v.ExtraPred}
	case *NestLoopJoin:
		return []expr.Expr{v.Pred}
	case *HashAgg:
		out := append([]expr.Expr{}, v.Groups...)
		for _, a := range v.Aggs {
			out = append(out, a.Arg)
		}
		return out
	}
	return nil
}

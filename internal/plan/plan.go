// Package plan defines the physical query plan: the tree of relational
// operators plus the parallel motion operators of §3, the slicing of a
// plan at motion boundaries (§2.4), and the self-described plan
// serialization used for metadata dispatch (§3.1) — plans carry every
// piece of catalog metadata their execution needs, so stateless segments
// never consult the master's catalog.
package plan

import (
	"fmt"
	"strings"

	"hawq/internal/catalog"
	"hawq/internal/expr"
	"hawq/internal/types"
)

// Node is a physical plan operator.
type Node interface {
	// OutSchema is the schema of rows the operator produces.
	OutSchema() *types.Schema
	// Children returns input operators.
	Children() []Node
	// Label renders the operator for EXPLAIN.
	Label() string
}

// MotionType enumerates the three parallel motion operators of §3.
type MotionType uint8

// Motion types.
const (
	// GatherMotion sends every input tuple to a single receiver
	// (usually the QD).
	GatherMotion MotionType = iota
	// BroadcastMotion replicates every input tuple to all segments.
	BroadcastMotion
	// RedistributeMotion hashes tuples to segments on a set of columns.
	RedistributeMotion
)

var motionNames = [...]string{"Gather Motion", "Broadcast Motion", "Redistribute Motion"}

// String returns the display name used in EXPLAIN output.
func (m MotionType) String() string { return motionNames[m] }

// JoinKind covers the join semantics the executor implements.
type JoinKind uint8

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	SemiJoin // EXISTS / IN
	AntiJoin // NOT EXISTS / NOT IN
)

var joinKindNames = [...]string{"Inner", "Left", "Semi", "Anti"}

// String returns the display name used in EXPLAIN output.
func (k JoinKind) String() string { return joinKindNames[k] }

// AggPhase distinguishes the two-phase aggregation stages.
type AggPhase uint8

// Aggregation phases.
const (
	// AggSingle computes final results in one pass.
	AggSingle AggPhase = iota
	// AggPartial computes per-segment partial states.
	AggPartial
	// AggFinal merges partial states after a motion.
	AggFinal
)

// RuntimeFilterSpec declares one runtime bloom filter a hash join's
// build side publishes: after the build input is fully consumed, the
// join contributes a bloom filter over the build rows' BuildKey column
// to the query's filter hub under ID. Probe-side scans carrying a
// RuntimeFilterTarget with the same ID consult it (§3's partial
// aggressive materialization in spirit: shed rows as early as
// possible). The planner only attaches specs to Inner and Semi joins —
// Left/Anti joins must still see unmatched probe rows.
type RuntimeFilterSpec struct {
	// ID identifies the filter within the query.
	ID int32
	// BuildKey is the build (right) input column the filter summarizes.
	BuildKey int
}

// RuntimeFilterTarget wires one runtime bloom filter into a scan: rows
// whose Col value cannot be in filter ID's build side are dropped
// before decode and before any motion. Application is best-effort —
// pages scanned before the filter is published pass unfiltered.
type RuntimeFilterTarget struct {
	// ID identifies the filter within the query.
	ID int32
	// Col is the scan output column (projection order) the filter tests.
	Col int
}

// Scan reads the committed rows of one (non-partitioned) table. The node
// is self-described: it embeds the table descriptor and the visible
// segment files of every segment, so a QE needs no catalog access. Each
// QE scans only the files whose SegmentID matches its own.
type Scan struct {
	Table *catalog.TableDesc
	// Proj are the table column indexes produced, in output order.
	Proj []int
	// Filter is evaluated over the projected row; nil means no filter.
	Filter expr.Expr
	// SegFiles lists every visible file of the table (all segments).
	SegFiles []catalog.SegFile
	Schema   *types.Schema
	// RuntimeFilters lists the runtime bloom filters this scan consults
	// while reading (probe side of hash joins upstream).
	RuntimeFilters []RuntimeFilterTarget
}

// OutSchema implements Node.
func (s *Scan) OutSchema() *types.Schema { return s.Schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Label implements Node.
func (s *Scan) Label() string {
	l := fmt.Sprintf("Table Scan (%s)", s.Table.Name)
	if s.Filter != nil {
		l += fmt.Sprintf(" filter: %s", s.Filter)
	}
	return l
}

// ExternalScan reads an external table through PXF (§6). Fragments are
// assigned to QEs by the executor's PXF binding with locality awareness.
type ExternalScan struct {
	Table  *catalog.TableDesc
	Proj   []int
	Filter expr.Expr
	// PushedFilter describes the filter forwarded to the connector via
	// the filter-pushdown API (§6.3); it is advisory — Filter is still
	// applied, so connectors may ignore it.
	PushedFilter string
	Schema       *types.Schema
	// NumSegments is the gang size fragments are distributed over.
	NumSegments int
}

// OutSchema implements Node.
func (s *ExternalScan) OutSchema() *types.Schema { return s.Schema }

// Children implements Node.
func (s *ExternalScan) Children() []Node { return nil }

// Label implements Node.
func (s *ExternalScan) Label() string {
	return fmt.Sprintf("External Scan (%s via %s)", s.Table.Name, s.Table.Location)
}

// Append concatenates its children (partitioned table scans after
// partition elimination, §2.3).
type Append struct {
	Inputs []Node
	Schema *types.Schema
}

// OutSchema implements Node.
func (a *Append) OutSchema() *types.Schema { return a.Schema }

// Children implements Node.
func (a *Append) Children() []Node { return a.Inputs }

// Label implements Node.
func (a *Append) Label() string { return fmt.Sprintf("Append (%d parts)", len(a.Inputs)) }

// Select filters rows by a predicate.
type Select struct {
	Input Node
	Pred  expr.Expr
}

// OutSchema implements Node.
func (s *Select) OutSchema() *types.Schema { return s.Input.OutSchema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// Label implements Node.
func (s *Select) Label() string { return fmt.Sprintf("Filter (%s)", s.Pred) }

// Project computes expressions over input rows.
type Project struct {
	Input  Node
	Exprs  []expr.Expr
	Schema *types.Schema
}

// OutSchema implements Node.
func (p *Project) OutSchema() *types.Schema { return p.Schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Label implements Node.
func (p *Project) Label() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project (" + strings.Join(parts, ", ") + ")"
}

// HashJoin joins two inputs on equality keys, building a hash table on
// the right (build) side. ExtraPred, if set, is evaluated over the
// concatenated row for residual non-equi conditions.
type HashJoin struct {
	Kind        JoinKind
	Left, Right Node
	// LeftKeys/RightKeys are column indexes into each input's schema.
	LeftKeys, RightKeys []int
	ExtraPred           expr.Expr
	Schema              *types.Schema
	// RuntimeFilters lists the bloom filters this join's build (right)
	// side publishes for probe-side scans (Inner/Semi joins only).
	RuntimeFilters []RuntimeFilterSpec
}

// OutSchema implements Node.
func (j *HashJoin) OutSchema() *types.Schema { return j.Schema }

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *HashJoin) Label() string {
	return fmt.Sprintf("Hash Join (%s) on %v=%v", j.Kind, j.LeftKeys, j.RightKeys)
}

// NestLoopJoin joins with an arbitrary predicate (non-equi joins, often
// paired with a broadcast motion, §3).
type NestLoopJoin struct {
	Kind        JoinKind
	Left, Right Node
	Pred        expr.Expr
	Schema      *types.Schema
}

// OutSchema implements Node.
func (j *NestLoopJoin) OutSchema() *types.Schema { return j.Schema }

// Children implements Node.
func (j *NestLoopJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *NestLoopJoin) Label() string { return fmt.Sprintf("Nested Loop (%s)", j.Kind) }

// HashAgg groups and aggregates. For AggPartial/AggFinal pairs the
// planner lowers AVG into SUM+COUNT and rewrites the final phase's
// aggregate arguments to reference the partial columns.
type HashAgg struct {
	Input  Node
	Phase  AggPhase
	Groups []expr.Expr
	Aggs   []expr.AggSpec
	Schema *types.Schema
}

// OutSchema implements Node.
func (a *HashAgg) OutSchema() *types.Schema { return a.Schema }

// Children implements Node.
func (a *HashAgg) Children() []Node { return []Node{a.Input} }

// Label implements Node.
func (a *HashAgg) Label() string {
	phase := ""
	switch a.Phase {
	case AggPartial:
		phase = " (partial)"
	case AggFinal:
		phase = " (final)"
	}
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("HashAggregate%s [%s]", phase, strings.Join(parts, ", "))
}

// OrderKey is one sort key.
type OrderKey struct {
	Col  int
	Desc bool
}

// Sort orders its input; large inputs spill to segment-local disk (§2.6).
type Sort struct {
	Input Node
	Keys  []OrderKey
}

// OutSchema implements Node.
func (s *Sort) OutSchema() *types.Schema { return s.Input.OutSchema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Label implements Node.
func (s *Sort) Label() string { return fmt.Sprintf("Sort %v", s.Keys) }

// Limit returns at most N rows after skipping Offset. The executor
// propagates satisfaction upstream with the interconnect STOP message.
type Limit struct {
	Input  Node
	N      int64
	Offset int64
}

// OutSchema implements Node.
func (l *Limit) OutSchema() *types.Schema { return l.Input.OutSchema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit %d", l.N) }

// Distinct removes duplicate rows (SELECT DISTINCT).
type Distinct struct {
	Input Node
}

// OutSchema implements Node.
func (d *Distinct) OutSchema() *types.Schema { return d.Input.OutSchema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Label implements Node.
func (d *Distinct) Label() string { return "Unique" }

// Values produces literal rows (INSERT ... VALUES, SELECT without FROM).
type Values struct {
	Rows   []types.Row
	Schema *types.Schema
}

// OutSchema implements Node.
func (v *Values) OutSchema() *types.Schema { return v.Schema }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// Label implements Node.
func (v *Values) Label() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// InsertTarget is one table an Insert may write: the table itself, or
// one partition of a partitioned parent.
type InsertTarget struct {
	Table *catalog.TableDesc
	// Files maps segment ID -> the lane file to append to (carrying the
	// pre-insert logical lengths, which the master needs for rollback
	// truncation).
	Files map[int]catalog.SegFile
}

// Insert appends input rows to the target table's lane on the executing
// segment and emits one row with the insert count. The SegNo lane and the
// per-segment file paths were assigned by the master (swimming lanes,
// §5.4); the piggybacked metadata changes flow back with the results.
// Multiple targets mean a partitioned parent: each row is routed to the
// partition whose bounds contain its partition-column value.
type Insert struct {
	Targets []InsertTarget
	Input   Node
	// SegNo is the lane this transaction writes.
	SegNo  int
	Schema *types.Schema
}

// OutSchema implements Node.
func (i *Insert) OutSchema() *types.Schema { return i.Schema }

// Children implements Node.
func (i *Insert) Children() []Node { return []Node{i.Input} }

// Label implements Node.
func (i *Insert) Label() string {
	return fmt.Sprintf("Insert (%s, lane %d, %d targets)", i.Targets[0].Table.Name, i.SegNo, len(i.Targets))
}

// RouteTarget picks the target index for a row (partition routing). For
// single-target inserts it is always 0.
func (i *Insert) RouteTarget(row types.Row) (int, error) {
	if len(i.Targets) == 1 {
		return 0, nil
	}
	parent := i.Targets[0].Table
	for ti := 1; ti < len(i.Targets); ti++ {
		t := i.Targets[ti].Table
		v := row[t.PartCol]
		switch t.PartKind {
		case PartRangeKind:
			if !t.RangeLo.IsNull() && types.Compare(v, t.RangeLo) >= 0 && types.Compare(v, t.RangeHi) < 0 {
				return ti, nil
			}
		case PartListKind:
			for _, lv := range t.ListValues {
				if types.Equal(lv, v) {
					return ti, nil
				}
			}
		}
	}
	return 0, fmt.Errorf("plan: no partition of %s accepts value %s", parent.Name, row[parent.PartCol])
}

// Partition kind aliases (avoid importing catalog constants at call
// sites).
const (
	PartRangeKind = catalog.PartRange
	PartListKind  = catalog.PartList
)

// Motion is the sending half of a data movement (§3). Slicing replaces
// the subtree above it with a MotionRecv carrying the same ID.
type Motion struct {
	ID    int16
	Type  MotionType
	Input Node
	// HashCols are output-column indexes for RedistributeMotion.
	HashCols []int
	// Receivers lists receiving segment IDs (or -1 for the QD).
	Receivers []int
}

// OutSchema implements Node.
func (m *Motion) OutSchema() *types.Schema { return m.Input.OutSchema() }

// Children implements Node.
func (m *Motion) Children() []Node { return []Node{m.Input} }

// Label implements Node.
func (m *Motion) Label() string {
	l := m.Type.String()
	if m.Type == RedistributeMotion {
		l += fmt.Sprintf(" (%v)", m.HashCols)
	}
	return l
}

// MotionRecv is the receiving half of a motion.
type MotionRecv struct {
	ID int16
	// Senders lists sending segment IDs (or -1 for the QD).
	Senders []int
	// Merge, when non-nil, merges pre-sorted sender streams to preserve
	// a global order (gather of sorted slices).
	Merge  []OrderKey
	Schema *types.Schema
}

// OutSchema implements Node.
func (m *MotionRecv) OutSchema() *types.Schema { return m.Schema }

// Children implements Node.
func (m *MotionRecv) Children() []Node { return nil }

// Label implements Node.
func (m *MotionRecv) Label() string { return fmt.Sprintf("Motion Recv m%d", m.ID) }

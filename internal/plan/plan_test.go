package plan

import (
	"strings"
	"testing"

	"hawq/internal/catalog"
	"hawq/internal/expr"
	"hawq/internal/types"
)

func scanNode() *Scan {
	schema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt64},
		types.Column{Name: "v", Kind: types.KindString},
	)
	f, _ := expr.NewFuncCall("length", []expr.Expr{&expr.ColRef{Idx: 1, K: types.KindString, Name: "v"}})
	return &Scan{
		Table: &catalog.TableDesc{
			OID: 99, Name: "t", Schema: schema,
			Dist:    catalog.DistPolicy{Cols: []int{0}},
			Storage: catalog.StorageSpec{Orientation: catalog.OrientRow, Codec: "none"},
		},
		Proj:   []int{0, 1},
		Filter: expr.NewBinOp(expr.OpGt, f, expr.NewConst(types.NewInt64(2))),
		SegFiles: []catalog.SegFile{
			{TableOID: 99, SegmentID: 0, SegNo: 1, Path: "/d/99/0/1", LogicalLen: 100},
			{TableOID: 99, SegmentID: 1, SegNo: 1, Path: "/d/99/1/1", LogicalLen: 50},
		},
		Schema: schema,
	}
}

// buildTwoSliceTree: Gather(HashAgg(Scan)).
func buildTwoSliceTree() Node {
	scan := scanNode()
	agg := &HashAgg{
		Input:  scan,
		Phase:  AggSingle,
		Groups: []expr.Expr{&expr.ColRef{Idx: 0, K: types.KindInt64}},
		Aggs:   []expr.AggSpec{{Kind: expr.AggCountStar}},
		Schema: types.NewSchema(
			types.Column{Name: "k", Kind: types.KindInt64},
			types.Column{Name: "count", Kind: types.KindInt64},
		),
	}
	return &Motion{ID: 1, Type: GatherMotion, Input: agg}
}

func TestBuildSlices(t *testing.T) {
	p := Build(buildTwoSliceTree(), []int{QDSegment}, []int{0, 1}, 2)
	if len(p.Slices) != 2 {
		t.Fatalf("slices = %d", len(p.Slices))
	}
	top := p.Slices[0]
	if !top.OnQD() {
		t.Error("top slice must run on QD")
	}
	recv, ok := top.Root.(*MotionRecv)
	if !ok {
		t.Fatalf("top root = %T", top.Root)
	}
	if recv.ID != 1 || len(recv.Senders) != 2 {
		t.Errorf("recv = %+v", recv)
	}
	child := p.Slices[1]
	m, ok := child.Root.(*Motion)
	if !ok {
		t.Fatalf("child root = %T", child.Root)
	}
	if len(m.Receivers) != 1 || m.Receivers[0] != QDSegment {
		t.Errorf("receivers = %v", m.Receivers)
	}
	if len(child.Segments) != 2 {
		t.Errorf("child segments = %v", child.Segments)
	}
}

func TestBuildDirectDispatchHint(t *testing.T) {
	scan := scanNode()
	tree := &Motion{ID: 1, Type: GatherMotion, Input: &SenderHint{Input: scan, Segments: []int{1}}}
	p := Build(tree, []int{QDSegment}, []int{0, 1, 2}, 3)
	if got := p.Slices[1].Segments; len(got) != 1 || got[0] != 1 {
		t.Errorf("direct dispatch segments = %v", got)
	}
	// The hint itself must be unwrapped.
	if _, ok := p.Slices[1].Root.(*Motion).Input.(*SenderHint); ok {
		t.Error("SenderHint not unwrapped")
	}
}

func TestThreeSlicePlan(t *testing.T) {
	// Gather(Agg(Join(Scan, Redistribute(Scan)))) -- the Figure 3(b) shape.
	left := scanNode()
	right := scanNode()
	redist := &Motion{ID: 2, Type: RedistributeMotion, Input: right, HashCols: []int{0}}
	join := &HashJoin{
		Kind: InnerJoin, Left: left, Right: redist,
		LeftKeys: []int{0}, RightKeys: []int{0},
		Schema: left.Schema.Concat(right.Schema),
	}
	top := &Motion{ID: 1, Type: GatherMotion, Input: join}
	p := Build(top, []int{QDSegment}, []int{0, 1}, 2)
	if len(p.Slices) != 3 {
		t.Fatalf("slices = %d", len(p.Slices))
	}
	// The join slice must read the redistribute through a MotionRecv.
	joinSlice := p.Slices[1]
	hj := joinSlice.Root.(*Motion).Input.(*HashJoin)
	if _, ok := hj.Right.(*MotionRecv); !ok {
		t.Errorf("join right = %T, want MotionRecv", hj.Right)
	}
	// Redistribute's receivers are the join slice's segments.
	redistSlice := p.Slices[2]
	if got := redistSlice.Root.(*Motion).Receivers; len(got) != 2 {
		t.Errorf("redistribute receivers = %v", got)
	}
	out := p.Explain()
	for _, want := range []string{"Slice 0", "Slice 2", "Gather Motion", "Redistribute Motion", "Hash Join", "Table Scan (t)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Build(buildTwoSliceTree(), []int{QDSegment}, []int{0, 1}, 2)
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Slices) != 2 || got.NumSegments != 2 {
		t.Fatalf("decoded plan = %+v", got)
	}
	scan := got.Slices[1].Root.(*Motion).Input.(*HashAgg).Input.(*Scan)
	if scan.Table.Name != "t" || len(scan.SegFiles) != 2 || scan.SegFiles[0].LogicalLen != 100 {
		t.Errorf("self-described metadata lost: %+v", scan)
	}
	// The rebound function must evaluate.
	v, err := scan.Filter.Eval(types.Row{types.NewInt64(1), types.NewString("abc")})
	if err != nil {
		t.Fatalf("filter eval after decode: %v", err)
	}
	if !v.Bool() {
		t.Error("length('abc') > 2 evaluated false")
	}
}

func TestEncodedPlanIsCompressed(t *testing.T) {
	// A plan with many segment files (the metadata that makes plans
	// large) must compress well.
	scan := scanNode()
	for i := 0; i < 2000; i++ {
		scan.SegFiles = append(scan.SegFiles, catalog.SegFile{
			TableOID: 99, SegmentID: i % 16, SegNo: 1,
			Path: "/hawq/data/99/segment/file", LogicalLen: int64(i),
		})
	}
	p := Build(&Motion{ID: 1, Type: GatherMotion, Input: scan}, []int{QDSegment}, []int{0}, 1)
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Compare with the uncompressed gob size via Decode (which must
	// still succeed) and a sanity bound.
	if len(data) > 120*1024 {
		t.Errorf("encoded plan %d bytes; compression ineffective", len(data))
	}
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
}

func TestPlanWalkVisitsAllNodes(t *testing.T) {
	p := Build(buildTwoSliceTree(), []int{QDSegment}, []int{0, 1}, 2)
	var labels []string
	p.Walk(func(n Node) { labels = append(labels, n.Label()) })
	joined := strings.Join(labels, "|")
	for _, want := range []string{"Motion Recv", "Gather Motion", "HashAggregate", "Table Scan"} {
		if !strings.Contains(joined, want) {
			t.Errorf("walk missed %q in %v", want, labels)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a plan")); err == nil {
		t.Error("garbage decoded")
	}
}

package plan

import (
	"fmt"

	"hawq/internal/expr"
)

// Clone returns a structurally independent copy of the plan: every
// slice, node, and expression is fresh, while immutable leaves (table
// descriptors, schemas, segment-file lists, key-column slices) are
// shared. It exists for the plan cache: a cached plan is handed out as
// a clone per execution, so parameter binding, resource stamping, and
// deferred direct dispatch mutate only the copy — at a fraction of the
// cost of a decompress + gob decode of the encoded form.
func (p *Plan) Clone() (*Plan, error) {
	cp := *p
	cp.Slices = make([]*Slice, len(p.Slices))
	for i, s := range p.Slices {
		root, err := cloneNode(s.Root)
		if err != nil {
			return nil, err
		}
		cp.Slices[i] = &Slice{ID: s.ID, Root: root, Segments: s.Segments}
	}
	return &cp, nil
}

func cloneExpr(e expr.Expr) (expr.Expr, error) {
	c, ok := expr.Clone(e)
	if !ok {
		return nil, fmt.Errorf("plan: clone: unsupported expression %T", e)
	}
	return c, nil
}

// cloneNode deep-copies an operator tree. Slice-valued fields that no
// execution path mutates (projections, join keys, runtime-filter lists,
// literal rows, insert targets) are shared; fields that BindParams or
// the executor rewrite (expressions, motion sender lists) are copied.
func cloneNode(n Node) (Node, error) {
	if n == nil {
		return nil, nil
	}
	switch v := n.(type) {
	case *Scan:
		c := *v
		f, err := cloneExpr(v.Filter)
		if err != nil {
			return nil, err
		}
		c.Filter = f
		return &c, nil
	case *ExternalScan:
		c := *v
		f, err := cloneExpr(v.Filter)
		if err != nil {
			return nil, err
		}
		c.Filter = f
		return &c, nil
	case *Append:
		c := *v
		c.Inputs = make([]Node, len(v.Inputs))
		for i, in := range v.Inputs {
			ci, err := cloneNode(in)
			if err != nil {
				return nil, err
			}
			c.Inputs[i] = ci
		}
		return &c, nil
	case *Select:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		pred, err := cloneExpr(v.Pred)
		if err != nil {
			return nil, err
		}
		c.Input, c.Pred = in, pred
		return &c, nil
	case *Project:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		c.Exprs = make([]expr.Expr, len(v.Exprs))
		for i, e := range v.Exprs {
			ce, err := cloneExpr(e)
			if err != nil {
				return nil, err
			}
			c.Exprs[i] = ce
		}
		return &c, nil
	case *HashJoin:
		c := *v
		l, err := cloneNode(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := cloneNode(v.Right)
		if err != nil {
			return nil, err
		}
		ep, err := cloneExpr(v.ExtraPred)
		if err != nil {
			return nil, err
		}
		c.Left, c.Right, c.ExtraPred = l, r, ep
		return &c, nil
	case *NestLoopJoin:
		c := *v
		l, err := cloneNode(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := cloneNode(v.Right)
		if err != nil {
			return nil, err
		}
		pred, err := cloneExpr(v.Pred)
		if err != nil {
			return nil, err
		}
		c.Left, c.Right, c.Pred = l, r, pred
		return &c, nil
	case *HashAgg:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		c.Groups = make([]expr.Expr, len(v.Groups))
		for i, g := range v.Groups {
			cg, err := cloneExpr(g)
			if err != nil {
				return nil, err
			}
			c.Groups[i] = cg
		}
		c.Aggs = make([]expr.AggSpec, len(v.Aggs))
		for i, a := range v.Aggs {
			ca, ok := expr.CloneAggSpec(a)
			if !ok {
				return nil, fmt.Errorf("plan: clone: unsupported aggregate argument %T", a.Arg)
			}
			c.Aggs[i] = ca
		}
		return &c, nil
	case *Sort:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		return &c, nil
	case *Limit:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		return &c, nil
	case *Distinct:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		return &c, nil
	case *Values:
		c := *v
		return &c, nil
	case *Insert:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		return &c, nil
	case *Motion:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		return &c, nil
	case *MotionRecv:
		c := *v
		return &c, nil
	case *SenderHint:
		c := *v
		in, err := cloneNode(v.Input)
		if err != nil {
			return nil, err
		}
		c.Input = in
		return &c, nil
	default:
		return nil, fmt.Errorf("plan: clone: unsupported node %T", n)
	}
}

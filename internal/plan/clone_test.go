package plan

import (
	"testing"

	"hawq/internal/expr"
	"hawq/internal/types"
)

// TestCloneIsolation verifies a cloned plan shares nothing mutable with
// its source: binding parameters and shrinking direct-dispatch gangs on
// the clone must leave the original pristine (the plan-cache contract).
func TestCloneIsolation(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt64})
	filter := expr.NewBinOp(expr.OpEq,
		&expr.ColRef{Idx: 0, K: types.KindInt64, Name: "k"},
		&expr.Param{Idx: 0, K: types.KindInt64})
	motion := &Motion{Type: GatherMotion, Input: &SenderHint{
		Input:        &Scan{Proj: []int{0}, Filter: filter, Schema: schema},
		Segments:     []int{0, 1, 2, 3},
		DeferredKeys: []DirectKey{{Param: 0}},
	}}
	p := Build(motion, []int{QDSegment}, []int{0, 1, 2, 3}, 4)
	p.ParamKinds = []types.Kind{types.KindInt64}

	c, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BindParams([]types.Datum{types.NewInt64(42)}); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Slices[1].Segments); got != 1 {
		t.Fatalf("clone not direct-dispatched: %v", c.Slices[1].Segments)
	}
	// The original is untouched: full gang, parameter unbound.
	if got := len(p.Slices[1].Segments); got != 4 {
		t.Fatalf("original segments mutated: %v", p.Slices[1].Segments)
	}
	p.Walk(func(n Node) {
		for _, e := range NodeExprs(n) {
			expr.Walk(e, func(x expr.Expr) {
				if pm, ok := x.(*expr.Param); ok && pm.Bound {
					t.Fatal("original parameter bound through clone")
				}
			})
		}
	})
	// And a second clone of the pristine original binds independently.
	c2, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.BindParams([]types.Datum{types.NewInt64(7)}); err != nil {
		t.Fatal(err)
	}
	if c2.Slices[1].Segments[0] == 0 && c.Slices[1].Segments[0] == 0 {
		t.Log("both keys hash to segment 0 (legal, just unlucky)")
	}
}

package plan

import (
	"fmt"
	"strings"

	"hawq/internal/types"
)

// QDSegment is the pseudo-segment ID for the query dispatcher.
const QDSegment = -1

// Slice is one execution unit of a plan: a subtree that does not cross a
// motion boundary (§2.4). Every slice except the top one has a Motion as
// its root (the send half); the parent slice reads it through a
// MotionRecv.
type Slice struct {
	ID int
	// Root is the slice's operator tree.
	Root Node
	// Segments lists where the slice's gang runs: QDSegment for the
	// 1-gang on the master, or segment IDs for N-gangs. Direct dispatch
	// (§3) shrinks this to a single segment.
	Segments []int
}

// OnQD reports whether the slice runs on the master.
func (s *Slice) OnQD() bool {
	return len(s.Segments) == 1 && s.Segments[0] == QDSegment
}

// Plan is a sliced, self-described physical plan ready for dispatch.
type Plan struct {
	// Slices[0] is the top slice (runs on the QD and produces the
	// statement result).
	Slices []*Slice
	// Schema describes the result rows.
	Schema *types.Schema
	// NumSegments is the cluster size the plan was built for.
	NumSegments int
	// SegFileUpdatesExpected marks DML plans whose QEs piggyback catalog
	// changes back to the master (§3.1).
	SegFileUpdatesExpected bool
	// MemGrant is the query's per-node memory grant in bytes, split off
	// the session's resource queue memory_limit by the dispatcher (0 =
	// unlimited). Like the rest of the plan it travels self-described, so
	// stateless QEs enforce it without consulting the master.
	MemGrant int64
	// WorkMem is the per-operator spill threshold in bytes (the work_mem
	// session setting; 0 disables budget-triggered spilling).
	WorkMem int64
	// CollectStats asks every slice to record per-operator runtime
	// statistics (rows, bytes, spill, peak memory, wall time) and ship
	// them back to the QD on completion. Set by EXPLAIN ANALYZE and by
	// sessions with a slow-query-log threshold. Travels self-described
	// with the rest of the plan, so stateless QEs need no extra
	// coordination to know stats are wanted.
	CollectStats bool
	// ParamKinds records, for generic (parameterized) plans, the kind each
	// $n placeholder was inferred to have, indexed by parameter position.
	// EXECUTE casts argument values to these kinds before BindParams.
	// Empty for plans without placeholders.
	ParamKinds []types.Kind
	// DeferredDirect lists slices whose direct-dispatch target could not
	// be computed at plan time because a distribution key is pinned by a
	// $n placeholder (generic plans). BindParams hashes the bound values
	// and shrinks each slice to its single target segment, so a cached
	// plan keeps §3's single-segment point-lookup dispatch.
	DeferredDirect []DirectDispatch
}

// DirectDispatch records one deferred direct-dispatch decision: the
// slice to pin and, per distribution key column, either the parameter
// position supplying the value or the constant already known.
type DirectDispatch struct {
	SliceID int
	Keys    []DirectKey
}

// DirectKey is one distribution-key value source: Param >= 0 names a
// $n placeholder (0-based), otherwise Const holds the plan-time value.
type DirectKey struct {
	Param int
	Const types.Datum
}

// SenderHint lets the planner pin a motion's child slice to a subset of
// segments (direct dispatch). It is attached by wrapping the motion
// input; nil hints mean "all segments". DeferredKeys, when set, defers
// the choice to BindParams: Segments stays the full gang at plan time
// and the bound parameter values pick the one target segment.
type SenderHint struct {
	Input        Node
	Segments     []int
	DeferredKeys []DirectKey
}

// OutSchema implements Node.
func (h *SenderHint) OutSchema() *types.Schema { return h.Input.OutSchema() }

// Children implements Node.
func (h *SenderHint) Children() []Node { return []Node{h.Input} }

// Label implements Node.
func (h *SenderHint) Label() string {
	if len(h.DeferredKeys) > 0 {
		return "Direct Dispatch (bound at execute)"
	}
	return fmt.Sprintf("Direct Dispatch %v", h.Segments)
}

// Build slices a plan tree at its motion boundaries. root is the full
// tree (with Motion nodes); topSegments is where the top slice runs
// (usually just the QD). allSegments is the default gang for sliced
// subtrees.
func Build(root Node, topSegments, allSegments []int, numSegments int) *Plan {
	p := &Plan{Schema: root.OutSchema(), NumSegments: numSegments}
	b := &builder{plan: p, all: allSegments}
	top := &Slice{ID: 0, Segments: topSegments}
	p.Slices = append(p.Slices, top)
	top.Root = b.walk(root, top)
	return p
}

type builder struct {
	plan *Plan
	all  []int
}

// walk rewrites the tree: each Motion becomes a new slice whose root is
// the motion itself, and the parent keeps a MotionRecv.
func (b *builder) walk(n Node, parent *Slice) Node {
	switch v := n.(type) {
	case *Motion:
		segs := b.all
		child := v.Input
		var deferred []DirectKey
		if hint, ok := child.(*SenderHint); ok {
			segs = hint.Segments
			deferred = hint.DeferredKeys
			child = hint.Input
			v.Input = child
		}
		s := &Slice{ID: len(b.plan.Slices), Segments: segs}
		b.plan.Slices = append(b.plan.Slices, s)
		if len(deferred) > 0 {
			b.plan.DeferredDirect = append(b.plan.DeferredDirect,
				DirectDispatch{SliceID: s.ID, Keys: deferred})
		}
		// The slice index is the motion's unique ID within the query.
		v.ID = int16(s.ID)
		v.Receivers = parent.Segments
		v.Input = b.walk(child, s)
		s.Root = v
		return &MotionRecv{ID: v.ID, Senders: s.Segments, Schema: v.OutSchema()}
	case *Select:
		v.Input = b.walk(v.Input, parent)
		return v
	case *Project:
		v.Input = b.walk(v.Input, parent)
		return v
	case *HashJoin:
		v.Left = b.walk(v.Left, parent)
		v.Right = b.walk(v.Right, parent)
		return v
	case *NestLoopJoin:
		v.Left = b.walk(v.Left, parent)
		v.Right = b.walk(v.Right, parent)
		return v
	case *HashAgg:
		v.Input = b.walk(v.Input, parent)
		return v
	case *Sort:
		v.Input = b.walk(v.Input, parent)
		return v
	case *Limit:
		v.Input = b.walk(v.Input, parent)
		return v
	case *Distinct:
		v.Input = b.walk(v.Input, parent)
		return v
	case *Insert:
		v.Input = b.walk(v.Input, parent)
		return v
	case *Append:
		for i, c := range v.Inputs {
			v.Inputs[i] = b.walk(c, parent)
		}
		return v
	default:
		return n
	}
}

// Explain renders the sliced plan in the style of EXPLAIN output.
func (p *Plan) Explain() string {
	var b strings.Builder
	for _, s := range p.Slices {
		where := "QD"
		if !s.OnQD() {
			if len(s.Segments) == p.NumSegments {
				where = fmt.Sprintf("%d segments", len(s.Segments))
			} else {
				where = fmt.Sprintf("segments %v", s.Segments)
			}
		}
		fmt.Fprintf(&b, "Slice %d (%s):\n", s.ID, where)
		// Memory budgets are part of the plan (PR 4); show them so a
		// query's spill behavior is predictable before it runs.
		if p.MemGrant > 0 || p.WorkMem > 0 {
			fmt.Fprintf(&b, "  Memory: grant=%d work_mem=%d\n", p.MemGrant, p.WorkMem)
		}
		explainNode(&b, s.Root, 1)
	}
	return b.String()
}

func explainNode(b *strings.Builder, n Node, depth int) {
	fmt.Fprintf(b, "%s-> %s\n", strings.Repeat("  ", depth), n.Label())
	for _, c := range n.Children() {
		explainNode(b, c, depth+1)
	}
}

// Walk visits every node of every slice.
func (p *Plan) Walk(fn func(Node)) {
	for _, s := range p.Slices {
		walkNode(s.Root, fn)
	}
}

func walkNode(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		walkNode(c, fn)
	}
}

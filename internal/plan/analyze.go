package plan

import (
	"fmt"
	"strings"
	"time"

	"hawq/internal/obs"
)

// NodeStats is one plan node's runtime statistics merged across every
// segment that executed its slice: counters are summed, peak memory and
// wall time take the per-segment maximum (the slice finishes when its
// slowest gang member does).
type NodeStats struct {
	// Slice and Node locate the plan node (Node is the preorder index
	// within the slice tree, matching obs.OpStats numbering).
	Slice int
	Node  int
	// Label and Depth mirror the node's Explain rendering.
	Label string
	Depth int
	// Segments counts gang members that reported stats for this node.
	Segments int
	// Rows, Batches, Bytes, SpillBytes, and SpillFiles are summed over
	// the gang; Bytes is interconnect payload traffic (motions only).
	Rows       int64
	Batches    int64
	Bytes      int64
	SpillBytes int64
	SpillFiles int64
	// PagesSkipped and RTFilterRows are summed over the gang: storage
	// pages pruned via zone maps, and probe rows removed by runtime
	// bloom filters before decode (scans only).
	PagesSkipped int64
	RTFilterRows int64
	// PeakMem is the largest single-segment memory high-water mark.
	PeakMem int64
	// MaxWall is the slowest gang member's cumulative operator time.
	MaxWall time.Duration
}

// MergeStats folds the per-(slice, segment) statistics shipped back by
// the gang into one NodeStats list per slice, in preorder — the
// structure EXPLAIN ANALYZE renders and tests assert against. Slices
// and nodes come from the plan itself, so operators that reported
// nothing (never opened) still appear, with zero counts.
func (p *Plan) MergeStats(stats []obs.SliceStats) [][]NodeStats {
	out := make([][]NodeStats, len(p.Slices))
	for si, s := range p.Slices {
		var nodes []NodeStats
		var number func(n Node, depth int)
		number = func(n Node, depth int) {
			nodes = append(nodes, NodeStats{
				Slice: si, Node: len(nodes), Label: n.Label(), Depth: depth,
			})
			for _, c := range n.Children() {
				number(c, depth+1)
			}
		}
		number(s.Root, 0)
		out[si] = nodes
	}
	for _, ss := range stats {
		if ss.Slice < 0 || ss.Slice >= len(out) {
			continue
		}
		nodes := out[ss.Slice]
		for _, op := range ss.Ops {
			if op.Node < 0 || op.Node >= len(nodes) {
				continue
			}
			n := &nodes[op.Node]
			n.Segments++
			n.Rows += op.Rows
			n.Batches += op.Batches
			n.Bytes += op.Bytes
			n.SpillBytes += op.SpillBytes
			n.SpillFiles += op.SpillFiles
			n.PagesSkipped += op.PagesSkipped
			n.RTFilterRows += op.RTFilterRows
			if op.PeakMem > n.PeakMem {
				n.PeakMem = op.PeakMem
			}
			if op.Wall > n.MaxWall {
				n.MaxWall = op.Wall
			}
		}
	}
	return out
}

// ExplainAnalyze renders the executed plan with its merged runtime
// statistics: the Explain tree, one "(rows=... time=...)" annotation
// per operator, motion traffic and spill detail where present, and a
// trailing execution summary. Output is deterministic given identical
// stats — slices in order, nodes in preorder, durations from the
// injected clock (all zero under clock.Sim).
func (p *Plan) ExplainAnalyze(stats []obs.SliceStats, resultRows int, elapsed time.Duration) string {
	merged := p.MergeStats(stats)
	var b strings.Builder
	for si, s := range p.Slices {
		where := "QD"
		if !s.OnQD() {
			if len(s.Segments) == p.NumSegments {
				where = fmt.Sprintf("%d segments", len(s.Segments))
			} else {
				where = fmt.Sprintf("segments %v", s.Segments)
			}
		}
		fmt.Fprintf(&b, "Slice %d (%s):\n", s.ID, where)
		if p.MemGrant > 0 || p.WorkMem > 0 {
			fmt.Fprintf(&b, "  Memory: grant=%d work_mem=%d\n", p.MemGrant, p.WorkMem)
		}
		for _, n := range merged[si] {
			fmt.Fprintf(&b, "%s-> %s (rows=%d batches=%d", strings.Repeat("  ", n.Depth+1), n.Label, n.Rows, n.Batches)
			if n.Bytes > 0 {
				fmt.Fprintf(&b, " bytes=%d", n.Bytes)
			}
			if n.SpillBytes > 0 || n.SpillFiles > 0 {
				fmt.Fprintf(&b, " spill_bytes=%d spill_files=%d", n.SpillBytes, n.SpillFiles)
			}
			if n.PagesSkipped > 0 {
				fmt.Fprintf(&b, " pages_skipped=%d", n.PagesSkipped)
			}
			if n.RTFilterRows > 0 {
				fmt.Fprintf(&b, " rtfilter_removed=%d", n.RTFilterRows)
			}
			if n.PeakMem > 0 {
				fmt.Fprintf(&b, " peak_mem=%d", n.PeakMem)
			}
			fmt.Fprintf(&b, " time=%s)\n", n.MaxWall)
		}
	}
	fmt.Fprintf(&b, "Execution: result rows=%d time=%s\n", resultRows, elapsed)
	return b.String()
}

package plan

import (
	"fmt"

	"hawq/internal/expr"
	"hawq/internal/types"
)

// BindParams binds every expr.Param placeholder in the plan to its
// positional argument value, casting each value to the kind the planner
// inferred at prepare time. It is called on a freshly decoded plan copy
// (cached plans stay pristine) before dispatch; the dispatcher's
// re-encode then ships the bound values to the QEs.
func (p *Plan) BindParams(args []types.Datum) error {
	// A plan may reference a prefix of the EXECUTE arguments: a scalar
	// subquery planned on its own uses only the placeholders it
	// mentions. Extra arguments are fine; missing ones are not.
	if len(args) < len(p.ParamKinds) {
		return fmt.Errorf("plan: expected %d parameters, got %d", len(p.ParamKinds), len(args))
	}
	cast := make([]types.Datum, len(p.ParamKinds))
	for i := range p.ParamKinds {
		a := args[i]
		k := p.ParamKinds[i]
		if k == types.KindNull || a.IsNull() {
			cast[i] = a
			continue
		}
		c, err := types.Cast(a, k)
		if err != nil {
			return fmt.Errorf("plan: parameter $%d: %w", i+1, err)
		}
		cast[i] = c
	}
	var bindErr error
	p.Walk(func(n Node) {
		for _, e := range NodeExprs(n) {
			if e == nil {
				continue
			}
			if err := expr.BindParams(e, cast); err != nil && bindErr == nil {
				bindErr = err
			}
		}
	})
	if bindErr != nil {
		return bindErr
	}
	return p.bindDirectDispatch(cast)
}

// bindDirectDispatch resolves the deferred direct-dispatch decisions a
// generic plan carries: each slice whose distribution keys are pinned
// by placeholders shrinks to the single segment hashing the bound
// values, exactly as a plan-time constant would have (§3's single value
// lookup, preserved across the plan cache). HashDatum already hashes
// equal-comparing datums equally, so casting the argument to the
// inferred column kind keeps the choice consistent with the insert and
// redistribute paths.
func (p *Plan) bindDirectDispatch(cast []types.Datum) error {
	for _, dd := range p.DeferredDirect {
		vals := make(types.Row, len(dd.Keys))
		for i, k := range dd.Keys {
			if k.Param < 0 {
				vals[i] = k.Const
				continue
			}
			if k.Param >= len(cast) {
				return fmt.Errorf("plan: direct dispatch references parameter $%d, got %d", k.Param+1, len(cast))
			}
			vals[i] = cast[k.Param]
		}
		if dd.SliceID < 0 || dd.SliceID >= len(p.Slices) {
			return fmt.Errorf("plan: direct dispatch names slice %d of %d", dd.SliceID, len(p.Slices))
		}
		seg := []int{int(types.HashRowCols(vals, nil) % uint64(p.NumSegments))}
		p.Slices[dd.SliceID].Segments = seg
		// The receiving side's sender list must shrink with the gang, or
		// the parent slice waits forever for EOS from segments that were
		// never dispatched.
		p.Walk(func(n Node) {
			if r, ok := n.(*MotionRecv); ok && int(r.ID) == dd.SliceID {
				r.Senders = seg
			}
		})
	}
	return nil
}

// Command hawq-bench regenerates the paper's evaluation artifacts
// (Figures 6-13 of §8) at laptop scale and prints the same series the
// paper reports.
//
// Usage:
//
//	hawq-bench -exp fig6            # one experiment
//	hawq-bench -exp all             # everything (slow)
//	hawq-bench -exp fig8 -segments 8 -sf-small 0.005
//	hawq-bench -exp concurrency -concurrency 1,8,64,256,1024 -out BENCH_concurrency.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hawq/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig6 fig7 fig8 fig9 fig10 fig11a fig11b fig12 fig13a fig13b ablations concurrency all")
	segments := flag.Int("segments", 4, "HAWQ segments")
	sfSmall := flag.Float64("sf-small", 0.002, "TPC-H scale factor for the CPU-bound regime")
	sfLarge := flag.Float64("sf-large", 0.01, "TPC-H scale factor for the IO-bound regime")
	levels := flag.String("concurrency", "1,8,64,256,1024", "session counts for -exp concurrency (comma-separated)")
	ops := flag.Int("ops", 512, "statement budget per (level, mode) cell for -exp concurrency")
	out := flag.String("out", "", "write -exp concurrency results as JSON to this path")
	flag.Parse()

	cfg := bench.Config{
		Segments: *segments,
		SFSmall:  *sfSmall,
		SFLarge:  *sfLarge,
		SpillDir: os.TempDir(),
	}
	cfg.Defaults()

	// The concurrency sweep has its own shape (JSON artifact, extra
	// flags), so it runs outside the figure table.
	if *exp == "concurrency" {
		var lv []int
		for _, part := range strings.Split(*levels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -concurrency level %q\n", part)
				os.Exit(2)
			}
			lv = append(lv, n)
		}
		res, err := bench.RunConcurrency(bench.ConcurrencyConfig{
			Bench:       cfg,
			Levels:      lv,
			OpsPerLevel: *ops,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "concurrency: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Report())
		if *out != "" {
			if err := res.WriteJSON(*out); err != nil {
				fmt.Fprintf(os.Stderr, "concurrency: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	type experiment struct {
		name string
		run  func() (*bench.Report, error)
	}
	experiments := []experiment{
		{"fig6", func() (*bench.Report, error) { return bench.Fig6(cfg) }},
		{"fig7", func() (*bench.Report, error) { return bench.Fig7(cfg) }},
		{"fig8", func() (*bench.Report, error) { return bench.Fig8(cfg) }},
		{"fig9", func() (*bench.Report, error) { return bench.Fig9(cfg) }},
		{"fig10", func() (*bench.Report, error) { return bench.Fig10(cfg) }},
		{"fig11a", func() (*bench.Report, error) { return bench.Fig11(cfg, cfg.SFSmall, nil, "CPU-bound") }},
		{"fig11b", func() (*bench.Report, error) { return bench.Fig11(cfg, cfg.SFLarge, bench.IOModel(), "IO-bound") }},
		{"fig12", func() (*bench.Report, error) { return bench.Fig12(cfg) }},
		{"fig13a", func() (*bench.Report, error) { return bench.Fig13(cfg, true) }},
		{"fig13b", func() (*bench.Report, error) { return bench.Fig13(cfg, false) }},
		{"ablations", func() (*bench.Report, error) { return bench.AblationReport(cfg) }},
	}
	ran := false
	for _, ex := range experiments {
		if *exp != "all" && *exp != ex.name {
			continue
		}
		ran = true
		fmt.Printf("running %s...\n", ex.name)
		report, err := ex.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.name, err)
			os.Exit(1)
		}
		fmt.Println(report)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// Command hawq boots a single-process HAWQ cluster (master, segments,
// simulated HDFS) and serves SQL: interactively on stdin, as a one-shot
// -c query, or over the libpq-style wire protocol with -listen.
//
//	hawq -segments 4                        # interactive shell
//	hawq -c "SELECT 1 + 1"                  # one-shot
//	hawq -listen 127.0.0.1:5432             # wire-protocol server
//	hawq -tpch 0.01                         # preload TPC-H at SF 0.01
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hawq/internal/client"
	"hawq/internal/engine"
	"hawq/internal/pxf"
	"hawq/internal/tpch"
	"hawq/internal/types"
)

func main() {
	segments := flag.Int("segments", 4, "number of compute segments")
	interconnect := flag.String("interconnect", "udp", "interconnect: udp or tcp")
	listen := flag.String("listen", "", "serve the wire protocol on this address instead of a shell")
	command := flag.String("c", "", "run this SQL and exit")
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	flag.Parse()

	eng, err := engine.New(engine.Config{
		Segments:     *segments,
		Interconnect: *interconnect,
		SpillDir:     os.TempDir(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer eng.Close()
	// Bind PXF so external tables work out of the box.
	eng.Cluster().External = pxf.NewEngine(eng.Cluster().FS)

	if *tpchSF > 0 {
		fmt.Fprintf(os.Stderr, "loading TPC-H at SF %g...\n", *tpchSF)
		if _, err := tpch.Load(eng, tpch.LoadOptions{Scale: tpch.Scale{SF: *tpchSF}, Orientation: "row", CompressType: "quicklz"}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *listen != "" {
		srv, err := client.NewServer(eng, *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("hawq listening on %s (%d segments, %s interconnect)\n", srv.Addr(), *segments, *interconnect)
		select {} // serve until killed
	}

	sess := eng.NewSession()
	if *command != "" {
		if err := runSQL(sess, *command); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("hawq shell — %d segments, %s interconnect. End statements with ';', \\q to quit.\n", *segments, *interconnect)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("hawq=# ")
		} else {
			fmt.Print("hawq-# ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			if err := runSQL(sess, buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "ERROR:", err)
			}
			buf.Reset()
		}
		prompt()
	}
}

// runSQL executes SQL and prints psql-style output.
func runSQL(sess *engine.Session, sql string) error {
	results, err := sess.Execute(sql)
	for _, res := range results {
		printResult(res)
	}
	return err
}

func printResult(res *engine.Result) {
	if res.Schema == nil {
		fmt.Println(res.Tag)
		return
	}
	names := res.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	rendered := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells := make([]string, len(row))
		for i, d := range row {
			cells[i] = datumString(d)
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		rendered[ri] = cells
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf(" %-*s ", widths[i], c)
		}
		fmt.Println(strings.Join(parts, "|"))
	}
	line(names)
	seps := make([]string, len(names))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i]+2)
	}
	fmt.Println(strings.Join(seps, "+"))
	for _, cells := range rendered {
		line(cells)
	}
	fmt.Printf("(%d rows)\n\n", len(res.Rows))
}

func datumString(d types.Datum) string {
	if d.IsNull() {
		return ""
	}
	return d.String()
}

// Command hawq-dbgen generates TPC-H data as delimited text files
// (dbgen's tbl format), for loading into HAWQ or any other system.
//
//	hawq-dbgen -sf 0.01 -out /tmp/tpch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hawq/internal/tpch"
	"hawq/internal/types"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 0, "generator seed (0 = default)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := tpch.NewGen(tpch.Scale{SF: *sf, Seed: *seed})
	write := func(name string, rows []types.Row) {
		path := filepath.Join(*out, name+".tbl")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		for _, row := range rows {
			cells := make([]string, len(row))
			for i, d := range row {
				cells[i] = d.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "|"))
		}
		w.Flush()
		f.Close()
		fmt.Printf("%s: %d rows\n", path, len(rows))
	}
	write("region", g.Region())
	write("nation", g.Nation())
	write("supplier", g.Supplier())
	write("part", g.Part())
	write("partsupp", g.PartSupp())
	write("customer", g.Customer())

	of, err := os.Create(filepath.Join(*out, "orders.tbl"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lf, err := os.Create(filepath.Join(*out, "lineitem.tbl"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ow, lw := bufio.NewWriter(of), bufio.NewWriter(lf)
	nOrders, nLines := 0, 0
	emit := func(w *bufio.Writer, row types.Row) {
		cells := make([]string, len(row))
		for i, d := range row {
			cells[i] = d.String()
		}
		fmt.Fprintln(w, strings.Join(cells, "|"))
	}
	g.OrderAndLines(func(o types.Row, lines []types.Row) {
		emit(ow, o)
		nOrders++
		for _, l := range lines {
			emit(lw, l)
			nLines++
		}
	})
	ow.Flush()
	lw.Flush()
	of.Close()
	lf.Close()
	fmt.Printf("%s: %d rows\n", filepath.Join(*out, "orders.tbl"), nOrders)
	fmt.Printf("%s: %d rows\n", filepath.Join(*out, "lineitem.tbl"), nLines)
}

package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerDeterminism enforces replayability in the simulated
// components (Checker.DeterminismPkgs — internal/hdfs,
// internal/interconnect, internal/stinger, internal/tpch by default):
// no direct wall-clock reads or sleeps (time.Now, time.Sleep,
// time.Since, time.After, time.NewTicker, ...) and no use of the
// global math/rand source (rand.Intn, rand.Float64, rand.Seed, ...).
// These packages must take an injected clock.Clock and a locally owned
// seeded *rand.Rand so fault-injection experiments replay
// deterministically. Constructing a seeded generator (rand.New,
// rand.NewSource, rand.NewZipf) is allowed — that is the convention.
var analyzerDeterminism = &Analyzer{
	Name: nameDeterminism,
	Doc:  "direct time.Now/time.Sleep/global math/rand in simulated components",
	Run:  runDeterminism,
}

// nondeterministicTimeFuncs are the time package functions that read or
// wait on the wall clock.
var nondeterministicTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// seededRandConstructors are the math/rand functions that build a
// locally owned generator instead of touching the global source.
var seededRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(c *Checker, pkg *Package) {
	simulated := false
	for _, p := range c.DeterminismPkgs {
		if pkg.Path == p {
			simulated = true
		}
	}
	if !simulated {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			// Referencing a type (rand.Rand, time.Duration, time.Time)
			// is fine; only package-level function use is impure.
			if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return false
			}
			switch pn.Imported().Path() {
			case "time":
				if nondeterministicTimeFuncs[sel.Sel.Name] {
					c.report(pkg, sel.Pos(), nameDeterminism,
						fmt.Sprintf("time.%s in a simulated component; route it through the injected clock.Clock so runs replay deterministically", sel.Sel.Name))
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[sel.Sel.Name] {
					c.report(pkg, sel.Pos(), nameDeterminism,
						fmt.Sprintf("rand.%s uses the global math/rand source; use a locally owned seeded *rand.Rand plumbed from config", sel.Sel.Name))
				}
			}
			return false
		})
	}
}

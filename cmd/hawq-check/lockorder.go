package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzerLockorder builds the global mutex-acquisition graph — which
// named locks (receiver fields and package vars) can be taken while
// which others are held — and reports two bug classes:
//
//  1. cycles in the graph (A taken under B somewhere, B taken under A
//     somewhere else): a potential deadlock the race detector cannot
//     see, because it needs two schedules to manifest;
//  2. blocking operations performed while a lock is held (channel
//     send/recv, blocking select, sync.WaitGroup.Wait, net I/O,
//     time.Sleep — directly or through a call whose summary blocks):
//     the pattern that turns one stalled peer into a wedged process.
//
// Held regions are approximated in source order (Lock() to the first
// matching Unlock() on the same expression; deferred unlocks hold to
// the end of the function), and call effects come from the
// whole-program summaries in program.go. Branch-sensitive release and
// locks passed by pointer across functions are documented soundness
// limits; intentional sites carry //hawqcheck:ignore lockorder with a
// justification.
var analyzerLockorder = &Analyzer{
	Name: nameLockorder,
	Doc:  "mutex-acquisition cycles (potential deadlocks) and blocking calls under a held lock",
	Run:  runLockorder,
}

func runLockorder(c *Checker, pkg *Package) {
	p := c.prog()
	// Per-function: blocking ops inside held regions, and the edges this
	// package contributes to the global graph.
	for _, fi := range p.fns {
		if fi.pkg != pkg {
			continue
		}
		checkHeldRegions(c, p, fi)
	}
	// Cycle detection runs on the global graph but reports each cycle
	// exactly once: in the package owning the lexically smallest edge
	// position, so a whole-tree run never duplicates findings.
	reportLockCycles(c, p, pkg)
}

// lockEdge is one "acquired B while holding A" observation.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      ast.Node
}

// graphEdges collects every lock→lock edge in the program.
func graphEdges(p *program) []lockEdge {
	var edges []lockEdge
	for _, fi := range p.fns {
		info := fi.pkg.Info
		for _, region := range fi.lockRegions {
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() <= region.start || call.Pos() >= region.end {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isMutexRecv(info, sel) {
					if _, isAcq := lockMethods[sel.Sel.Name]; isAcq {
						id := lockIdent(fi.pkg, sel.X)
						if id != region.id {
							edges = append(edges, lockEdge{from: region.id, to: id, pkg: fi.pkg, pos: call})
						}
					}
					return true
				}
				if fn, ok := calleeObject(info, call).(*types.Func); ok {
					if gi, inModule := p.fns[fn]; inModule {
						for id := range gi.acquires {
							if id != region.id {
								edges = append(edges, lockEdge{from: region.id, to: id, pkg: fi.pkg, pos: call})
							}
						}
					}
				}
				return true
			})
		}
	}
	return edges
}

// checkHeldRegions flags blocking operations inside fi's held-lock
// regions.
func checkHeldRegions(c *Checker, p *program, fi *funcInfo) {
	info := fi.pkg.Info
	seen := map[string]bool{} // pos+lock, so overlapping regions of one lock report once
	for _, region := range fi.lockRegions {
		reg := region
		rep := func(pos token.Pos, msg string) {
			key := fmt.Sprintf("%d|%s", pos, reg.id)
			if !seen[key] {
				seen[key] = true
				c.report(fi.pkg, pos, nameLockorder, msg)
			}
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if n == nil || n.Pos() <= reg.start || n.Pos() >= reg.end {
				return true
			}
			switch e := n.(type) {
			case *ast.GoStmt:
				// The goroutine body runs after the region; skip it.
				return false
			case *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				if !inDefaultSelect(fi, e) {
					rep(e.Pos(), fmt.Sprintf("channel send while holding %s; a slow receiver wedges every other acquirer", reg.expr))
				}
				return false
			case *ast.UnaryExpr:
				if e.Op == token.ARROW && !inDefaultSelect(fi, e) {
					rep(e.Pos(), fmt.Sprintf("channel receive while holding %s; a silent sender wedges every other acquirer", reg.expr))
					return false
				}
			case *ast.SelectStmt:
				if !selectHasDefault(e) {
					rep(e.Pos(), fmt.Sprintf("blocking select while holding %s", reg.expr))
					return false
				}
			case *ast.CallExpr:
				sel, isSel := ast.Unparen(e.Fun).(*ast.SelectorExpr)
				if isSel && isMutexRecv(info, sel) {
					return true // lock ops handled by the graph
				}
				if isSel {
					name := sel.Sel.Name
					if isWaitGroupMethod(info, sel) && name == "Wait" {
						rep(e.Pos(), fmt.Sprintf("sync.WaitGroup.Wait while holding %s", reg.expr))
						return false
					}
					if pkgPathOfSelector(info, sel) == "net" || recvPkgPath(info, sel) == "net" {
						rep(e.Pos(), fmt.Sprintf("net I/O (%s) while holding %s", name, reg.expr))
						return false
					}
					if pkgPathOfSelector(info, sel) == "time" && (name == "Sleep" || name == "After") {
						rep(e.Pos(), fmt.Sprintf("time.%s while holding %s", name, reg.expr))
						return false
					}
				}
				if fn, ok := calleeObject(info, e).(*types.Func); ok {
					if gi, inModule := p.fns[fn]; inModule && gi.blocks {
						rep(e.Pos(), fmt.Sprintf("%s may block (%s) and is called while holding %s", fn.Name(), gi.blockWhy, reg.expr))
						return false
					}
				}
			}
			return true
		})
	}
}

// inDefaultSelect reports whether a channel op sits in a comm clause of
// a select that has a default case (and is therefore non-blocking).
func inDefaultSelect(fi *funcInfo, n ast.Node) bool {
	found := false
	ast.Inspect(fi.decl.Body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok || !selectHasDefault(sel) {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil &&
				cc.Comm.Pos() <= n.Pos() && n.End() <= cc.Comm.End() {
				found = true
			}
		}
		return true
	})
	return found
}

// selectHasDefault reports whether a select statement has a default
// clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// reportLockCycles finds cycles in the global acquisition graph and
// reports each one once, anchored at its lexically smallest edge when
// that edge lives in pkg.
func reportLockCycles(c *Checker, p *program, pkg *Package) {
	edges := graphEdges(p)
	adj := map[string]map[string]lockEdge{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]lockEdge{}
		}
		// Keep the lexically smallest witness per edge.
		old, ok := adj[e.from][e.to]
		if !ok || beforeEdge(c, e, old) {
			adj[e.from][e.to] = e
		}
	}
	cycles := findCycles(adj)
	for _, cyc := range cycles {
		anchor := cyc[0]
		for _, e := range cyc[1:] {
			if beforeEdge(c, e, anchor) {
				anchor = e
			}
		}
		if anchor.pkg != pkg {
			continue
		}
		var hops []string
		for _, e := range cyc {
			hops = append(hops, fmt.Sprintf("%s→%s", e.from, e.to))
		}
		sort.Strings(hops)
		c.report(pkg, anchor.pos.Pos(), nameLockorder,
			fmt.Sprintf("lock-order cycle (potential deadlock): %s; pick one global order and stick to it", strings.Join(hops, ", ")))
	}
}

// beforeEdge orders edges by source position for deterministic anchors.
func beforeEdge(c *Checker, a, b lockEdge) bool {
	pa, pb := c.Fset.Position(a.pos.Pos()), c.Fset.Position(b.pos.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Line < pb.Line
}

// findCycles returns the elementary cycles of the lock graph, one
// witness edge list per cycle, discovered by DFS from each node in
// sorted order. Each cycle is reported once (deduped on its sorted
// node set).
func findCycles(adj map[string]map[string]lockEdge) [][]lockEdge {
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var out [][]lockEdge
	seen := map[string]bool{}
	for _, start := range nodes {
		var path []lockEdge
		onPath := map[string]bool{start: true}
		var dfs func(n string) bool
		dfs = func(n string) bool {
			var tos []string
			for to := range adj[n] {
				tos = append(tos, to)
			}
			sort.Strings(tos)
			for _, to := range tos {
				e := adj[n][to]
				if to == start {
					cyc := append(append([]lockEdge{}, path...), e)
					key := cycleKey(cyc)
					if !seen[key] {
						seen[key] = true
						out = append(out, cyc)
					}
					continue
				}
				if onPath[to] || to < start { // cycles through smaller nodes found earlier
					continue
				}
				onPath[to] = true
				path = append(path, e)
				dfs(to)
				path = path[:len(path)-1]
				delete(onPath, to)
			}
			return false
		}
		dfs(start)
	}
	return out
}

// cycleKey canonicalizes a cycle to its sorted node set.
func cycleKey(cyc []lockEdge) string {
	var ns []string
	for _, e := range cyc {
		ns = append(ns, e.from)
	}
	sort.Strings(ns)
	return strings.Join(ns, "|")
}

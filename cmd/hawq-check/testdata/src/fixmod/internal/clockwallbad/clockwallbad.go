// Package clockwallbad is a hawq-check fixture: raw wall-clock reads
// and waits outside the clock abstraction, next to the time-package
// uses that remain legal (types and pure constructors).
package clockwallbad

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now()
}

// Nap waits on the wall clock directly.
func Nap() {
	time.Sleep(10 * time.Millisecond)
}

// Elapsed measures with the wall clock directly.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// SuppressedStamp reads the wall clock with an audited justification.
func SuppressedStamp() time.Time {
	//hawqcheck:ignore clockwall fixture: operator-facing display timestamp
	return time.Now()
}

// CleanConstructor builds an instant from parts; pure constructors are
// deterministic and allowed.
func CleanConstructor() time.Time {
	return time.Date(2014, 6, 22, 0, 0, 0, 0, time.UTC)
}

// CleanArithmetic uses only time types and arithmetic.
func CleanArithmetic(d time.Duration) time.Duration {
	return d * 2
}

// Package wiresafebad is a hawq-check fixture: structs reachable from
// the gob wire surface carrying fields gob cannot ship — unexported
// data (silently dropped), chans and funcs (encode-time failures) —
// next to wire types that must pass.
package wiresafebad

import (
	"bytes"
	"encoding/gob"
)

// Plan is the wire root: registered with gob and encoded directly.
type Plan struct {
	Name  string
	Root  Node
	Badge badge
}

// Node is the interface field that fans out to registered impls.
type Node interface{ Kind() string }

// badge rides inside Plan as an unexported-typed exported field; its
// own fields are still audited.
type badge struct {
	Serial int
}

// Scan is a registered Node implementation with a dropped unexported
// field and fields gob refuses at encode time.
type Scan struct {
	Table  string
	filter string
	Notify chan int
	Filter func(int) bool
}

// Kind implements Node.
func (*Scan) Kind() string { return "scan" }

// Suppressed is a registered Node implementation whose unexported field
// carries an audited justification.
type Suppressed struct {
	Table string
	//hawqcheck:ignore wiresafe rebuilt from Table by the decoder
	cache []byte
}

// Kind implements Node.
func (*Suppressed) Kind() string { return "suppressed" }

// CleanLeaf is fully exported and plain: nothing to flag.
type CleanLeaf struct {
	Rows int64
}

// Unregistered never touches the wire; its unexported field is fine.
type Unregistered struct {
	secret string
}

// Secret keeps the field used.
func (u *Unregistered) Secret() string { return u.secret }

func init() {
	gob.Register(&Scan{})
	gob.Register(&Suppressed{})
}

// Encode ships a plan, making Plan (and through Node, the registered
// impls) wire-reachable.
func Encode(p *Plan) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

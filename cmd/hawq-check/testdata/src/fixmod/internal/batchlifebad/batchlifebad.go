// Package batchlifebad is a hawq-check fixture: the three pooled-batch
// lifetime bugs (use-after-put, double put, escaping arena views) next
// to the ownership patterns that must pass.
package batchlifebad

import "fixmod/internal/fixtypes"

// UseAfterPut reads a batch after returning it to the pool.
func UseAfterPut() int {
	b := fixtypes.GetBatch(4)
	fixtypes.PutBatch(b)
	return b.Len()
}

// DoublePut releases the same batch twice.
func DoublePut() {
	b := fixtypes.GetBatch(4)
	fixtypes.PutBatch(b)
	fixtypes.PutBatch(b)
}

// PutWithDeferPending releases explicitly while a deferred put is
// already registered.
func PutWithDeferPending() {
	b := fixtypes.GetBatch(4)
	defer fixtypes.PutBatch(b)
	fixtypes.PutBatch(b)
}

// EscapingRow returns an arena view that dies with the deferred put.
func EscapingRow() fixtypes.Row {
	b := fixtypes.GetBatch(4)
	defer fixtypes.PutBatch(b)
	r := b.AddRow()
	return r
}

// RowAfterPut touches an arena view after its batch was released.
func RowAfterPut() int64 {
	b := fixtypes.GetBatch(4)
	r := b.AddRow()
	fixtypes.PutBatch(b)
	return r[0]
}

// SuppressedUse is a use-after-put with an audited justification.
func SuppressedUse() int {
	b := fixtypes.GetBatch(4)
	fixtypes.PutBatch(b)
	//hawqcheck:ignore batchlife fixture: pretend the pool is single-owner here
	return b.Len()
}

// CleanReassign releases, then takes a fresh batch into the same
// variable; the reassignment restores liveness.
func CleanReassign() int {
	b := fixtypes.GetBatch(4)
	fixtypes.PutBatch(b)
	b = fixtypes.GetBatch(4)
	return b.Len()
}

// CleanClone copies the row out of the arena before the deferred put.
func CleanClone() fixtypes.Row {
	b := fixtypes.GetBatch(4)
	defer fixtypes.PutBatch(b)
	r := b.AddRow().Clone()
	return r
}

// CleanConditionalPut releases on the error branch only; the
// fall-through still owns the batch.
func CleanConditionalPut(fail bool) *fixtypes.Batch {
	b := fixtypes.GetBatch(4)
	if fail {
		fixtypes.PutBatch(b)
		return nil
	}
	return b
}

// VecUseAfterPut reads an encoded batch after returning it to the
// pool; VecBatch lifetimes follow the same discipline as Batch.
func VecUseAfterPut() int {
	vb := fixtypes.GetVecBatch(4)
	fixtypes.PutVecBatch(vb)
	return vb.SelCount()
}

// VecDoublePut releases the same encoded batch twice.
func VecDoublePut() {
	vb := fixtypes.GetVecBatch(4)
	fixtypes.PutVecBatch(vb)
	fixtypes.PutVecBatch(vb)
}

// CleanVecHandoff transfers encoded-batch ownership without releasing;
// the callee now owns the put obligation.
func CleanVecHandoff(sink func(*fixtypes.VecBatch)) {
	vb := fixtypes.GetVecBatch(4)
	sink(vb)
}

// CleanVecReassign releases, then takes a fresh encoded batch into the
// same variable; the reassignment restores liveness.
func CleanVecReassign() int {
	vb := fixtypes.GetVecBatch(4)
	fixtypes.PutVecBatch(vb)
	vb = fixtypes.GetVecBatch(4)
	return vb.SelCount()
}

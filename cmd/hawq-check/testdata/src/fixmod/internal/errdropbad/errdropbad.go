// Package errdropbad is a hawq-check fixture: project-API error returns
// that are dropped, handled, and suppressed, for the errdrop analyzer.
package errdropbad

import "fmt"

// Fail always fails.
func Fail() error { return fmt.Errorf("boom") }

// Value returns a value and an error.
func Value() (int, error) { return 0, fmt.Errorf("boom") }

// DropBare discards the error with a bare call statement.
func DropBare() {
	Fail()
}

// DropBlank discards the error with a blank assignment.
func DropBlank() {
	_ = Fail()
}

// DropSecond blanks the error position of a two-value return.
func DropSecond() int {
	v, _ := Value()
	return v
}

// Suppressed documents an intentional drop with the ignore directive.
func Suppressed() {
	//hawqcheck:ignore errdrop
	Fail()
}

// Handled propagates the error.
func Handled() error {
	if err := Fail(); err != nil {
		return err
	}
	return nil
}

// Deferred cleanup is accepted idiom and not flagged.
func Deferred() {
	defer Fail()
}

// Package ctxflowbad is a hawq-check fixture: a seeded unbounded loop
// that never observes cancellation (the wedged-query bug class), a
// blocking select with no cancellation case, and the passing shapes.
package ctxflowbad

import "context"

// Pump is the seeded bug: an unbounded pump loop cancellation cannot
// reach.
func Pump(in <-chan int, out chan<- int) {
	for {
		v := <-in
		out <- v
	}
}

// ParkedSelect blocks on data channels only; a canceled query leaves a
// goroutine parked here forever.
func ParkedSelect(a, b <-chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// SuppressedPump is the same loop with an audited justification.
func SuppressedPump(in <-chan int, out chan<- int) {
	//hawqcheck:ignore ctxflow the producer closes in at teardown, bounding the loop
	for {
		v, ok := <-in
		if !ok {
			return
		}
		out <- v
	}
}

// CleanPump observes ctx.Done on one path, so cancellation reaches it.
func CleanPump(ctx context.Context, in <-chan int, out chan<- int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			out <- v
		}
	}
}

// CleanErrCheck observes cancellation through ctx.Err.
func CleanErrCheck(ctx context.Context, work func() bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !work() {
			return nil
		}
	}
}

// CleanBounded loops under a condition; conditional loops are assumed
// bounded.
func CleanBounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

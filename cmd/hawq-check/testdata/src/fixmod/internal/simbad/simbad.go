// Package simbad is a hawq-check fixture: wall-clock and global-RNG use
// inside a simulated component, for the determinism analyzer.
package simbad

import (
	"math/rand"
	"time"
)

// WallNow reads the wall clock directly.
func WallNow() time.Time {
	return time.Now()
}

// Nap sleeps on the real clock.
func Nap() {
	time.Sleep(time.Millisecond)
}

// GlobalRoll draws from the shared global source.
func GlobalRoll() int {
	return rand.Intn(6)
}

// SeededRoll owns a seeded generator, which is the allowed convention.
func SeededRoll() int {
	return rand.New(rand.NewSource(1)).Intn(6)
}

// Elapsed references a time type, which is fine; only impure package
// functions are flagged.
func Elapsed(d time.Duration) time.Duration {
	return d
}

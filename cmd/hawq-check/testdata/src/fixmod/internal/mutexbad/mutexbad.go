// Package mutexbad is a hawq-check fixture: known violations of the
// mutexdiscipline analyzer next to code that must pass.
package mutexbad

import "sync"

// Guarded holds a mutex-protected counter.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// BadLock locks without a matching unlock.
func BadLock(g *Guarded) {
	g.mu.Lock()
	g.n++
}

// GoodLock locks and releases via defer.
func GoodLock(g *Guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// BadValueReceiver copies the mutex with every call.
func (g Guarded) BadValueReceiver() int {
	return g.n
}

// BadCopyAssign copies a mutex-holding struct by value.
func BadCopyAssign(g *Guarded) Guarded {
	h := *g
	return h
}

// GoodPointerUse passes the lock holder by pointer.
func GoodPointerUse(g *Guarded) *Guarded {
	return g
}

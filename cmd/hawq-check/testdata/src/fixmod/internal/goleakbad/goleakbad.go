// Package goleakbad is a hawq-check fixture: goroutine launches with
// and without a shutdown mechanism, for the goleak analyzer.
package goleakbad

import (
	"context"
	"sync"
)

// LeakyStart launches a goroutine nothing can ever stop.
func LeakyStart(work chan int) {
	go func() {
		for range work {
		}
	}()
}

// StopChanStart ties the goroutine to a stop channel.
func StopChanStart(work chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-work:
			case <-stop:
				return
			}
		}
	}()
}

// ContextStart ties the goroutine to a context.
func ContextStart(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-work:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// WaitGroupStart ties the goroutine to a WaitGroup.
func WaitGroupStart(wg *sync.WaitGroup, work chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range work {
		}
	}()
}

// Package fixtypes is the fixture stand-in for the real module's pooled
// batch arena (internal/types): just enough surface — Batch, Row,
// GetBatch, PutBatch, Row views and Clone — for the batchlife analyzer
// to track lifetimes against. Tests point Checker.BatchPkg here.
package fixtypes

// Row is a view into a batch's arena, valid until the batch is
// released.
type Row []int64

// Clone copies the row out of the arena.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Batch is a pooled column batch.
type Batch struct {
	rows []Row
}

// Len returns the number of rows.
func (b *Batch) Len() int { return len(b.rows) }

// Row returns the i-th arena row view.
func (b *Batch) Row(i int) Row { return b.rows[i] }

// AddRow appends and returns a fresh arena row view.
func (b *Batch) AddRow() Row {
	b.rows = append(b.rows, make(Row, 4))
	return b.rows[len(b.rows)-1]
}

// GetBatch takes a batch from the pool.
func GetBatch(n int) *Batch { return &Batch{rows: make([]Row, 0, n)} }

// PutBatch returns a batch to the pool; the caller must not touch it
// (or any arena row view into it) afterwards.
func PutBatch(b *Batch) { b.rows = b.rows[:0] }

// VecBatch is the pooled encoded-column batch, released through
// PutVecBatch with the same single-owner discipline as Batch.
type VecBatch struct {
	sel []int32
}

// SelCount returns the number of selected rows.
func (vb *VecBatch) SelCount() int { return len(vb.sel) }

// GetVecBatch takes an encoded batch from the pool.
func GetVecBatch(n int) *VecBatch { return &VecBatch{sel: make([]int32, 0, n)} }

// PutVecBatch returns an encoded batch to the pool; the caller must
// not touch it afterwards.
func PutVecBatch(vb *VecBatch) { vb.sel = vb.sel[:0] }

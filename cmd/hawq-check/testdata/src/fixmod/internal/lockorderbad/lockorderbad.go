// Package lockorderbad is a hawq-check fixture: a seeded lock-order
// cycle (the two-mutex deadlock the race detector cannot see) and
// blocking operations under a held lock, next to code that must pass.
package lockorderbad

import "sync"

// Pair holds the two mutexes of the seeded deadlock.
type Pair struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
	n  int
}

// LockAThenB takes a before b: one half of the cycle.
func (p *Pair) LockAThenB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
}

// LockBThenA takes b before a: the other half. Together with
// LockAThenB this is the classic AB/BA deadlock.
func (p *Pair) LockBThenA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
}

// SendWhileLocked performs a channel send under a held lock: a slow
// receiver wedges every other acquirer.
func (p *Pair) SendWhileLocked() {
	p.a.Lock()
	defer p.a.Unlock()
	p.ch <- p.n
}

// SuppressedSend is the same bug with an audited justification.
func (p *Pair) SuppressedSend() {
	p.a.Lock()
	defer p.a.Unlock()
	//hawqcheck:ignore lockorder the channel is buffered and owned by this goroutine
	p.ch <- p.n
}

// CleanNested takes a then b everywhere, matching LockAThenB's order:
// consistent ordering is not a cycle.
func (p *Pair) CleanNested() {
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
}

// CleanNonBlockingSend sends under the lock but with a default case,
// which cannot block.
func (p *Pair) CleanNonBlockingSend() {
	p.a.Lock()
	defer p.a.Unlock()
	select {
	case p.ch <- p.n:
	default:
	}
}

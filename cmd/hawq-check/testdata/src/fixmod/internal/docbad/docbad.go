package docbad

// Documented carries a doc comment and passes.
type Documented struct{}

type Undocumented struct{}

// DocFunc carries a doc comment and passes.
func DocFunc() {}

func BareFunc() {}

// DocConst carries a doc comment and passes.
const DocConst = 1

const BareConst = 2

var BareVar int

func unexported() {}

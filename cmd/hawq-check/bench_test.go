package main

import (
	"path/filepath"
	"testing"
)

// BenchmarkHawqCheckSelf measures one full analyzer run over the real
// repository — load, type-check, whole-program fixpoint, all ten
// analyzers. scripts/bench.sh records it in BENCH_micro.json; the
// budget is well under 10s so the gate stays cheap enough to run on
// every change.
func BenchmarkHawqCheckSelf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := NewChecker(filepath.Join("..", ".."))
		if err != nil {
			b.Fatal(err)
		}
		paths, err := c.DiscoverPackages()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Check(paths); err != nil {
			b.Fatal(err)
		}
		if len(c.Findings) != 0 {
			b.Fatalf("repo not clean: %d findings", len(c.Findings))
		}
	}
}

package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerClockwall bans raw wall-clock access everywhere except the
// clock abstraction itself (Checker.ClockAllowPkgs, default
// internal/clock): time.Now, time.Sleep, time.Since, time.Until,
// time.After, time.AfterFunc, time.Tick, time.NewTicker and
// time.NewTimer must be reached through an injected clock.Clock so
// every subsystem — not just the simulated components the determinism
// analyzer covers — stays drivable by clock.Sim. A query result that
// depends on time.Now (the old current_date), a benchmark that must
// measure real wall time, or a leak detector that genuinely waits for
// the runtime are the only legitimate exceptions, and each carries an
// inline //hawqcheck:ignore clockwall comment stating why.
var analyzerClockwall = &Analyzer{
	Name: nameClockwall,
	Doc:  "raw time.Now/Sleep/After/... outside internal/clock and the audited allowlist",
	Run:  runClockwall,
}

func runClockwall(c *Checker, pkg *Package) {
	for _, allowed := range c.ClockAllowPkgs {
		if pkg.Path == allowed {
			return
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgPathOfSelector(pkg.Info, sel) != "time" {
				return true
			}
			// Types (time.Duration, time.Time) and pure constructors
			// (time.Date, time.Unix) are fine; only wall-clock reads
			// and waits are banned.
			if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return false
			}
			if nondeterministicTimeFuncs[sel.Sel.Name] {
				c.report(pkg, sel.Pos(), nameClockwall,
					fmt.Sprintf("time.%s outside internal/clock; take a clock.Clock so the subsystem stays drivable by clock.Sim", sel.Sel.Name))
			}
			return false
		})
	}
}

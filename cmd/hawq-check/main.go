// Command hawq-check is the project's static-analysis gate. It loads
// and type-checks every package in the module using only the standard
// library (go/parser, go/ast, go/types — no golang.org/x/tools) and
// enforces five project invariants:
//
//	mutexdiscipline  Lock() must have a matching Unlock() in the same
//	                 function, and structs containing sync.Mutex must
//	                 not be copied by value.
//	goleak           goroutines launched in internal/ library code must
//	                 be tied to a sync.WaitGroup, a stop channel, or a
//	                 context.Context.
//	errdrop          error returns of project APIs must not be
//	                 discarded with `_ =` or a bare call statement.
//	determinism      the simulated components (internal/hdfs,
//	                 internal/interconnect, internal/stinger,
//	                 internal/tpch) must route time and randomness
//	                 through an injected clock.Clock / seeded
//	                 *rand.Rand, never time.Now, time.Sleep or the
//	                 global math/rand source.
//	docstrings       every exported identifier carries a doc comment
//	                 (the DESIGN.md promise).
//
// A finding can be suppressed with a trailing or preceding comment:
//
//	//hawqcheck:ignore errdrop          (one analyzer)
//	//hawqcheck:ignore goleak,errdrop   (several)
//	//hawqcheck:ignore                  (all analyzers on that line)
//
// Usage:
//
//	hawq-check [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Findings print as "file:line: analyzer: message" and a nonzero exit
// status reports that violations exist.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hawq-check:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	c, err := NewChecker(cwd)
	if err != nil {
		return err
	}
	paths, err := resolveArgs(c, cwd, args)
	if err != nil {
		return err
	}
	if err := c.Check(paths); err != nil {
		return err
	}
	for _, f := range c.Findings {
		rel := f
		if r, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(c.Findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// resolveArgs turns command-line package patterns into import paths.
// Supported forms: none / "./..." (whole module), "./dir/..." (subtree)
// and "./dir" (one package).
func resolveArgs(c *Checker, cwd string, args []string) ([]string, error) {
	all, err := c.DiscoverPackages()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	var out []string
	seen := map[string]bool{}
	for _, arg := range args {
		dir, recursive := arg, false
		if d, ok := strings.CutSuffix(arg, "/..."); ok {
			dir, recursive = d, true
		}
		if dir == "." || dir == "" {
			if recursive {
				for _, p := range all {
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
				continue
			}
			dir = cwd
		}
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, dir)
		}
		rel, err := filepath.Rel(c.RootDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %q is outside module %s", arg, c.ModulePath)
		}
		prefix := c.ModulePath
		if rel != "." {
			prefix = c.ModulePath + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range all {
			ok := p == prefix || (recursive && strings.HasPrefix(p, prefix+"/"))
			if ok && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", arg)
		}
	}
	return out, nil
}

// Command hawq-check is the project's static-analysis gate. It loads
// and type-checks every package in the module using only the standard
// library (go/parser, go/ast, go/types — no golang.org/x/tools) and
// enforces ten project invariants. The v1 analyzers are per-function:
//
//	mutexdiscipline  Lock() must have a matching Unlock() in the same
//	                 function, and structs containing sync.Mutex must
//	                 not be copied by value.
//	goleak           goroutines launched in internal/ library code must
//	                 be tied to a sync.WaitGroup, a stop channel, or a
//	                 context.Context.
//	errdrop          error returns of project APIs must not be
//	                 discarded with `_ =` or a bare call statement.
//	determinism      the simulated components (internal/hdfs,
//	                 internal/interconnect, internal/stinger,
//	                 internal/tpch) must route time and randomness
//	                 through an injected clock.Clock / seeded
//	                 *rand.Rand, never time.Now, time.Sleep or the
//	                 global math/rand source.
//	docstrings       every exported identifier carries a doc comment
//	                 (the DESIGN.md promise).
//
// The v2 analyzers are whole-program: they share a static call graph,
// class-hierarchy interface resolution, and per-function summaries
// computed to a fixpoint (program.go):
//
//	lockorder        cycles in the global mutex-acquisition graph
//	                 (potential deadlocks) and blocking operations —
//	                 channel ops, selects, WaitGroup.Wait, net I/O —
//	                 performed while a named lock is held.
//	ctxflow          every unbounded loop and blocking select on the
//	                 query path (executor, cluster, interconnect,
//	                 resource, engine) must observe cancellation
//	                 (ctx.Done/Err or a stop channel) on some path.
//	batchlife        pooled types.Batch and types.VecBatch lifetimes:
//	                 use-after-put, double puts, and arena Row views
//	                 escaping their batch's release without Clone.
//	clockwall        raw time.Now/Sleep/Since/After/... anywhere but
//	                 internal/clock; everything else takes an injected
//	                 clock.Clock so the system stays drivable by
//	                 clock.Sim.
//	wiresafe         structs reachable from the gob wire surface (the
//	                 self-described plan) must not carry unexported
//	                 data fields (silently dropped), chans or funcs
//	                 (encode-time failures).
//
// A finding can be suppressed with a trailing or preceding comment,
// optionally followed by a justification:
//
//	//hawqcheck:ignore errdrop          (one analyzer)
//	//hawqcheck:ignore goleak,errdrop   (several)
//	//hawqcheck:ignore                  (all analyzers on that line)
//
// Usage:
//
//	hawq-check [-json] [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Findings print as "file:line: analyzer: message" — or, with -json, as
// a JSON array of {file, line, analyzer, message} objects for tooling —
// and a nonzero exit status reports that violations exist.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hawq-check:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	jsonOut := false
	rest := make([]string, 0, len(args))
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		rest = append(rest, a)
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	c, err := NewChecker(cwd)
	if err != nil {
		return err
	}
	paths, err := resolveArgs(c, cwd, rest)
	if err != nil {
		return err
	}
	if err := c.Check(paths); err != nil {
		return err
	}
	relativize(c.Findings, cwd)
	if jsonOut {
		if err := writeJSON(os.Stdout, c.Findings); err != nil {
			return err
		}
	} else {
		for _, f := range c.Findings {
			fmt.Println(f)
		}
	}
	if len(c.Findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// relativize rewrites finding paths under base to relative form, which
// keeps output stable across checkouts.
func relativize(fs []Finding, base string) {
	for i := range fs {
		if r, err := filepath.Rel(base, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			fs[i].Pos.Filename = filepath.ToSlash(r)
		}
	}
}

// jsonFinding is the machine-readable diagnostic shape emitted by
// -json; scripts/check.sh archives the array as the analysis report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits findings as an indented JSON array (always an array,
// never null, so consumers can index unconditionally).
func writeJSON(w io.Writer, fs []Finding) error {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File:     filepath.ToSlash(f.Pos.Filename),
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// resolveArgs turns command-line package patterns into import paths.
// Supported forms: none / "./..." (whole module), "./dir/..." (subtree)
// and "./dir" (one package).
func resolveArgs(c *Checker, cwd string, args []string) ([]string, error) {
	all, err := c.DiscoverPackages()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	var out []string
	seen := map[string]bool{}
	for _, arg := range args {
		dir, recursive := arg, false
		if d, ok := strings.CutSuffix(arg, "/..."); ok {
			dir, recursive = d, true
		}
		if dir == "." || dir == "" {
			if recursive {
				for _, p := range all {
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
				continue
			}
			dir = cwd
		}
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, dir)
		}
		rel, err := filepath.Rel(c.RootDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %q is outside module %s", arg, c.ModulePath)
		}
		prefix := c.ModulePath
		if rel != "." {
			prefix = c.ModulePath + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range all {
			ok := p == prefix || (recursive && strings.HasPrefix(p, prefix+"/"))
			if ok && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", arg)
		}
	}
	return out, nil
}

package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats a finding as file:line: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// ignores maps filename -> line -> analyzer names suppressed there
	// (empty list = all analyzers).
	ignores map[string]map[int][]string
	// funcBodies maps a function or method object to its declaration,
	// so analyzers can follow same-package calls.
	funcBodies map[types.Object]*ast.FuncDecl
}

// Checker loads a module's packages with go/parser + go/types (no
// golang.org/x/tools) and runs the analyzers over them.
type Checker struct {
	Fset *token.FileSet
	// ModulePath is the module being checked; import paths under it are
	// resolved from RootDir, everything else from GOROOT source.
	ModulePath string
	RootDir    string
	// DeterminismPkgs are the import paths whose code must route
	// time/rand through injected sources (the simulated components).
	DeterminismPkgs []string
	// CtxflowPkgs are the import paths whose unbounded loops and
	// blocking selects must observe query cancellation (ctx.Done /
	// Ctx.Err on some path) — the ctxflow analyzer's scope.
	CtxflowPkgs []string
	// ClockAllowPkgs are the import paths allowed to call the raw time
	// package (clockwall analyzer). Everything else must go through
	// internal/clock or carry an inline //hawqcheck:ignore clockwall
	// justification.
	ClockAllowPkgs []string
	// BatchPkg is the import path providing the pooled batch arenas
	// (GetBatch/PutBatch and GetVecBatch/PutVecBatch) whose lifetimes
	// batchlife tracks.
	BatchPkg string
	// Analyzers to run; defaults to allAnalyzers when nil.
	Analyzers []*Analyzer

	std      types.ImporterFrom
	pkgs     map[string]*Package
	loading  map[string]bool
	program  *program
	wire     *wiresafe
	Findings []Finding
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(c *Checker, pkg *Package)
}

// Analyzer names, shared by the Analyzer values and their Run
// functions (a constant avoids an initialization cycle).
const (
	nameMutex       = "mutexdiscipline"
	nameGoleak      = "goleak"
	nameErrdrop     = "errdrop"
	nameDeterminism = "determinism"
	nameDocstrings  = "docstrings"
	nameLockorder   = "lockorder"
	nameCtxflow     = "ctxflow"
	nameBatchlife   = "batchlife"
	nameClockwall   = "clockwall"
	nameWiresafe    = "wiresafe"
)

// allAnalyzers is the default analyzer suite, in reporting order: the
// per-function v1 checks first, then the whole-program v2 checks.
var allAnalyzers = []*Analyzer{
	analyzerMutex,
	analyzerGoleak,
	analyzerErrdrop,
	analyzerDeterminism,
	analyzerDocstrings,
	analyzerLockorder,
	analyzerCtxflow,
	analyzerBatchlife,
	analyzerClockwall,
	analyzerWiresafe,
}

// defaultDeterminismPkgs lists the simulated components (relative to
// the module path) that must be deterministic and replayable.
var defaultDeterminismPkgs = []string{
	"internal/hdfs",
	"internal/interconnect",
	"internal/resource",
	"internal/stinger",
	"internal/tpch",
	"internal/wal",
}

// defaultCtxflowPkgs lists the query-path packages (relative to the
// module path) whose unbounded loops must observe cancellation: the
// packages a stuck query would wedge.
var defaultCtxflowPkgs = []string{
	"internal/cluster",
	"internal/engine",
	"internal/executor",
	"internal/interconnect",
	"internal/resource",
	"internal/session",
	"internal/task",
}

// defaultClockAllowPkgs lists the packages (relative to the module
// path) allowed to touch the raw time package: only the clock
// abstraction itself. Everything else must take a clock.Clock so the
// whole system stays drivable by clock.Sim.
var defaultClockAllowPkgs = []string{
	"internal/clock",
}

// NewChecker creates a checker for the module rooted at dir. It reads
// the module path from go.mod.
func NewChecker(dir string) (*Checker, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	c := &Checker{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		RootDir:    root,
	}
	for _, p := range defaultDeterminismPkgs {
		c.DeterminismPkgs = append(c.DeterminismPkgs, modPath+"/"+p)
	}
	for _, p := range defaultCtxflowPkgs {
		c.CtxflowPkgs = append(c.CtxflowPkgs, modPath+"/"+p)
	}
	for _, p := range defaultClockAllowPkgs {
		c.ClockAllowPkgs = append(c.ClockAllowPkgs, modPath+"/"+p)
	}
	c.BatchPkg = modPath + "/internal/types"
	c.init()
	return c, nil
}

func (c *Checker) init() {
	if c.Fset == nil {
		c.Fset = token.NewFileSet()
	}
	if c.Analyzers == nil {
		c.Analyzers = allAnalyzers
	}
	c.std = importer.ForCompiler(c.Fset, "source", nil).(types.ImporterFrom)
	c.pkgs = map[string]*Package{}
	c.loading = map[string]bool{}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// DiscoverPackages returns the import paths of every package directory
// under the module root, skipping testdata, hidden and vendor dirs.
func (c *Checker) DiscoverPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(c.RootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != c.RootDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(c.RootDir, p)
				if err != nil {
					return err
				}
				ip := c.ModulePath
				if rel != "." {
					ip = c.ModulePath + "/" + filepath.ToSlash(rel)
				}
				paths = append(paths, ip)
				break
			}
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

// Check loads, type-checks and analyzes the given import paths (plus
// their intra-module dependencies). Findings accumulate in c.Findings.
func (c *Checker) Check(paths []string) error {
	for _, p := range paths {
		if _, err := c.load(p); err != nil {
			return err
		}
	}
	// Analyze only the requested packages, in deterministic order.
	sort.Strings(paths)
	for _, p := range paths {
		pkg := c.pkgs[p]
		for _, a := range c.Analyzers {
			a.Run(c, pkg)
		}
	}
	sort.Slice(c.Findings, func(i, j int) bool {
		a, b := c.Findings[i], c.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return nil
}

// dirFor maps an intra-module import path to its directory.
func (c *Checker) dirFor(path string) string {
	if path == c.ModulePath {
		return c.RootDir
	}
	rel := strings.TrimPrefix(path, c.ModulePath+"/")
	return filepath.Join(c.RootDir, filepath.FromSlash(rel))
}

func (c *Checker) isModulePath(path string) bool {
	return path == c.ModulePath || strings.HasPrefix(path, c.ModulePath+"/")
}

// load parses and type-checks one intra-module package (memoized).
func (c *Checker) load(path string) (*Package, error) {
	if pkg, ok := c.pkgs[path]; ok {
		return pkg, nil
	}
	if c.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	c.loading[path] = true
	defer delete(c.loading, path)

	dir := c.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(c.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*checkerImporter)(c)}
	tpkg, err := conf.Check(path, c.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	pkg.ignores = collectIgnores(c.Fset, files)
	pkg.funcBodies = collectFuncBodies(files, info)
	c.pkgs[path] = pkg
	return pkg, nil
}

// checkerImporter resolves intra-module imports from the checked tree
// and everything else (stdlib) from source via GOROOT.
type checkerImporter Checker

// Import implements types.Importer.
func (ci *checkerImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (ci *checkerImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	c := (*Checker)(ci)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if c.isModulePath(path) {
		pkg, err := c.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}

// report records a finding unless suppressed by a
// //hawqcheck:ignore comment on the same or the preceding line.
func (c *Checker) report(pkg *Package, pos token.Pos, analyzer, msg string) {
	p := c.Fset.Position(pos)
	if suppressed(pkg.ignores, p, analyzer) {
		return
	}
	c.Findings = append(c.Findings, Finding{Pos: p, Analyzer: analyzer, Message: msg})
}

func suppressed(ignores map[string]map[int][]string, p token.Position, analyzer string) bool {
	lines := ignores[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		names, ok := lines[line]
		if !ok {
			continue
		}
		if len(names) == 0 {
			return true
		}
		for _, n := range names {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans comments for the suppression directive:
//
//	//hawqcheck:ignore analyzer1,analyzer2   (no names = all analyzers)
//
// A directive suppresses findings on its own line and the line below.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimPrefix(cm.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "hawqcheck:ignore")
				if !ok {
					continue
				}
				var names []string
				for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					// Trailing prose after the analyzer list is allowed:
					// stop at the first token that is not a known analyzer.
					known := false
					for _, a := range allAnalyzers {
						if field == a.Name {
							known = true
						}
					}
					if !known {
						break
					}
					names = append(names, field)
				}
				p := fset.Position(cm.Pos())
				if out[p.Filename] == nil {
					out[p.Filename] = map[int][]string{}
				}
				out[p.Filename][p.Line] = names
			}
		}
	}
	return out
}

// collectFuncBodies indexes function and method declarations by their
// types.Object so analyzers can follow same-package calls.
func collectFuncBodies(files []*ast.File, info *types.Info) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := info.Defs[fd.Name]; obj != nil {
				out[obj] = fd
			}
		}
	}
	return out
}

// calleeObject resolves the function object a call expression invokes,
// or nil for indirect calls and type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

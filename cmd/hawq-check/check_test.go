package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite fixture golden files")

// newFixtureChecker loads the fixture module under testdata with a
// single analyzer enabled.
func newFixtureChecker(t *testing.T, a *Analyzer) *Checker {
	t.Helper()
	c, err := NewChecker(filepath.Join("testdata", "src", "fixmod"))
	if err != nil {
		t.Fatal(err)
	}
	c.Analyzers = []*Analyzer{a}
	return c
}

// fixtureFindings formats findings with paths relative to the fixture
// module root, matching the golden files.
func fixtureFindings(c *Checker) string {
	var b strings.Builder
	for _, f := range c.Findings {
		rel, err := filepath.Rel(c.RootDir, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d: %s: %s\n", filepath.ToSlash(rel), f.Pos.Line, f.Analyzer, f.Message)
	}
	return b.String()
}

// TestFixtures proves every analyzer fires on its known-bad fixture
// package and that the findings match the golden file checked in next
// to the fixture. Run with -update to regenerate the goldens.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *Analyzer
	}{
		{"mutexbad", analyzerMutex},
		{"goleakbad", analyzerGoleak},
		{"errdropbad", analyzerErrdrop},
		{"simbad", analyzerDeterminism},
		{"docbad", analyzerDocstrings},
		{"lockorderbad", analyzerLockorder},
		{"ctxflowbad", analyzerCtxflow},
		{"batchlifebad", analyzerBatchlife},
		{"clockwallbad", analyzerClockwall},
		{"wiresafebad", analyzerWiresafe},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			c := newFixtureChecker(t, tc.analyzer)
			switch tc.analyzer {
			case analyzerDeterminism:
				c.DeterminismPkgs = []string{"fixmod/internal/" + tc.dir}
			case analyzerCtxflow:
				c.CtxflowPkgs = []string{"fixmod/internal/" + tc.dir}
			case analyzerBatchlife:
				c.BatchPkg = "fixmod/internal/fixtypes"
			}
			if err := c.Check([]string{"fixmod/internal/" + tc.dir}); err != nil {
				t.Fatal(err)
			}
			got := fixtureFindings(c)
			golden := filepath.Join("testdata", "src", "fixmod", "internal", tc.dir, "findings.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.dir, got, want)
			}
			if len(c.Findings) == 0 {
				t.Errorf("%s fixture produced no findings; the analyzer never fired", tc.analyzer.Name)
			}
		})
	}
}

// TestSuppression verifies the //hawqcheck:ignore directive keeps the
// annotated line out of the findings while the rest still fire.
func TestSuppression(t *testing.T) {
	c := newFixtureChecker(t, analyzerErrdrop)
	if err := c.Check([]string{"fixmod/internal/errdropbad"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range c.Findings {
		if f.Pos.Line >= 30 && f.Pos.Line <= 34 {
			t.Errorf("suppressed site still reported: %s", f)
		}
	}
	if len(c.Findings) == 0 {
		t.Fatal("unsuppressed drops were not reported")
	}
}

// TestJSONOutput locks down the -json diagnostic shape scripts/check.sh
// archives: the clockwallbad fixture rendered through writeJSON must
// match the checked-in golden byte for byte.
func TestJSONOutput(t *testing.T) {
	c := newFixtureChecker(t, analyzerClockwall)
	if err := c.Check([]string{"fixmod/internal/clockwallbad"}); err != nil {
		t.Fatal(err)
	}
	for i := range c.Findings {
		rel, err := filepath.Rel(c.RootDir, c.Findings[i].Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		c.Findings[i].Pos.Filename = filepath.ToSlash(rel)
	}
	var b strings.Builder
	if err := writeJSON(&b, c.Findings); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "src", "fixmod", "internal", "clockwallbad", "json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("json output mismatch\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestRepoIsClean is the meta-test: the full analyzer suite over the
// real repository must report nothing. This is the same gate
// scripts/check.sh enforces; a regression that introduces a violation
// fails here with the finding text.
func TestRepoIsClean(t *testing.T) {
	c, err := NewChecker(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := c.DiscoverPackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no packages discovered")
	}
	if err := c.Check(paths); err != nil {
		t.Fatal(err)
	}
	for _, f := range c.Findings {
		t.Errorf("%s", f)
	}
}

package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerMutex enforces lock discipline: every sync.Mutex/RWMutex
// Lock() (or RLock()) must have a matching Unlock() (RUnlock()) on the
// same lock expression within the same function — deferred or on the
// explicit paths — and structs containing a mutex must not be copied
// by value (receivers, parameters, or assignments).
var analyzerMutex = &Analyzer{
	Name: nameMutex,
	Doc:  "Lock() without matching Unlock(), and by-value copies of mutex-holding structs",
	Run:  runMutex,
}

func runMutex(c *Checker, pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkMutexCopies(c, pkg, fd)
			if fd.Body != nil {
				checkLockPairs(c, pkg, fd)
			}
		}
		// Top-level by-value copies in var declarations.
		for _, decl := range file.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				checkCopySpecs(c, pkg, gd)
			}
		}
	}
}

// lockMethods maps a lock acquisition method to its release method.
var lockMethods = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

// checkLockPairs flags Lock/RLock calls with no matching release on the
// same lock expression anywhere in the function (including deferred
// calls and nested function literals, which commonly wrap the unlock).
func checkLockPairs(c *Checker, pkg *Package, fd *ast.FuncDecl) {
	type lockUse struct {
		pos    ast.Node
		expr   string
		method string
	}
	var locks []lockUse
	released := map[string]bool{} // "expr\x00method" of seen releases
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isMutexRecv(pkg.Info, sel) {
			return true
		}
		name := sel.Sel.Name
		recv := types.ExprString(sel.X)
		if unlock, ok := lockMethods[name]; ok {
			locks = append(locks, lockUse{pos: call, expr: recv, method: unlock})
		} else if name == "Unlock" || name == "RUnlock" {
			released[recv+"\x00"+name] = true
		}
		return true
	})
	for _, l := range locks {
		if !released[l.expr+"\x00"+l.method] {
			c.report(pkg, l.pos.Pos(), nameMutex,
				fmt.Sprintf("%s.%s() has no matching %s() in this function; unlock on every path (prefer defer)",
					l.expr, releaseToAcquire(l.method), l.method))
		}
	}
}

func releaseToAcquire(release string) string {
	for acq, rel := range lockMethods {
		if rel == release {
			return acq
		}
	}
	return release
}

// isMutexRecv reports whether sel selects a method or field on a
// sync.Mutex or sync.RWMutex (directly or via an embedded/addressable
// field).
func isMutexRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	if s, ok := info.Selections[sel]; ok {
		return isMutexType(s.Recv())
	}
	if tv, ok := info.Types[sel.X]; ok {
		return isMutexType(tv.Type)
	}
	return false
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a
// pointer to one.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsMutex reports whether a value of type t embeds a sync.Mutex
// or sync.RWMutex (so copying it by value copies lock state).
func containsMutex(t types.Type) bool {
	return containsMutexSeen(t, map[types.Type]bool{})
}

func containsMutexSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isMutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexSeen(u.Elem(), seen)
	}
	return false
}

// checkMutexCopies flags by-value receivers and parameters of
// mutex-holding struct types, and by-value assignments of such values
// inside the function body.
func checkMutexCopies(c *Checker, pkg *Package, fd *ast.FuncDecl) {
	flagField := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := pkg.Info.Types[f.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsMutex(tv.Type) {
				c.report(pkg, f.Type.Pos(), nameMutex,
					fmt.Sprintf("%s passes %s by value, copying its mutex; use a pointer", kind, tv.Type))
			}
		}
	}
	flagField(fd.Recv, "receiver")
	if fd.Type.Params != nil {
		flagField(fd.Type.Params, "parameter")
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i < len(st.Lhs) {
					checkCopyExpr(c, pkg, rhs)
				}
			}
		case *ast.GenDecl:
			checkCopySpecs(c, pkg, st)
		}
		return true
	})
}

// checkCopySpecs flags `var x = <copy>` declarations.
func checkCopySpecs(c *Checker, pkg *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			checkCopyExpr(c, pkg, v)
		}
	}
}

// checkCopyExpr flags an expression that copies a mutex-holding struct
// by value: a dereference (*p) or a plain variable/field read. It skips
// composite literals and calls, which create a fresh value rather than
// copying a live one.
func checkCopyExpr(c *Checker, pkg *Package, e ast.Expr) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		// Reading a package-level or local *name* of function type,
		// constant, etc. — only variables can hold a mutex.
		if _, isVar := pkg.Info.Uses[id].(*types.Var); !isVar {
			return
		}
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsMutex(tv.Type) {
		c.report(pkg, e.Pos(), nameMutex,
			fmt.Sprintf("copies %s by value, copying its mutex; use a pointer", tv.Type))
	}
}

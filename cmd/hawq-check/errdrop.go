package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerErrdrop flags discarded error returns from project APIs:
// bare call statements (`f()`) and blank assignments (`_ = f()`,
// `v, _ := f()`) where the dropped result is an error produced by a
// function declared in this module. Stdlib errors (resp.Body.Close()
// and friends) are out of scope; deferred cleanup calls are accepted
// idiom and skipped.
var analyzerErrdrop = &Analyzer{
	Name: nameErrdrop,
	Doc:  "discarded error returns (`_ =` and bare calls) from project APIs",
	Run:  runErrdrop,
}

func runErrdrop(c *Checker, pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pos, name, ok := dropsProjectError(c, pkg, call, nil); ok {
					c.report(pkg, pos.Pos(), nameErrdrop,
						fmt.Sprintf("result of %s contains an error that is silently dropped; handle it or assign it", name))
				}
			case *ast.AssignStmt:
				// Single-call form: lhs..., _ := f().
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if pos, name, ok := dropsProjectError(c, pkg, call, st.Lhs); ok {
					c.report(pkg, pos.Pos(), nameErrdrop,
						fmt.Sprintf("error return of %s is assigned to _; handle it", name))
				}
			}
			return true
		})
	}
}

// dropsProjectError reports whether call discards an error returned by
// a module-local function. lhs is nil for a bare call statement; for an
// assignment it is checked position-by-position for blanked errors.
func dropsProjectError(c *Checker, pkg *Package, call *ast.CallExpr, lhs []ast.Expr) (ast.Node, string, bool) {
	obj := calleeObject(pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || !c.isModulePath(obj.Pkg().Path()) {
		return nil, "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil, "", false
	}
	res := sig.Results()
	if lhs == nil {
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				return call, obj.Name(), true
			}
		}
		return nil, "", false
	}
	// Multi-value assignment: a blank in an error position drops it.
	// (Single-value `_ = f()` has lhs[0] blank and res.Len() == 1.)
	if len(lhs) != res.Len() {
		return nil, "", false
	}
	for i, l := range lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name == "_" && isErrorType(res.At(i).Type()) {
			return l, obj.Name(), true
		}
	}
	return nil, "", false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerGoleak flags `go` statements in internal/ library code whose
// goroutine is not tied to a lifecycle owner: a sync.WaitGroup, a stop
// channel (any chan struct{} it selects on, receives from, or closes),
// or a context.Context. This is the pattern behind leaked ack-loops in
// internal/interconnect and heartbeat loops in internal/hdfs and
// internal/cluster: a goroutine nobody can wait for or stop.
//
// The check is structural: the launched function body (following
// same-package calls two levels deep) must mention one of the lifecycle
// signals. Intentional fire-and-forget goroutines need an explicit
// //hawqcheck:ignore goleak suppression.
var analyzerGoleak = &Analyzer{
	Name: nameGoleak,
	Doc:  "goroutines in internal/ not tied to a WaitGroup, stop channel, or context",
	Run:  runGoleak,
}

func runGoleak(c *Checker, pkg *Package) {
	if !strings.Contains(pkg.Path+"/", "/internal/") {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineTied(pkg, gs.Call, 2) {
				c.report(pkg, gs.Pos(), nameGoleak,
					"goroutine is not tied to a sync.WaitGroup, stop channel, or context; it can leak past its owner's lifetime")
			}
			return true
		})
	}
}

// goroutineTied reports whether the goroutine launched by call is tied
// to a lifecycle owner, following same-package callees up to depth.
func goroutineTied(pkg *Package, call *ast.CallExpr, depth int) bool {
	// Arguments passed to the goroutine (e.g. a context or stop channel
	// handed to a helper) count as ties too.
	for _, arg := range call.Args {
		if exprIsLifecycle(pkg.Info, arg) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyTied(pkg, lit.Body, depth)
	}
	if obj := calleeObject(pkg.Info, call); obj != nil {
		if fd, ok := pkg.funcBodies[obj]; ok && fd.Body != nil {
			return bodyTied(pkg, fd.Body, depth)
		}
	}
	return false
}

// bodyTied scans a function body for lifecycle signals.
func bodyTied(pkg *Package, body *ast.BlockStmt, depth int) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				// wg.Done() / wg.Add(...) / wg.Wait() on a sync.WaitGroup.
				if isWaitGroupMethod(pkg.Info, sel) {
					tied = true
					return false
				}
			}
			// close(stopCh) — the goroutine owns a stop signal.
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "close" && len(e.Args) == 1 {
				if exprIsLifecycle(pkg.Info, e.Args[0]) {
					tied = true
					return false
				}
			}
			// Follow same-package helpers (e.g. a push() that selects
			// on the done channel).
			if depth > 0 {
				if obj := calleeObject(pkg.Info, e); obj != nil {
					if fd, ok := pkg.funcBodies[obj]; ok && fd.Body != nil && fd.Body != body {
						if bodyTied(pkg, fd.Body, depth-1) {
							tied = true
							return false
						}
					}
				}
			}
		case *ast.UnaryExpr:
			// <-done receives.
			if e.Op == token.ARROW && exprIsLifecycle(pkg.Info, e.X) {
				tied = true
				return false
			}
		case ast.Expr:
			if exprIsLifecycle(pkg.Info, e) {
				tied = true
				return false
			}
		}
		return true
	})
	return tied
}

// exprIsLifecycle reports whether e's type is a lifecycle signal: a
// struct{}-element channel (stop/done channels) or a context.Context.
func exprIsLifecycle(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ch, ok := t.Underlying().(*types.Chan); ok {
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
		return false
	}
	return isContextType(t)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroupMethod reports whether sel is a method call on a
// sync.WaitGroup.
func isWaitGroupMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// analyzerDocstrings enforces the DESIGN.md promise that every exported
// identifier carries a doc comment: package clauses (one documented
// file per package), exported package-level functions, methods on
// exported types, and exported type/const/var specs (a doc comment on
// the enclosing declaration group counts, per Go convention).
var analyzerDocstrings = &Analyzer{
	Name: nameDocstrings,
	Doc:  "exported identifiers without doc comments",
	Run:  runDocstrings,
}

func runDocstrings(c *Checker, pkg *Package) {
	// Package comment: at least one file must carry one (main packages
	// document the command the same way).
	documented := false
	var firstPkgClause token.Pos
	for i, file := range pkg.Files {
		if file.Doc != nil {
			documented = true
		}
		if i == 0 {
			firstPkgClause = file.Name.Pos()
		}
	}
	if !documented {
		c.report(pkg, firstPkgClause, nameDocstrings,
			fmt.Sprintf("package %s has no package doc comment in any file", pkg.Types.Name()))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(c, pkg, d)
			case *ast.GenDecl:
				checkGenDoc(c, pkg, d)
			}
		}
	}
}

func checkFuncDoc(c *Checker, pkg *Package, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	if d.Recv != nil {
		// Methods count when their receiver's base type is exported;
		// methods on unexported types are not reachable API.
		if base := receiverTypeName(d.Recv); base == "" || !ast.IsExported(base) {
			return
		}
	}
	what := "function"
	if d.Recv != nil {
		what = "method"
	}
	c.report(pkg, d.Name.Pos(), nameDocstrings,
		fmt.Sprintf("exported %s %s has no doc comment", what, d.Name.Name))
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers look like T[P] — unwrap the index expression.
	switch e := t.(type) {
	case *ast.IndexExpr:
		t = e.X
	case *ast.IndexListExpr:
		t = e.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkGenDoc(c *Checker, pkg *Package, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if ts.Name.IsExported() && ts.Doc == nil && d.Doc == nil {
				c.report(pkg, ts.Name.Pos(), nameDocstrings,
					fmt.Sprintf("exported type %s has no doc comment", ts.Name.Name))
			}
		}
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				// A doc or trailing comment on the spec, or a doc
				// comment on the group, documents the name.
				if vs.Doc == nil && vs.Comment == nil && d.Doc == nil {
					c.report(pkg, name.Pos(), nameDocstrings,
						fmt.Sprintf("exported %s %s has no doc comment", kind, name.Name))
				}
			}
		}
	}
}

package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerBatchlife tracks the lifetime of pooled batches
// (Checker.BatchPkg, default internal/types: GetBatch/PutBatch, the
// encoded GetVecBatch/PutVecBatch pair, and the arena Row views into a
// Batch) inside each function and reports the three misuse classes
// that corrupt rows at a distance — the bug class the chaos
// pool-balance gauge only catches after the fact:
//
//   - use-after-put: any use of a *Batch after an unconditional
//     PutBatch on the same variable in the same statement sequence;
//   - double-put: a second PutBatch on the same variable without an
//     intervening reassignment, including an explicit put when a
//     deferred put is already pending;
//   - escaping arena view: a Row obtained from Batch.Row/AddRow that is
//     used after the batch is released, or returned while a deferred
//     put is pending — retain rows past release with Row.Clone.
//
// The analysis is deliberately intraprocedural and source-ordered:
// conditional puts (inside if/for/select arms) only poison their own
// branch, and handing a batch to another function or channel transfers
// ownership without releasing it. Transfers that alias a released
// batch across functions are out of scope (a documented soundness
// limit).
var analyzerBatchlife = &Analyzer{
	Name: nameBatchlife,
	Doc:  "use-after-put, double puts, and arena row views escaping a pooled Batch or VecBatch release",
	Run:  runBatchlife,
}

func runBatchlife(c *Checker, pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bl := &batchLifeScan{c: c, pkg: pkg,
				released:  map[types.Object]bool{},
				deferPut:  map[types.Object]bool{},
				rowOwner:  map[types.Object]types.Object{},
				rowCloned: map[types.Object]bool{},
			}
			bl.block(fd.Body.List)
			// Function literals get their own scan: their bodies run at
			// another time, so lifetimes do not interleave linearly.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					inner := &batchLifeScan{c: c, pkg: pkg,
						released:  map[types.Object]bool{},
						deferPut:  map[types.Object]bool{},
						rowOwner:  map[types.Object]types.Object{},
						rowCloned: map[types.Object]bool{},
					}
					inner.block(lit.Body.List)
					return false
				}
				return true
			})
		}
	}
}

// batchLifeScan is the per-function state of the linear value-flow
// walk.
type batchLifeScan struct {
	c   *Checker
	pkg *Package
	// released marks batch variables after an unconditional PutBatch.
	released map[types.Object]bool
	// deferPut marks batch variables with a pending deferred PutBatch.
	deferPut map[types.Object]bool
	// rowOwner maps a row-view variable to the batch it aliases.
	rowOwner map[types.Object]types.Object
	// rowCloned marks row variables reassigned from Clone (safe).
	rowCloned map[types.Object]bool
}

// block walks one statement sequence in source order; conditional
// sub-blocks run on a snapshot so their releases do not poison the
// fall-through path.
func (b *batchLifeScan) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		b.stmt(st)
	}
}

func (b *batchLifeScan) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if b.putCall(s.X, false) {
			return
		}
		b.checkUses(s.X)
	case *ast.DeferStmt:
		if call, ok := obligationCall(b.pkg, s.Call, b.c.BatchPkg); ok {
			if obj := argObject(b.pkg, s.Call); obj != nil {
				if b.released[obj] || b.deferPut[obj] {
					b.report(s.Call.Pos(), fmt.Sprintf("deferred %s(%s) duplicates an earlier put; the pool would hand the arena to two owners", putNameFor(obj.Type()), nameOf(obj)))
				}
				b.deferPut[obj] = true
			}
			_ = call
			return
		}
		b.checkUses(s.Call)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if !b.putCall(rhs, false) {
				b.checkUses(rhs)
			}
		}
		for i, lhs := range s.Lhs {
			obj := lhsObject(b.pkg, lhs)
			if obj == nil {
				continue
			}
			if isBatchPtr(obj.Type(), b.c.BatchPkg) {
				// Reassignment gives the variable a fresh, live batch.
				delete(b.released, obj)
				delete(b.deferPut, obj)
			}
			if isRowType(obj.Type(), b.c.BatchPkg) && i < len(s.Rhs) {
				b.trackRow(obj, s.Rhs[i])
			} else if isRowType(obj.Type(), b.c.BatchPkg) && len(s.Rhs) == 1 {
				b.trackRow(obj, s.Rhs[0])
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.checkUses(r)
			if obj := exprObject(b.pkg, r); obj != nil {
				if owner, ok := b.rowOwner[obj]; ok && !b.rowCloned[obj] && b.deferPut[owner] {
					b.report(r.Pos(), fmt.Sprintf("returning arena row %s while %s(%s) is deferred; the view dies with the batch — Clone it first", nameOf(obj), putNameFor(owner.Type()), nameOf(owner)))
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.checkUses(s.Cond)
		b.branch(s.Body.List)
		if s.Else != nil {
			b.branch([]ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Cond != nil {
			b.checkUses(s.Cond)
		}
		b.branch(s.Body.List)
	case *ast.RangeStmt:
		b.checkUses(s.X)
		b.branch(s.Body.List)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				b.branch(cc.Body)
				return false
			}
			if cc, ok := n.(*ast.CommClause); ok {
				b.branch(cc.Body)
				return false
			}
			return true
		})
	case *ast.BlockStmt:
		b.block(s.List)
	case *ast.GoStmt:
		b.checkUses(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.checkUses(v)
					}
					for i, name := range vs.Names {
						if obj := b.pkg.Info.Defs[name]; obj != nil && isRowType(obj.Type(), b.c.BatchPkg) && i < len(vs.Values) {
							b.trackRow(obj, vs.Values[i])
						}
					}
				}
			}
		}
	default:
		if st != nil {
			b.checkUses(st)
		}
	}
}

// branch runs a conditional sub-block on a snapshot of the release
// state: puts inside it poison only the branch, but uses inside it
// still see releases from before the branch.
func (b *batchLifeScan) branch(stmts []ast.Stmt) {
	saveRel := map[types.Object]bool{}
	for k, v := range b.released {
		saveRel[k] = v
	}
	saveDef := map[types.Object]bool{}
	for k, v := range b.deferPut {
		saveDef[k] = v
	}
	b.block(stmts)
	b.released = saveRel
	b.deferPut = saveDef
}

// putCall handles a PutBatch call; it reports double puts and marks
// the argument released. Returns false when the expression is not a
// put.
func (b *batchLifeScan) putCall(e ast.Expr, deferred bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if _, isPut := obligationCall(b.pkg, call, b.c.BatchPkg); !isPut {
		return false
	}
	obj := argObject(b.pkg, call)
	if obj == nil {
		return true
	}
	if b.released[obj] {
		b.report(call.Pos(), fmt.Sprintf("%s(%s) called twice; the second put hands the same arena to two future owners (the pool panics at runtime)", putNameFor(obj.Type()), nameOf(obj)))
	} else if b.deferPut[obj] {
		b.report(call.Pos(), fmt.Sprintf("explicit %s(%s) with a deferred put pending; the deferred call becomes a double put", putNameFor(obj.Type()), nameOf(obj)))
	}
	b.released[obj] = true
	return true
}

// checkUses flags reads of released batches and of row views whose
// batch has been released.
func (b *batchLifeScan) checkUses(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := b.pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if b.released[obj] {
			b.report(id.Pos(), fmt.Sprintf("%s used after %s; the arena may already belong to another operator", id.Name, putNameFor(obj.Type())))
			return true
		}
		if owner, ok := b.rowOwner[obj]; ok && !b.rowCloned[obj] && b.released[owner] {
			b.report(id.Pos(), fmt.Sprintf("arena row %s used after %s(%s); retain rows past release with Clone", id.Name, putNameFor(owner.Type()), nameOf(owner)))
		}
		return true
	})
}

// trackRow records that a row-typed variable aliases a batch arena
// (b.Row(i) / b.AddRow()) or is a safe Clone.
func (b *batchLifeScan) trackRow(obj types.Object, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Row", "AddRow":
		if recv := exprObject(b.pkg, sel.X); recv != nil && isBatchPtr(recv.Type(), b.c.BatchPkg) {
			b.rowOwner[obj] = recv
			delete(b.rowCloned, obj)
		}
	case "Clone":
		b.rowCloned[obj] = true
		delete(b.rowOwner, obj)
	}
}

func (b *batchLifeScan) report(pos token.Pos, msg string) {
	b.c.report(b.pkg, pos, nameBatchlife, msg)
}

// nameOf returns a variable's name for diagnostics.
func nameOf(obj types.Object) string { return obj.Name() }

// obligationCall reports whether call is batchpkg.PutBatch(x) or
// batchpkg.PutVecBatch(x) — the two pool releases batchlife tracks.
func obligationCall(pkg *Package, call *ast.CallExpr, batchPkg string) (*ast.CallExpr, bool) {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	if fn.Pkg().Path() != batchPkg || (fn.Name() != "PutBatch" && fn.Name() != "PutVecBatch") {
		return nil, false
	}
	return call, true
}

// argObject resolves the first call argument to its variable object.
func argObject(pkg *Package, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	return exprObject(pkg, call.Args[0])
}

// exprObject resolves a plain identifier expression to its object.
func exprObject(pkg *Package, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		return obj
	}
	return pkg.Info.Defs[id]
}

// lhsObject resolves an assignment target identifier to its object.
func lhsObject(pkg *Package, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// isBatchPtr reports whether t is *batchpkg.Batch or
// *batchpkg.VecBatch — both pooled with the same single-owner
// discipline.
func isBatchPtr(t types.Type, batchPkg string) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == batchPkg && (obj.Name() == "Batch" || obj.Name() == "VecBatch")
}

// putNameFor returns the pool-release function matching a pooled batch
// variable's type, for diagnostics.
func putNameFor(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "VecBatch" {
			return "PutVecBatch"
		}
	}
	return "PutBatch"
}

// isRowType reports whether t is batchpkg.Row.
func isRowType(t types.Type, batchPkg string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == batchPkg && obj.Name() == "Row"
}

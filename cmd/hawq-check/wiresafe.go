package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzerWiresafe audits every struct reachable from the module's gob
// wire surface — the types passed to gob.Register and gob
// Encoder.Encode calls (the self-described plan of §3.1 and anything
// else the project serializes) — and flags fields gob cannot carry:
//
//   - unexported fields: gob silently drops them, so state that looks
//     plumbed on the QD evaporates on the QE (the reason
//     expr.FuncCall.impl must be explicitly rebound after decode);
//   - chan- and func-typed exported fields: gob refuses to encode a
//     non-nil value at runtime, turning a working plan into a dispatch
//     error the first time the field is set.
//
// Reachability follows exported fields through pointers, slices,
// arrays and maps; an interface-typed field fans out to every
// registered concrete type assignable to it. Types implementing
// gob.GobEncoder or encoding.BinaryMarshaler own their encoding and
// are not descended into. Fields that are deliberately rebuilt on the
// receiving side carry //hawqcheck:ignore wiresafe with a
// justification.
var analyzerWiresafe = &Analyzer{
	Name: nameWiresafe,
	Doc:  "unexported/chan/func fields on structs reachable from the gob wire surface",
	Run:  runWiresafe,
}

func runWiresafe(c *Checker, pkg *Package) {
	ws := c.wiresafeState()
	// Report each offending field once: in the package that defines its
	// struct, when that package comes up for analysis.
	for _, f := range ws.findings {
		if f.pkg == pkg {
			c.report(pkg, f.pos, nameWiresafe, f.msg)
		}
	}
}

// wiresafeFinding is one offending field, anchored at its declaration.
type wiresafeFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// wiresafe is the cached whole-module wire audit.
type wiresafe struct {
	findings []wiresafeFinding
}

// wiresafeState builds (once) the set of wire-reachable types and their
// violations.
func (c *Checker) wiresafeState() *wiresafe {
	if c.wire != nil {
		return c.wire
	}
	ws := &wiresafe{}
	c.wire = ws

	// Collect roots: gob.Register(arg) and gob Encoder.Encode(arg)
	// across every loaded package.
	var roots []types.Type
	var registered []types.Type
	for _, pkg := range c.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				argType := func() types.Type {
					tv, ok := pkg.Info.Types[call.Args[0]]
					if !ok {
						return nil
					}
					return tv.Type
				}
				if pkgPathOfSelector(pkg.Info, sel) == "encoding/gob" && sel.Sel.Name == "Register" {
					if t := argType(); t != nil {
						roots = append(roots, t)
						registered = append(registered, t)
					}
					return true
				}
				if sel.Sel.Name == "Encode" && recvPkgPath(pkg.Info, sel) == "encoding/gob" {
					if t := argType(); t != nil {
						roots = append(roots, t)
					}
				}
				return true
			})
		}
	}

	w := &wireWalker{c: c, ws: ws, registered: registered, seen: map[types.Type]bool{}}
	for _, r := range roots {
		w.walk(r)
	}
	// Deterministic output order.
	sort.Slice(ws.findings, func(i, j int) bool { return ws.findings[i].pos < ws.findings[j].pos })
	return ws
}

// wireWalker traverses the wire-reachable type closure.
type wireWalker struct {
	c          *Checker
	ws         *wiresafe
	registered []types.Type
	seen       map[types.Type]bool
}

func (w *wireWalker) walk(t types.Type) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	switch u := t.(type) {
	case *types.Pointer:
		w.walk(u.Elem())
		return
	case *types.Slice:
		w.walk(u.Elem())
		return
	case *types.Array:
		w.walk(u.Elem())
		return
	case *types.Map:
		w.walk(u.Key())
		w.walk(u.Elem())
		return
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// Fan out to every registered concrete type assignable to the
		// interface — gob decodes interface values via the registry.
		for _, r := range w.registered {
			if types.Implements(r, iface) || types.AssignableTo(r, t) {
				w.walk(r)
			}
		}
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		if st, ok := t.Underlying().(*types.Struct); ok {
			w.structFields(nil, st)
		}
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !w.c.isModulePath(obj.Pkg().Path()) {
		// Stdlib and foreign types own their encoding (time.Time etc.).
		return
	}
	if selfEncoding(named) {
		return
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		w.structFields(named, st)
	}
}

// structFields audits one struct's fields and recurses into the
// exported ones.
func (w *wireWalker) structFields(named *types.Named, st *types.Struct) {
	owner := "struct"
	var pkg *Package
	if named != nil {
		owner = named.Obj().Name()
		pkg = w.pkgOf(named.Obj().Pkg().Path())
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			w.finding(pkg, f, fmt.Sprintf(
				"unexported field %s.%s is silently dropped by gob; export it, mark the struct self-encoding, or rebuild it after decode",
				owner, f.Name()))
			continue
		}
		switch f.Type().Underlying().(type) {
		case *types.Chan:
			w.finding(pkg, f, fmt.Sprintf(
				"chan field %s.%s on a wire struct; gob fails at encode time when it is non-nil", owner, f.Name()))
			continue
		case *types.Signature:
			w.finding(pkg, f, fmt.Sprintf(
				"func field %s.%s on a wire struct; gob fails at encode time when it is non-nil", owner, f.Name()))
			continue
		}
		w.walk(f.Type())
	}
}

// finding records one violation at the field's declaration site.
func (w *wireWalker) finding(pkg *Package, f *types.Var, msg string) {
	if pkg == nil {
		return
	}
	w.ws.findings = append(w.ws.findings, wiresafeFinding{pkg: pkg, pos: f.Pos(), msg: msg})
}

// pkgOf maps an import path back to its loaded Package.
func (w *wireWalker) pkgOf(path string) *Package {
	return w.c.pkgs[path]
}

// selfEncoding reports whether the named type (or its pointer) provides
// its own gob/binary encoding, making field-level audit irrelevant.
func selfEncoding(named *types.Named) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		hasEnc, hasDec := false, false
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "GobEncode", "MarshalBinary":
				hasEnc = true
			case "GobDecode", "UnmarshalBinary":
				hasDec = true
			}
		}
		if hasEnc && hasDec {
			return true
		}
	}
	return false
}

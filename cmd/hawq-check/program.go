package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// program is the whole-program index the v2 analyzers (lockorder,
// ctxflow, batchlife via helpers, wiresafe) share: a static call graph
// over every loaded module package, a class-hierarchy resolution of
// in-module interface method calls, and per-function summaries computed
// to a fixpoint. It is built lazily by Checker.prog() after all
// requested packages (and their intra-module dependencies) are loaded,
// so every analyzer sees the same global view regardless of which
// package it is currently reporting on.
type program struct {
	checker *Checker
	// fns indexes every declared function and method in the module.
	fns map[*types.Func]*funcInfo
	// impls maps an in-module interface method to the corresponding
	// concrete methods of every in-module type implementing the
	// interface (class-hierarchy analysis). Calls through interfaces
	// are resolved against this map: "all implementations" semantics
	// for must-properties (ctxflow), "any implementation" semantics
	// for may-properties (blocking).
	impls map[*types.Func][]*types.Func
}

// funcInfo is the per-function node of the call graph plus its
// fixpoint summaries.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// calls are statically resolved in-module callees.
	calls []*types.Func
	// ifaceCalls are calls through in-module interface methods,
	// resolved via program.impls.
	ifaceCalls []*types.Func

	// directObserves: the body itself mentions ctx.Done()/ctx.Err() or
	// receives from a struct{} stop channel.
	directObserves bool
	// observes: fixpoint closure of directObserves over the call graph.
	observes bool

	// directBlocks: the body itself performs a blocking operation
	// (channel send/recv outside a default-select, blocking select,
	// WaitGroup.Wait, net I/O, time.Sleep).
	directBlocks bool
	blockWhy     string
	// blocks: fixpoint closure of directBlocks.
	blocks bool

	// lockRegions are the source spans during which this function holds
	// a named mutex (receiver field or package var).
	lockRegions []lockRegion
	// acquires: fixpoint set of lock IDs this function may take,
	// directly or through static in-module calls.
	acquires map[string]bool
}

// lockRegion is one held-lock span inside a function, approximated in
// source order: from the Lock() call to the first matching Unlock() on
// the same expression (or to the end of the function when the unlock is
// deferred or absent).
type lockRegion struct {
	id    string // canonical lock identity, e.g. "interconnect.udpNode.mu"
	expr  string // source expression, for messages
	start token.Pos
	end   token.Pos
}

// prog returns the lazily built whole-program index.
func (c *Checker) prog() *program {
	if c.program == nil {
		c.program = buildProgram(c)
	}
	return c.program
}

// buildProgram indexes all loaded packages and runs the summary
// fixpoints.
func buildProgram(c *Checker) *program {
	p := &program{
		checker: c,
		fns:     map[*types.Func]*funcInfo{},
		impls:   map[*types.Func][]*types.Func{},
	}
	// Pass 1: function index.
	for _, pkg := range c.pkgs {
		for obj, decl := range pkg.funcBodies {
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			p.fns[fn] = &funcInfo{obj: fn, decl: decl, pkg: pkg, acquires: map[string]bool{}}
		}
	}
	p.buildCHA()
	// Pass 2: per-function direct facts and call edges.
	for _, fi := range p.fns {
		p.scanFunc(fi)
	}
	// Pass 3: fixpoints.
	p.fixpoint()
	return p
}

// buildCHA populates impls: for every in-module interface method, the
// concrete in-module methods that can stand behind a call to it.
func (p *program) buildCHA() {
	var ifaces []*types.Named
	var concretes []*types.Named
	for _, pkg := range p.checker.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, iface := range ifaces {
		it, ok := iface.Underlying().(*types.Interface)
		if !ok || it.NumMethods() == 0 {
			continue
		}
		for _, impl := range concretes {
			ptr := types.NewPointer(impl)
			if !types.Implements(impl, it) && !types.Implements(ptr, it) {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				if _, known := p.fns[cm]; known {
					p.impls[im] = append(p.impls[im], cm)
				}
			}
		}
	}
	// Deterministic order for iteration stability.
	for im := range p.impls {
		ms := p.impls[im]
		sort.Slice(ms, func(i, j int) bool { return ms[i].FullName() < ms[j].FullName() })
	}
}

// scanFunc extracts the direct facts of one function: call edges,
// cancellation observation, blocking operations, and lock regions.
// Function literals nested in the body are scanned as their own scopes
// (scanBody): a lock acquired inside a closure is released when the
// closure returns, not at the end of the enclosing declaration, and a
// closure's blocking operations do not make the declaring function
// itself blocking (it may never invoke the literal synchronously — a
// documented under-approximation).
func (p *program) scanFunc(fi *funcInfo) {
	p.scanBody(fi, fi.decl.Body, true)
}

// scanBody scans one lexical function scope: the declared body when top
// is true, or one nested function literal.
func (p *program) scanBody(fi *funcInfo, body *ast.BlockStmt, top bool) {
	info := fi.pkg.Info
	// Select statements with a default case make their comm clauses
	// non-blocking; collect their channel-op positions to skip.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking[cc.Comm] = true
				}
			}
			nonBlocking[sel] = true
		}
		return true
	})
	inNonBlockingComm := func(n ast.Node) bool {
		// A channel op that is itself a default-select comm clause.
		for comm := range nonBlocking {
			if comm.Pos() <= n.Pos() && n.End() <= comm.End() {
				return true
			}
		}
		return false
	}
	setBlocks := func(why string) {
		if top && !fi.directBlocks {
			fi.directBlocks = true
			fi.blockWhy = why
		}
	}

	var events []lockEvent

	var walk func(n ast.Node, deferred bool) bool
	walk = func(n ast.Node, deferred bool) bool {
		switch e := n.(type) {
		case *ast.DeferStmt:
			// Arguments evaluate now; the callee runs at return. A
			// deferred function literal's body is its own scope.
			if lit, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok && lit.Body != nil {
				p.scanBody(fi, lit.Body, false)
			}
			ast.Inspect(e.Call, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false
				}
				return walk(m, true)
			})
			return false
		case *ast.GoStmt:
			// The goroutine body runs outside this function's lock
			// regions and blocking context; its facts are indexed if it
			// is a named function, and a literal body is scanned as its
			// own scope. Call-graph edge still recorded.
			if obj := calleeObject(info, e.Call); obj != nil {
				if fn, ok := obj.(*types.Func); ok {
					if _, inModule := p.fns[fn]; inModule {
						fi.calls = append(fi.calls, fn)
					}
				}
			}
			if lit, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok && lit.Body != nil {
				p.scanBody(fi, lit.Body, false)
			}
			return false
		case *ast.FuncLit:
			if e.Body != nil {
				p.scanBody(fi, e.Body, false)
			}
			return false
		case *ast.SendStmt:
			if !deferred && !inNonBlockingComm(e) {
				setBlocks("channel send")
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if exprIsLifecycle(info, e.X) {
					fi.directObserves = true
				}
				if !deferred && !inNonBlockingComm(e) {
					setBlocks("channel receive")
				}
			}
		case *ast.SelectStmt:
			if !nonBlocking[e] && !deferred {
				setBlocks("blocking select")
			}
		case *ast.CallExpr:
			p.scanCall(fi, e, deferred, setBlocks, &events)
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, false) })

	// Turn lock events into held regions (source-order approximation).
	for i, ev := range events {
		if !ev.acquire {
			continue
		}
		fi.acquires[ev.id] = true
		end := body.End()
		for j := i + 1; j < len(events); j++ {
			r := events[j]
			if r.acquire || r.expr != ev.expr || r.method != ev.release {
				continue
			}
			if !r.deferred {
				end = r.pos
			}
			break
		}
		fi.lockRegions = append(fi.lockRegions, lockRegion{
			id: ev.id, expr: ev.expr, start: ev.pos, end: end,
		})
	}
}

// scanCall records call-graph edges, lock events, and call-shaped
// blocking facts for one call expression.
func (p *program) scanCall(fi *funcInfo, call *ast.CallExpr, deferred bool,
	setBlocks func(string), events *[]lockEvent) {
	info := fi.pkg.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		// ctx.Done() / ctx.Err() on a context.Context observes
		// cancellation.
		if name == "Done" || name == "Err" {
			if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
				fi.directObserves = true
			}
		}
		// Mutex lock/unlock events.
		if isMutexRecv(info, sel) {
			switch name {
			case "Lock", "RLock":
				id := lockIdent(fi.pkg, sel.X)
				*events = append(*events, lockEvent{
					acquire: true, deferred: deferred, id: id,
					expr: types.ExprString(sel.X), release: lockMethods[name],
					method: name, pos: call.Pos(),
				})
			case "Unlock", "RUnlock":
				*events = append(*events, lockEvent{
					deferred: deferred, id: lockIdent(fi.pkg, sel.X),
					expr: types.ExprString(sel.X), method: name, pos: call.Pos(),
				})
			}
		}
		// Known blocking leaf calls.
		if !deferred {
			if isWaitGroupMethod(info, sel) && name == "Wait" {
				setBlocks("sync.WaitGroup.Wait")
			}
			if pkgPathOfSelector(info, sel) == "net" {
				setBlocks("net." + name)
			} else if recvPkgPath(info, sel) == "net" {
				setBlocks("net I/O (" + name + ")")
			}
			if pkgPathOfSelector(info, sel) == "time" && (name == "Sleep" || name == "After") {
				setBlocks("time." + name)
			}
		}
	}
	// Call-graph edges.
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if _, inModule := p.fns[fn]; inModule {
		fi.calls = append(fi.calls, fn)
		return
	}
	// Interface method of an in-module interface: record for CHA
	// resolution during the fixpoint.
	if _, isIface := p.impls[fn]; isIface {
		fi.ifaceCalls = append(fi.ifaceCalls, fn)
	}
}

// lockEvent is one Lock/Unlock call observed in source order while
// scanning a function; scanFunc pairs acquires with their releases to
// form lockRegions.
type lockEvent struct {
	acquire  bool
	deferred bool
	id       string
	expr     string
	release  string
	method   string
	pos      token.Pos
}

// lockIdent canonicalizes the mutex expression to a stable identity:
// "pkg.Type.field" for receiver-field mutexes, "pkg.var" for
// package-level mutex variables, and a source-expression fallback for
// anything else (map elements, locals).
func lockIdent(pkg *Package, x ast.Expr) string {
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return shortPkg(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return types.ExprString(e)
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok {
			if obj.Parent() == pkg.Types.Scope() {
				return shortPkg(obj.Pkg()) + "." + obj.Name()
			}
		}
		return pkg.Types.Name() + ":" + e.Name
	}
	return types.ExprString(x)
}

// shortPkg returns the last import-path element of a package (or "?"
// for a nil package), keeping lock identities readable.
func shortPkg(p *types.Package) string {
	if p == nil {
		return "?"
	}
	path := p.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pkgPathOfSelector returns the import path when sel is a
// package-qualified reference (net.Dial), else "".
func pkgPathOfSelector(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// recvPkgPath returns the defining package path of a method call's
// receiver named type, else "".
func recvPkgPath(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// fixpoint propagates observes, blocks, and acquires over the call
// graph until stable. Monotone rules:
//
//	observes(f) = direct(f) ∨ ∃ static callee g: observes(g)
//	            ∨ ∃ interface call m: impls(m)≠∅ ∧ ∀ impl: observes(impl)
//	blocks(f)   = direct(f) ∨ ∃ static callee g: blocks(g)
//	            ∨ ∃ interface call m: ∃ impl: blocks(impl)
//	acquires(f) = direct(f) ∪ ⋃ static callee g: acquires(g)
//
// Must-properties use all-implementations semantics, may-properties use
// any-implementation semantics; acquires deliberately stays on static
// edges so one shared interface does not smear lock sets across
// unrelated implementations (a documented soundness limit).
func (p *program) fixpoint() {
	for _, fi := range p.fns {
		fi.observes = fi.directObserves
		fi.blocks = fi.directBlocks
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range p.fns {
			if !fi.observes {
				if p.callObserves(fi) {
					fi.observes = true
					changed = true
				}
			}
			if !fi.blocks {
				if why, ok := p.callBlocks(fi); ok {
					fi.blocks = true
					fi.blockWhy = why
					changed = true
				}
			}
			for _, g := range fi.calls {
				gi := p.fns[g]
				for id := range gi.acquires {
					if !fi.acquires[id] {
						fi.acquires[id] = true
						changed = true
					}
				}
			}
		}
	}
}

func (p *program) callObserves(fi *funcInfo) bool {
	for _, g := range fi.calls {
		if p.fns[g].observes {
			return true
		}
	}
	for _, m := range fi.ifaceCalls {
		impls := p.impls[m]
		if len(impls) == 0 {
			continue
		}
		all := true
		for _, im := range impls {
			if !p.fns[im].observes {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func (p *program) callBlocks(fi *funcInfo) (string, bool) {
	for _, g := range fi.calls {
		if gi := p.fns[g]; gi.blocks {
			return fmt.Sprintf("call to %s (%s)", g.Name(), gi.blockWhy), true
		}
	}
	for _, m := range fi.ifaceCalls {
		for _, im := range p.impls[m] {
			if ii := p.fns[im]; ii.blocks {
				return fmt.Sprintf("call to %s (via %s; %s)", im.Name(), m.Name(), ii.blockWhy), true
			}
		}
	}
	return "", false
}

// funcAt returns the funcInfo whose declaration encloses pos in the
// given package, or nil.
func (p *program) funcAt(pkg *Package, pos token.Pos) *funcInfo {
	for _, fi := range p.fns {
		if fi.pkg == pkg && fi.decl.Pos() <= pos && pos <= fi.decl.End() {
			return fi
		}
	}
	return nil
}

package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerCtxflow enforces cancellation flow on the query path
// (Checker.CtxflowPkgs — executor, cluster, interconnect, resource,
// engine by default): every potentially-unbounded loop (a `for` with no
// condition) and every blocking select must observe cancellation on
// some path — a ctx.Done() receive, a ctx.Err()/Context.canceled()
// call, or a receive from a struct{} stop channel — either directly in
// its body or through a call whose whole-program summary observes
// (interface calls count only when every in-module implementation
// observes). This is the bug class PR 3 fixed by hand: a pump loop or
// motion wait that cancellation cannot reach, leaving a canceled query
// wedged and its pooled batches stranded.
//
// Soundness limits: conditional loops (`for x < n`) are assumed
// bounded, dynamically-dispatched calls outside the module are opaque,
// and "some path" is syntactic reachability, not dominance. Loops that
// are genuinely bounded by construction carry
// //hawqcheck:ignore ctxflow with a justification.
var analyzerCtxflow = &Analyzer{
	Name: nameCtxflow,
	Doc:  "unbounded loops and blocking selects on the query path that never observe cancellation",
	Run:  runCtxflow,
}

func runCtxflow(c *Checker, pkg *Package) {
	scoped := false
	for _, p := range c.CtxflowPkgs {
		if pkg.Path == p {
			scoped = true
		}
	}
	if !scoped {
		return
	}
	p := c.prog()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxflowBody(c, p, pkg, fd.Body)
		}
	}
}

// checkCtxflowBody flags unbounded loops and blocking selects in one
// function body (including goroutine literals, which are exactly where
// pump loops live).
func checkCtxflowBody(c *Checker, p *program, pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ForStmt:
			if e.Cond == nil && !observesCancel(p, pkg, e.Body) {
				c.report(pkg, e.Pos(), nameCtxflow,
					"unbounded for-loop never observes cancellation (ctx.Done/Err or a stop channel) on any path; a canceled query can wedge here")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) && !observesCancel(p, pkg, e) {
				c.report(pkg, e.Pos(), nameCtxflow,
					"blocking select has no cancellation case (ctx.Done or a stop channel); cancellation cannot reach a goroutine parked here")
			}
		}
		return true
	})
}

// observesCancel reports whether the subtree rooted at n observes
// cancellation on some syntactic path: a Done()/Err() call on a
// context.Context, a receive from a struct{} channel, or a call to an
// in-module function whose fixpoint summary observes.
func observesCancel(p *program, pkg *Package, n ast.Node) bool {
	info := pkg.Info
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch e := m.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && exprIsLifecycle(info, e.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
					if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && isContextType(tv.Type) {
						found = true
						return false
					}
				}
			}
			// A bare Done() channel expression in a select case also
			// appears as a call; the receive form above catches the
			// common `<-ctx.Done()`. For calls, consult summaries.
			if fn, ok := calleeObject(info, e).(*types.Func); ok {
				if fi, inModule := p.fns[fn]; inModule && fi.observes {
					found = true
					return false
				}
				if impls, isIface := p.impls[fn]; isIface && len(impls) > 0 {
					all := true
					for _, im := range impls {
						if !p.fns[im].observes {
							all = false
							break
						}
					}
					if all {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

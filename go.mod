module hawq

go 1.22
